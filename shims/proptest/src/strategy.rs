//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Keep only values for which `f` holds (up to a retry cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Type-erased strategy, cheap to clone.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: could not satisfy `{}` after 1000 tries",
            self.whence
        )
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
arb_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Bounded range keeps arithmetic in tests well-behaved.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*}
}
range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+}
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
