//! Regex-subset string strategy for `&'static str` patterns.
//!
//! Supports literal characters, `[a-z0-9_]`-style classes (ranges and single
//! characters, no negation), and the quantifiers `{n}`, `{m,n}`, `*`, `+`,
//! `?`. This covers the patterns used in this workspace (e.g. `[a-z]{0,8}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    /// Inclusive character ranges to choose from.
    choices: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                    + i;
                let mut choices = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        choices.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        choices.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                choices
            }
            '\\' => {
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => vec![('0', '9')],
                    'w' => vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    other => vec![(other, other)],
                }
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} quantifier"),
                        hi.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let (lo, hi) = atom.choices[rng.below(atom.choices.len() as u64) as usize];
                let span = (hi as u32) - (lo as u32) + 1;
                let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                    .expect("invalid character range");
                out.push(c);
            }
        }
        out
    }
}
