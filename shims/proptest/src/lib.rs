//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses on top of a
//! deterministic splitmix64 generator: `proptest!`, `Strategy` (with the
//! associated type named `Value`), `prop_oneof!`, `Just`, `any`, integer and
//! float range strategies, a small regex-subset string strategy, tuple
//! strategies, `prop::collection::{vec, btree_map}`, and
//! `prop::array::uniform*`. Failing cases are reported with their inputs but
//! are not shrunk.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of `proptest::prelude::*` for the APIs the workspace imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Define deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// runs `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@body $cfg:expr;) => {};
    (@body $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __cfg.cases && __attempts < __cfg.cases * 16 {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __dbg = ::std::format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => { __ran += 1; }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed: {}\n  inputs: {}", __msg, __dbg);
                    }
                }
            }
        }
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
