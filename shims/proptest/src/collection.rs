//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with entry counts drawn from `size`.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        // Duplicate keys collapse; retry a bounded number of times to reach
        // the requested size.
        let mut attempts = 0;
        while out.len() < n && attempts < n * 10 + 16 {
            attempts += 1;
            out.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        out
    }
}
