//! Fixed-size array strategies (`uniform2`..`uniform4`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[T; N]` with every element drawn from `element`.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

/// `[T; 2]` strategy.
pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
    UniformArray { element }
}

/// `[T; 3]` strategy.
pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
    UniformArray { element }
}

/// `[T; 4]` strategy.
pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
    UniformArray { element }
}
