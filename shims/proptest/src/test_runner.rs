//! Deterministic RNG, config, and case-level error types.

/// How many cases each property runs (and related knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Inputs rejected by `prop_assume!`; the case is retried.
    Reject(String),
    /// Assertion failure; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
