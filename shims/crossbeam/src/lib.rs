//! Offline stand-in for `crossbeam` scoped threads, on `std::thread::scope`.
//!
//! Only the `crossbeam::scope(|s| { s.spawn(|_| ...) })` shape is supported —
//! the spawn closure receives a unit placeholder instead of a nested scope
//! handle (the workspace always ignores that argument).

use std::thread;

/// Scope handle passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure's argument is a placeholder for
    /// crossbeam's nested-scope handle and is always `()`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope in which borrowing spawns are allowed; all spawned
/// threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}
