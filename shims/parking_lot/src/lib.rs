//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API shape:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std lock
//! (a thread panicked while holding it) is entered anyway, matching
//! parking_lot's behavior of not propagating poison.

use std::fmt;
use std::sync;

// Guard type names matching the real parking_lot exports (here they are
// aliases of the std guards the shim hands out).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}
