//! Offline stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` against the
//! shim's simplified JSON data model (`to_json`/`from_json`). Parsing is done
//! with raw `proc_macro::TokenTree` walking (no `syn`/`quote`, which cannot be
//! fetched offline); code is generated as a string and re-parsed.
//!
//! Supported shapes — exactly what this workspace uses:
//! named structs, single-field tuple (newtype) structs, enums with unit /
//! struct / single-field tuple variants; container attributes `rename_all`
//! (`snake_case`, `SCREAMING_SNAKE_CASE`, `lowercase`, `UPPERCASE`),
//! `tag = "..."` (internal tagging), and `try_from`/`into` type conversions.
//! Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Mini-AST
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

enum Data {
    NamedStruct(Vec<Field>),
    /// Single-field tuple struct (newtype).
    NewtypeStruct,
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Named(Vec<Field>),
    /// Single-field tuple variant.
    Newtype,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Leading attributes (doc comments, #[serde(...)], other derives' leftovers).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut attrs);
                    i += 2;
                } else {
                    panic!("serde_derive: `#` not followed by attribute group");
                }
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }

    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_top_level_fields(g.stream()) {
                    1 => Data::NewtypeStruct,
                    n => panic!("serde_derive shim: tuple struct {name} has {n} fields; only newtype (1 field) supported"),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde_derive: unexpected token after struct {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected token after enum {name}: {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw}` items"),
    };

    Item { name, attrs, data }
}

/// If the attribute group is `[serde(...)]`, fold its entries into `attrs`.
fn parse_serde_attr(stream: TokenStream, attrs: &mut ContainerAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment or unrelated attribute
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().to_string()
        }
        _ => return,
    };
    for entry in inner.split(',') {
        let mut parts = entry.splitn(2, '=');
        let key = parts.next().unwrap_or("").trim().to_string();
        let val = parts
            .next()
            .map(|v| v.trim().trim_matches('"').to_string())
            .unwrap_or_default();
        match key.as_str() {
            "rename_all" => attrs.rename_all = Some(val),
            "tag" => attrs.tag = Some(val),
            "try_from" => attrs.try_from = Some(val),
            "into" => attrs.into = Some(val),
            other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes / doc comments.
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field {name}, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name });
    }
    fields
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = idx == tokens.len() - 1;
            }
            _ => {}
        }
    }
    commas + if trailing_comma { 0 } else { 1 }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_top_level_fields(g.stream()) {
                    1 => VariantShape::Newtype,
                    n => panic!(
                        "serde_derive shim: tuple variant {name} has {n} fields; only 1 supported"
                    ),
                }
            }
            _ => VariantShape::Unit,
        };
        // Skip to past the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Name transforms
// ---------------------------------------------------------------------------

fn apply_rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        None => name.to_string(),
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => split_words(name).join("_"),
        Some("SCREAMING_SNAKE_CASE") => split_words(name)
            .iter()
            .map(|w| w.to_uppercase())
            .collect::<Vec<_>>()
            .join("_"),
        Some(other) => panic!("serde_derive shim: unsupported rename_all rule `{other}`"),
    }
}

/// Split a CamelCase identifier into lowercase words.
fn split_words(name: &str) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    for c in name.chars() {
        if c.is_uppercase() || words.is_empty() {
            words.push(String::new());
        }
        let last = words.last_mut().expect("words non-empty");
        last.extend(c.to_lowercase());
    }
    words
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.attrs.into {
        format!(
            "let __s: {into_ty} = <Self as ::std::convert::Into<{into_ty}>>::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_json(&__s)"
        )
    } else {
        match &item.data {
            Data::NamedStruct(fields) => {
                let mut s = String::from("let mut __m = ::serde::Map::new();\n");
                for f in fields {
                    let fname = &f.name;
                    s.push_str(&format!(
                        "__m.insert(\"{fname}\".to_string(), ::serde::Serialize::to_json(&self.{fname}));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__m)");
                s
            }
            Data::NewtypeStruct => "::serde::Serialize::to_json(&self.0)".to_string(),
            Data::UnitStruct => "::serde::Value::Null".to_string(),
            Data::Enum(variants) => gen_serialize_enum(item, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_serialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rule = item.attrs.rename_all.as_deref();
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = apply_rename(vname, rule);
        let arm = match (&v.shape, &item.attrs.tag) {
            (VariantShape::Unit, None) => format!(
                "{name}::{vname} => ::serde::Value::String(\"{wire}\".to_string()),\n"
            ),
            (VariantShape::Unit, Some(tag)) => format!(
                "{name}::{vname} => {{\n\
                     let mut __m = ::serde::Map::new();\n\
                     __m.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()));\n\
                     ::serde::Value::Object(__m)\n\
                 }}\n"
            ),
            (VariantShape::Named(fields), tag) => {
                let binders = fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                let mut inserts = String::new();
                for f in fields {
                    let fname = &f.name;
                    inserts.push_str(&format!(
                        "__inner.insert(\"{fname}\".to_string(), ::serde::Serialize::to_json({fname}));\n"
                    ));
                }
                match tag {
                    // Internally tagged: fields inline next to the tag.
                    Some(tag) => format!(
                        "{name}::{vname} {{ {binders} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             __inner.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()));\n\
                             {inserts}\
                             ::serde::Value::Object(__inner)\n\
                         }}\n"
                    ),
                    // Externally tagged: {"variant": {fields}}.
                    None => format!(
                        "{name}::{vname} {{ {binders} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             {inserts}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{wire}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n\
                         }}\n"
                    ),
                }
            }
            (VariantShape::Newtype, None) => format!(
                "{name}::{vname}(__x) => {{\n\
                     let mut __m = ::serde::Map::new();\n\
                     __m.insert(\"{wire}\".to_string(), ::serde::Serialize::to_json(__x));\n\
                     ::serde::Value::Object(__m)\n\
                 }}\n"
            ),
            (VariantShape::Newtype, Some(_)) => panic!(
                "serde_derive shim: internally tagged newtype variant {name}::{vname} unsupported"
            ),
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Expression deserializing field `fname` out of object expression `obj`.
fn field_from_obj(obj: &str, fname: &str) -> String {
    format!(
        "::serde::Deserialize::from_json({obj}.get(\"{fname}\").unwrap_or(&::serde::Value::Null))\
         .map_err(|__e| ::serde::Error::in_field(__e, \"{fname}\"))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.attrs.try_from {
        format!(
            "let __s: {from_ty} = <{from_ty} as ::serde::Deserialize>::from_json(__v)?;\n\
             <Self as ::std::convert::TryFrom<{from_ty}>>::try_from(__s)\
             .map_err(|__e| ::serde::Error::custom(::std::format!(\"{{}}\", __e)))"
        )
    } else {
        match &item.data {
            Data::NamedStruct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{}: {},\n",
                        f.name,
                        field_from_obj("__obj", &f.name)
                    ));
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                         ::std::format!(\"{name}: expected object, got {{}}\", __v)))?;\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
            Data::NewtypeStruct => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__v)?))")
            }
            Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
            Data::Enum(variants) => gen_deserialize_enum(item, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rule = item.attrs.rename_all.as_deref();

    if let Some(tag) = &item.attrs.tag {
        // Internally tagged.
        let mut arms = String::new();
        for v in variants {
            let vname = &v.name;
            let wire = apply_rename(vname, rule);
            match &v.shape {
                VariantShape::Unit => {
                    arms.push_str(&format!("\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),\n"));
                }
                VariantShape::Named(fields) => {
                    let mut inits = String::new();
                    for f in fields {
                        inits.push_str(&format!("{}: {},\n", f.name, field_from_obj("__obj", &f.name)));
                    }
                    arms.push_str(&format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n"
                    ));
                }
                VariantShape::Newtype => panic!(
                    "serde_derive shim: internally tagged newtype variant {name}::{vname} unsupported"
                ),
            }
        }
        return format!(
            "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 ::std::format!(\"{name}: expected object, got {{}}\", __v)))?;\n\
             let __tag = __obj.get(\"{tag}\").and_then(::serde::Value::as_str).ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: missing or non-string tag `{tag}`\"))?;\n\
             match __tag {{\n{arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
             }}"
        );
    }

    // Externally tagged: unit variants appear as bare strings, data-carrying
    // variants as single-key objects.
    let mut string_arms = String::new();
    let mut object_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = apply_rename(vname, rule);
        match &v.shape {
            VariantShape::Unit => {
                string_arms.push_str(&format!(
                    "\"{wire}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                ));
                object_arms.push_str(&format!(
                    "\"{wire}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantShape::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{}: {},\n",
                        f.name,
                        field_from_obj("__inner", &f.name)
                    ));
                }
                object_arms.push_str(&format!(
                    "\"{wire}\" => {{\n\
                         let __inner = __val.as_object().ok_or_else(|| ::serde::Error::custom(\
                             \"{name}::{vname}: expected object payload\"))?;\n\
                         return ::std::result::Result::Ok({name}::{vname} {{\n{inits}}});\n\
                     }}\n"
                ));
            }
            VariantShape::Newtype => {
                object_arms.push_str(&format!(
                    "\"{wire}\" => return ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_json(__val)?)),\n"
                ));
            }
        }
    }
    format!(
        "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
             match __s {{\n{string_arms}\
                 __other => return ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
             }}\n\
         }}\n\
         if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
             if let ::std::option::Option::Some((__k, __val)) = __obj.iter().next() {{\n\
                 match __k.as_str() {{\n{object_arms}\
                     __other => return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
                 }}\n\
             }}\n\
             return ::std::result::Result::Err(::serde::Error::custom(\"{name}: empty object\"));\n\
         }}\n\
         ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"{name}: cannot deserialize from {{}}\", __v)))"
    )
}
