//! JSON value tree shared by the `serde` and `serde_json` shims.
//!
//! Semantics follow `serde_json` closely where the workspace depends on them:
//! integers and doubles are distinct (`1 != 1.0` structurally), object key
//! order is insertion order (`preserve_order`), and `Display` renders compact
//! JSON with `{:?}`-style float formatting so `1.0` round-trips as a double.

use std::fmt;

use crate::map::Map;

/// A JSON number: unsigned integer, signed integer, or double.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    repr: Repr,
}

#[derive(Debug, Clone, Copy)]
enum Repr {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Build a number from a finite float; `None` for NaN/infinite.
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number { repr: Repr::F(f) })
        } else {
            None
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::U(u) => i64::try_from(u).ok(),
            Repr::I(i) => Some(i),
            Repr::F(_) => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::U(u) => Some(u),
            Repr::I(i) => u64::try_from(i).ok(),
            Repr::F(_) => None,
        }
    }

    /// The value as a double (lossy for very large integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self.repr {
            Repr::U(u) => Some(u as f64),
            Repr::I(i) => Some(i as f64),
            Repr::F(f) => Some(f),
        }
    }

    /// True when the number is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True when the number is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// True when the number is stored as a double.
    pub fn is_f64(&self) -> bool {
        matches!(self.repr, Repr::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.repr, other.repr) {
            (Repr::F(a), Repr::F(b)) => a == b,
            (Repr::F(_), _) | (_, Repr::F(_)) => false,
            // Integer representations compare by numeric value.
            (a, b) => int_val(a) == int_val(b),
        }
    }
}

fn int_val(r: Repr) -> i128 {
    match r {
        Repr::U(u) => u as i128,
        Repr::I(i) => i as i128,
        Repr::F(_) => unreachable!("float handled by caller"),
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::U(u) => write!(f, "{u}"),
            Repr::I(i) => write!(f, "{i}"),
            // `{:?}` keeps a trailing `.0` on whole floats, preserving the
            // int/double distinction across a serialization round-trip.
            Repr::F(v) => write!(f, "{v:?}"),
        }
    }
}

macro_rules! number_from_signed {
    ($($t:ty)*) => {$(
        impl From<$t> for Number {
            fn from(i: $t) -> Self {
                let i = i as i64;
                if i >= 0 {
                    Number { repr: Repr::U(i as u64) }
                } else {
                    Number { repr: Repr::I(i) }
                }
            }
        }
    )*}
}
number_from_signed!(i8 i16 i32 i64 isize);

macro_rules! number_from_unsigned {
    ($($t:ty)*) => {$(
        impl From<$t> for Number {
            fn from(u: $t) -> Self {
                Number { repr: Repr::U(u as u64) }
            }
        }
    )*}
}
number_from_unsigned!(u8 u16 u32 u64 usize);

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map<String, Value>),
}

impl Value {
    /// Borrow as an object map.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as an object map.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrow as an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer value, if this is an integer number fitting `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The unsigned value, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric value as a double, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `Some(())` when this is `Null`.
    pub fn as_null(&self) -> Option<()> {
        match self {
            Value::Null => Some(()),
            _ => None,
        }
    }

    /// True when this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True when this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True when this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True when this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True when this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True when this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True when this is an integer number fitting `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True when this is a non-negative integer number.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// True when this is a number stored as a double.
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Number(n) if n.is_f64())
    }

    /// Look up by key or array position; `None` on kind mismatch.
    pub fn get<I: JsonIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Mutable lookup by key or array position.
    pub fn get_mut<I: JsonIndex>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// Replace `self` with `Null`, returning the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

/// Index into a [`Value`] by string key or array position.
pub trait JsonIndex {
    /// Shared lookup.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    /// Mutable lookup.
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
    /// Mutable lookup that inserts missing entries (object keys only).
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

impl JsonIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v.as_array_mut().and_then(|a| a.get_mut(*self)) {
            Some(slot) => slot,
            None => panic!("cannot index JSON value with {self}: out of bounds or not an array"),
        }
    }
}

impl JsonIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_object_mut().and_then(|m| m.get_mut(self))
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index non-object JSON value with string {self:?}: {other}"),
        }
    }
}

impl JsonIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        self.as_str().index_into_mut(v)
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_or_insert(v)
    }
}

impl<T: JsonIndex + ?Sized> JsonIndex for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        (**self).index_into_mut(v)
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (**self).index_or_insert(v)
    }
}

impl<I: JsonIndex> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        static NULL: Value = Value::Null;
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: JsonIndex> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}

// --- From conversions -------------------------------------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Number::from_f64(f)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::from(f as f64)
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Self {
        Value::Number(n)
    }
}

macro_rules! value_from_int {
    ($($t:ty)*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Self {
                Value::Number(Number::from(i))
            }
        }
    )*}
}
value_from_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(t) => t.into(),
            None => Value::Null,
        }
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::Array(iter.into_iter().collect())
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().collect())
    }
}

// --- scalar comparisons -----------------------------------------------------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        matches!(self, Value::Number(n) if *n == Number::from(*other))
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        *self == *other as i64
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(n) if *n == Number::from(*other))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.is_f64() && n.as_f64() == Some(*other))
    }
}

// --- rendering --------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Render compact JSON (used by `serde_json::to_string`).
#[doc(hidden)]
pub fn json_to_string(v: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, v);
    out
}

/// Render pretty-printed JSON (used by `serde_json::to_string_pretty`).
#[doc(hidden)]
pub fn json_to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

impl fmt::Display for Value {
    /// Compact JSON, matching `serde_json`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&json_to_string(self))
    }
}
