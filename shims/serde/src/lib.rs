//! Offline stand-in for `serde` with a drastically simplified data model.
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be fetched. This shim keeps the public surface the workspace
//! actually uses — `Serialize`, `Deserialize`, and the derive macros — but
//! maps everything through a single JSON [`Value`] tree instead of the
//! visitor-based serde data model. The companion `serde_json` shim re-exports
//! [`Value`], [`Number`], and [`Map`] from here.

mod map;
#[doc(hidden)]
pub mod value;

pub use map::Map;
pub use value::{JsonIndex, Number, Value};

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Attach field context to an existing error.
    pub fn in_field(err: Error, field: &str) -> Self {
        Error {
            msg: format!("{field}: {}", err.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value tree.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
    )*}
}
ser_int!(i8 i16 i32 i64 isize);

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
    )*}
}
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Number::from_f64(*self)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        (*self as f64).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Mirrors serde's `rc` feature: a shared handle serializes as its
/// pointee (needed for zero-copy `Arc<Value>` documents in `json!`).
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Map keys must serialize to JSON strings.
fn key_to_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_string(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k.to_json()), v.to_json());
        }
        Value::Object(m)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k.to_json()), v.to_json());
        }
        Value::Object(m)
    }
}

impl Serialize for Map<String, Value> {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )+}
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v}")))
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*}
}
de_int!(i8 i16 i32 i64 isize);

macro_rules! de_uint {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*}
}
de_uint!(u8 u16 u32 u64 usize);

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v}")))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
        if arr.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                arr.len()
            )));
        }
        let mut parsed = arr
            .iter()
            .map(T::from_json)
            .collect::<Result<Vec<T>, Error>>()?;
        // Drain into a fixed array without requiring T: Default/Copy.
        let mut out: Vec<T> = Vec::with_capacity(N);
        out.append(&mut parsed);
        out.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        T::from_json(v).map(Box::new)
    }
}

fn key_from_str<K: Deserialize>(k: &str) -> Result<K, Error> {
    // Try the string form first, falling back to a numeric re-parse so
    // integer-keyed maps round-trip through JSON object keys.
    let as_string = Value::String(k.to_string());
    if let Ok(key) = K::from_json(&as_string) {
        return Ok(key);
    }
    if let Ok(i) = k.parse::<i64>() {
        if let Ok(key) = K::from_json(&Value::Number(Number::from(i))) {
            return Ok(key);
        }
    }
    Err(Error::custom(format!(
        "cannot deserialize map key from {k:?}"
    )))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj.iter() {
            out.insert(key_from_str(k)?, V::from_json(val)?);
        }
        Ok(out)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?;
        let mut out = HashMap::new();
        for (k, val) in obj.iter() {
            out.insert(key_from_str(k)?, V::from_json(val)?);
        }
        Ok(out)
    }
}

impl Deserialize for Map<String, Value> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!("expected array of length {}, got {}", $len, arr.len())));
                }
                Ok(($($t::from_json(&arr[$n])?,)+))
            }
        }
    )+}
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}
