//! Insertion-ordered map matching `serde_json::Map` with `preserve_order`.

use std::fmt;

use crate::value::Value;

/// An insertion-ordered `String -> Value` map backed by a vector.
///
/// Lookups are linear; documents in this workspace are small enough that this
/// beats hashing in practice and keeps the shim dependency-free.
#[derive(Clone, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Create an empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Map {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Insert a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Keep only entries for which `f` returns true.
    pub fn retain(&mut self, mut f: impl FnMut(&String, &mut Value) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Vacant-or-occupied entry handle.
    pub fn entry(&mut self, key: impl Into<String>) -> Entry<'_> {
        Entry {
            map: self,
            key: key.into(),
        }
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate with mutable values.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterate over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterate over mutable values.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Value> {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

/// Entry handle returned by [`Map::entry`].
pub struct Entry<'a> {
    map: &'a mut Map<String, Value>,
    key: String,
}

impl<'a> Entry<'a> {
    /// Insert `default` if vacant, then return the value.
    pub fn or_insert(self, default: Value) -> &'a mut Value {
        self.or_insert_with(|| default)
    }

    /// Insert `default()` if vacant, then return the value.
    pub fn or_insert_with(self, default: impl FnOnce() -> Value) -> &'a mut Value {
        let idx = match self.map.entries.iter().position(|(k, _)| *k == self.key) {
            Some(i) => i,
            None => {
                self.map.entries.push((self.key, default()));
                self.map.entries.len() - 1
            }
        };
        &mut self.map.entries[idx].1
    }

    /// Mutate the value in place if occupied.
    pub fn and_modify(self, f: impl FnOnce(&mut Value)) -> Self {
        if let Some(idx) = self.map.entries.iter().position(|(k, _)| *k == self.key) {
            f(&mut self.map.entries[idx].1);
        }
        self
    }
}

impl<Q: AsRef<str> + ?Sized> std::ops::Index<&Q> for Map<String, Value> {
    type Output = Value;

    fn index(&self, key: &Q) -> &Value {
        self.get(key.as_ref())
            .unwrap_or_else(|| panic!("no entry for key {:?}", key.as_ref()))
    }
}

impl<Q: AsRef<str> + ?Sized> std::ops::IndexMut<&Q> for Map<String, Value> {
    fn index_mut(&mut self, key: &Q) -> &mut Value {
        let key = key.as_ref();
        if !self.contains_key(key) {
            panic!("no entry for key {key:?}");
        }
        self.get_mut(key).expect("checked above")
    }
}

/// Equality is order-independent, matching map semantics.
impl PartialEq for Map<String, Value> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl fmt::Debug for Map<String, Value> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Extend<(String, Value)> for Map<String, Value> {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}
