//! Offline stand-in for `criterion`.
//!
//! Implements the macro/builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`) with simple wall-clock
//! measurement and a plain-text report — no statistics, plots, or comparisons.

use std::fmt;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Expected per-iteration workload, for elements/second reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for the following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            best_ns: f64::INFINITY,
            samples: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.label, bencher.best_ns);
        self
    }

    /// Run an unparameterized benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            best_ns: f64::INFINITY,
            samples: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.label, bencher.best_ns);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, best_ns: f64) {
        let mut line = format!("  {}/{label}: {}", self.name, fmt_ns(best_ns));
        if let Some(Throughput::Elements(n)) = self.throughput {
            if best_ns > 0.0 {
                line.push_str(&format!("  ({:.0} elem/s)", n as f64 / (best_ns / 1e9)));
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    best_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Time `routine`, keeping the best-of-N sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed().as_nanos() as f64;
            drop(out);
            if elapsed < self.best_ns {
                self.best_ns = elapsed;
            }
        }
    }
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Re-export point used by generated code.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
