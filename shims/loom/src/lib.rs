//! Offline stand-in for `loom`.
//!
//! The real loom exhaustively enumerates thread interleavings under a
//! cooperative scheduler. That engine cannot be vendored here, so this
//! shim approximates it the way `shuttle`'s random scheduler does:
//! [`model`] runs the test body many times (default 64, override with
//! `LOOM_ITERS`), and every synchronization operation injects a
//! deterministic pseudo-random yield so the OS scheduler is shaken into
//! different interleavings on each iteration. Tests written against this
//! shim use the real loom API surface (`loom::model`, `loom::thread`,
//! `loom::sync::{Arc, Mutex, RwLock}`) and upgrade transparently when the
//! real crate is available.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-iteration seed; mixed into each thread's local RNG so schedules
/// differ across iterations but a failing iteration is reproducible.
static MODEL_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_RNG: Cell<u64> = const { Cell::new(0) };
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw from the thread-local RNG, lazily seeding it from the model seed
/// and the thread id so sibling threads diverge.
fn next_rand() -> u64 {
    LOCAL_RNG.with(|c| {
        let mut s = c.get();
        if s == 0 {
            let tid = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish()
            };
            s = splitmix(MODEL_SEED.load(Ordering::Relaxed) ^ tid) | 1;
        }
        s = splitmix(s);
        c.set(s);
        s
    })
}

/// Perturb the schedule at a synchronization point.
fn maybe_yield() {
    match next_rand() % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => {
            for _ in 0..(next_rand() % 64) {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// Run `f` under the (randomized) model: many iterations, each with a
/// fresh seed driving the yield points. Panics propagate, so an assertion
/// failure in any explored schedule fails the test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        MODEL_SEED.store(splitmix(i.wrapping_add(1)), Ordering::Relaxed);
        LOCAL_RNG.with(|c| c.set(0));
        f();
    }
}

/// Threads with schedule perturbation at spawn and join.
pub mod thread {
    pub use std::thread::{current, JoinHandle};

    /// Spawn a model thread; yields before the body runs so the spawner
    /// and the child race from the first instruction.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::maybe_yield();
            f()
        })
    }

    /// Yield point.
    pub fn yield_now() {
        super::maybe_yield();
        std::thread::yield_now();
    }
}

/// Synchronization primitives with yield injection on every acquisition.
pub mod sync {
    pub use std::sync::Arc;

    /// Atomics are passed through; the yield points around locks provide
    /// the schedule diversity.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// `std::sync::Mutex` with a pre-acquisition yield point (std-shaped
    /// API, like the real loom).
    #[derive(Default)]
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consume, returning the inner value.
        pub fn into_inner(self) -> std::sync::LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire, yielding first so contenders interleave.
        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            super::maybe_yield();
            self.inner.lock()
        }

        /// Non-blocking acquire.
        pub fn try_lock(&self) -> std::sync::TryLockResult<std::sync::MutexGuard<'_, T>> {
            super::maybe_yield();
            self.inner.try_lock()
        }
    }

    /// `std::sync::RwLock` with pre-acquisition yield points.
    #[derive(Default)]
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Wrap a value.
        pub fn new(value: T) -> Self {
            RwLock {
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Consume, returning the inner value.
        pub fn into_inner(self) -> std::sync::LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Shared acquire with a yield point.
        pub fn read(&self) -> std::sync::LockResult<std::sync::RwLockReadGuard<'_, T>> {
            super::maybe_yield();
            self.inner.read()
        }

        /// Exclusive acquire with a yield point.
        pub fn write(&self) -> std::sync::LockResult<std::sync::RwLockWriteGuard<'_, T>> {
            super::maybe_yield();
            self.inner.write()
        }

        /// Non-blocking shared acquire.
        pub fn try_read(&self) -> std::sync::TryLockResult<std::sync::RwLockReadGuard<'_, T>> {
            super::maybe_yield();
            self.inner.try_read()
        }

        /// Non-blocking exclusive acquire.
        pub fn try_write(&self) -> std::sync::TryLockResult<std::sync::RwLockWriteGuard<'_, T>> {
            super::maybe_yield();
            self.inner.try_write()
        }
    }
}

/// Spin-loop hint (yield point in the model).
pub mod hint {
    /// Model-aware spin hint.
    pub fn spin_loop() {
        super::maybe_yield();
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_counts() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let m = m.clone();
                    super::thread::spawn(move || {
                        *m.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 3);
        });
    }
}
