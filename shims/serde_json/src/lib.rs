//! Offline stand-in for `serde_json`.
//!
//! Re-exports the JSON tree types from the `serde` shim and provides the
//! parser, serializer entry points, and the `json!` macro. Behaviors the
//! workspace depends on are preserved: insertion order (`preserve_order`),
//! int/double distinction surviving round-trips (`float_roundtrip`-ish via
//! `{:?}` float formatting), and structural `1 != 1.0` equality.

mod parse;

pub use serde::{Error, Map, Number, Value};

pub use parse::from_str_value;

use serde::{Deserialize, Serialize};

/// Serialize any value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::json_to_string(&value.to_json()))
}

/// Serialize any value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::json_to_string_pretty(&value.to_json()))
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json(&value)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::from_str_value(s)?;
    T::from_json(&v)
}

/// Build a [`Value`] with JSON literal syntax.
///
/// Supports nested objects/arrays, trailing commas, expression values, and
/// expression keys (`json!({ field.as_str(): 1 })`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array () $($tt)*) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __json_map = $crate::Map::new();
        $crate::json_internal!(@object __json_map () $($tt)*);
        $crate::Value::Object(__json_map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json!: value failed to serialize")
    };
}

/// Implementation detail of [`json!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- objects: `(key tokens so far)` accumulates until a top-level `:` -----
    (@object $m:ident ()) => {};
    (@object $m:ident ($($k:tt)+) : null , $($rest:tt)*) => {
        $m.insert(($($k)+).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $m () $($rest)*);
    };
    (@object $m:ident ($($k:tt)+) : null) => {
        $m.insert(($($k)+).to_string(), $crate::Value::Null);
    };
    (@object $m:ident ($($k:tt)+) : { $($inner:tt)* } , $($rest:tt)*) => {
        $m.insert(($($k)+).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_internal!(@object $m () $($rest)*);
    };
    (@object $m:ident ($($k:tt)+) : { $($inner:tt)* }) => {
        $m.insert(($($k)+).to_string(), $crate::json!({ $($inner)* }));
    };
    (@object $m:ident ($($k:tt)+) : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $m.insert(($($k)+).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@object $m () $($rest)*);
    };
    (@object $m:ident ($($k:tt)+) : [ $($inner:tt)* ]) => {
        $m.insert(($($k)+).to_string(), $crate::json!([ $($inner)* ]));
    };
    (@object $m:ident ($($k:tt)+) : $v:expr , $($rest:tt)*) => {
        $m.insert(($($k)+).to_string(), $crate::json!($v));
        $crate::json_internal!(@object $m () $($rest)*);
    };
    (@object $m:ident ($($k:tt)+) : $v:expr) => {
        $m.insert(($($k)+).to_string(), $crate::json!($v));
    };
    (@object $m:ident ($($k:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@object $m ($($k)* $next) $($rest)*);
    };

    // ----- arrays: `(elems so far,)` accumulates finished element exprs -----
    (@array ($($done:expr,)*)) => {
        $crate::Value::Array(vec![$($done,)*])
    };
    (@array ($($done:expr,)*) null , $($rest:tt)*) => {
        $crate::json_internal!(@array ($($done,)* $crate::Value::Null,) $($rest)*)
    };
    (@array ($($done:expr,)*) null) => {
        $crate::json_internal!(@array ($($done,)* $crate::Value::Null,))
    };
    (@array ($($done:expr,)*) { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_internal!(@array ($($done,)* $crate::json!({ $($inner)* }),) $($rest)*)
    };
    (@array ($($done:expr,)*) { $($inner:tt)* }) => {
        $crate::json_internal!(@array ($($done,)* $crate::json!({ $($inner)* }),))
    };
    (@array ($($done:expr,)*) [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_internal!(@array ($($done,)* $crate::json!([ $($inner)* ]),) $($rest)*)
    };
    (@array ($($done:expr,)*) [ $($inner:tt)* ]) => {
        $crate::json_internal!(@array ($($done,)* $crate::json!([ $($inner)* ]),))
    };
    (@array ($($done:expr,)*) $v:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array ($($done,)* $crate::json!($v),) $($rest)*)
    };
    (@array ($($done:expr,)*) $v:expr) => {
        $crate::json_internal!(@array ($($done,)* $crate::json!($v),))
    };
}
