//! Recursive-descent JSON parser for the `serde_json` shim.

use serde::{Error, Map, Number, Value};

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::custom("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over plain UTF-8 until a quote or escape.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(Error::custom("control character in string")),
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
        }
        let f = text
            .parse::<f64>()
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| Error::custom(format!("non-finite number `{text}`")))
    }
}
