//! Offline stand-in for `rand` 0.8.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods the workspace uses (`gen_range`, `gen_bool`, `gen`). The generator
//! is splitmix64 — deterministic for a given seed, statistically fine for
//! synthetic-data generation, NOT cryptographic.

use std::ops::{Range, RangeInclusive};

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods over a raw 64-bit source.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A full-range random value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64_source(self)
    }
}

fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw from a raw source.
    fn from_u64_source<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_u64_source<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64_source<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

macro_rules! standard_int {
    ($($t:ty)*) => {$(
        impl Standard for $t {
            fn from_u64_source<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type.
    type Output;

    /// Draw a uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_int_range {
    ($($t:ty)*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo + 1) as u64;
                (lo + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*}
}
sample_int_range!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's ChaCha-based
    /// `StdRng`; NOT cryptographically secure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
