//! Failure recovery: the four FireWorks features of §III-C3, live.
//!
//! Runs a campaign against a deliberately hostile environment — a tiny
//! cluster with tight walltimes and difficult chemistries — and narrates
//! every re-run, detour, duplicate hit, and manual-intervention fizzle,
//! then demonstrates the iteration feature with an ENCUT convergence
//! scan.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use materials_project::fireworks::iterate_until;
use materials_project::hpcsim::ClusterSpec;
use materials_project::matsci::Element;
use materials_project::MaterialsProject;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cramped machine makes failures frequent.
    let mut mp = MaterialsProject::new()?.with_cluster(ClusterSpec {
        nodes: 16,
        cores_per_node: 24,
        mem_per_node_gb: 2.5, // tight: big cells will OOM
    });

    let recs = mp.ingest_icsd(80, 99)?;
    mp.submit_calculations(&recs)?;
    let report = mp.run_campaign(30)?;

    println!("--- recovery ledger (80 submissions, hostile cluster) ---");
    println!("completed          {}", report.completed);
    println!(
        "walltime re-runs   {}  (killed at the limit, resubmitted with 2x walltime)",
        report.walltime_reruns
    );
    println!(
        "memory re-runs     {}  (OOM-killed, resubmitted on 2x nodes)",
        report.memory_reruns
    );
    println!(
        "error detours      {}  (ZBRENT / bands / SCF; parameters adjusted, workflow continues)",
        report.detours
    );
    println!(
        "duplicate hits     {}  (binder pointed at a previous result)",
        report.dedup_hits
    );
    println!(
        "fizzled            {}  (beyond automated repair, flagged for a human)",
        report.fizzled
    );

    // What a human operator sees in the morning.
    let needing_human = mp.launchpad().needs_human()?;
    println!(
        "\nworkflows awaiting manual intervention: {}",
        needing_human.len()
    );
    for wf in needing_human.iter().take(5) {
        println!("  {}  reason: {}", wf["_id"], wf["fizzle_reason"]);
    }

    // The history trail the datastore keeps for analysis (paper: "any
    // modifications ... stored within the FireWorks database").
    let detoured = mp
        .database()
        .collection("engines")
        .find(&json!({"history.0.event": "detour"}))?;
    if let Some(d) = detoured.first() {
        println!("\nexample detour record for {}:", d["_id"]);
        println!("  {}", d["history"][0]);
    }

    // Iteration (§III-C3): increment ENCUT until the energy change per
    // step is below 1 meV/atom — the classic convergence scan.
    println!("\n--- iteration: ENCUT convergence scan ---");
    let s = recs[0].structure.clone();
    let e_limit = materials_project::mp_dft::energy_per_atom(&s);
    let mut last = f64::INFINITY;
    let out = iterate_until(
        mp.launchpad(),
        "encut-scan",
        json!({"formula": s.formula()}),
        "encut",
        250.0,
        50.0,
        20,
        |spec| {
            let encut = spec["encut"].as_f64().unwrap();
            let e = materials_project::mp_dft::energy_at_cutoff(e_limit, encut);
            json!({"encut": encut, "energy_per_atom": e})
        },
        |output| {
            let e = output["energy_per_atom"].as_f64().unwrap();
            let converged = (e - last).abs() < 1e-3;
            last = e;
            converged
        },
    )?;
    match out.converged_at {
        Some(encut) => println!(
            "converged at ENCUT = {encut} eV after {} iterations ({} task docs stored)",
            out.iterations,
            out.task_ids.len()
        ),
        None => println!("did not converge within the scan range"),
    }

    let li = Element::from_symbol("Li")?;
    mp.build_views(li)?;
    println!(
        "\ndespite everything, the database holds {} clean materials",
        mp.database().collection("materials").len()
    );
    Ok(())
}
