//! Community analytics over the Materials API (§III-D3).
//!
//! "We have already started to see new and novel uses of the MP data via
//! the Materials API and the pymatgen library, such as screening for CO2
//! sorbents, calculation of x-ray spectra for clusters of atoms, and
//! performing Voronoi analysis to find possible interstitial sites."
//!
//! This example plays the role of that community scientist: everything
//! below uses only the public [`MpClient`] — no direct datastore access —
//! and local analysis tools, "jointly analyzing local and remote data".
//!
//! ```text
//! cargo run --example remote_analysis
//! ```

use materials_project::mapi::MpClient;
use materials_project::matsci::{
    analysis::diffusion, compute_pattern, Element, PhaseDiagram, CU_KA,
};
use materials_project::MaterialsProject;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Materials Project side: a populated public deployment.
    let mut mp = MaterialsProject::new()?;
    let recs = mp.ingest_icsd(80, 2012)?;
    mp.submit_calculations(&recs)?;
    mp.run_campaign(25)?;
    mp.build_views(Element::from_symbol("Li")?)?;
    let api = mp.materials_api();

    // The community side: an anonymous API client.
    let client = MpClient::new(&api);

    // --- use 1: screening for CO2 sorbents -------------------------
    // A CO2 sorbent wants a basic oxide: an electropositive metal bound
    // to oxygen, thermodynamically stable enough to cycle.
    println!("=== use 1: CO2-sorbent screen (remote query + local chemistry) ===");
    let rows = client.query(
        &json!({"elements": "O", "nelements": 2}),
        &["formula", "energy_per_atom", "e_above_hull"],
    )?;
    let mut sorbents = Vec::new();
    for r in &rows {
        let Some(formula) = r["formula"].as_str() else {
            continue;
        };
        let Ok(comp) = materials_project::matsci::Composition::parse(formula) else {
            continue;
        };
        let metal_chi: Vec<f64> = comp
            .elements()
            .iter()
            .filter(|e| e.symbol() != "O")
            .map(|e| e.electronegativity())
            .collect();
        let basic = metal_chi.iter().all(|&chi| chi < 1.4);
        let stable = r["stability"]["e_above_hull"].as_f64().unwrap_or(1.0) < 0.05;
        if basic && stable {
            sorbents.push(formula.to_string());
        }
    }
    println!("candidate basic oxides: {sorbents:?}\n");

    // --- use 2: x-ray spectra from fetched structures ---------------
    println!("=== use 2: XRD spectra computed locally from API structures ===");
    let mats = client.query(&json!({"nelements": {"$lte": 2}}), &["formula"])?;
    for m in mats.iter().take(3) {
        let id = m["_id"].as_str().unwrap();
        let s = match client.get_structure(id) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let pattern = compute_pattern(&s, CU_KA, 60.0);
        let strongest = pattern.strongest().map(|p| p.two_theta).unwrap_or(0.0);
        println!(
            "  {:<10} {} peaks below 60°, strongest at 2θ = {strongest:.1}°",
            s.formula(),
            pattern.peaks.len()
        );
    }
    println!();

    // --- use 3: interstitial/migration analysis ---------------------
    // The Voronoi-interstitial idea, via our geometric migration screen:
    // which fetched Li compounds have open channels?
    println!("=== use 3: migration-channel analysis on fetched Li compounds ===");
    let li = Element::from_symbol("Li")?;
    let li_mats = client.query(&json!({"elements": "Li"}), &["formula"])?;
    let mut found = 0;
    for m in &li_mats {
        let id = m["_id"].as_str().unwrap();
        let Ok(s) = client.get_structure(id) else {
            continue;
        };
        let sc = s.supercell(2, 2, 1);
        if let Some(path) = diffusion::easiest_path(&sc, li) {
            println!(
                "  {:<12} bottleneck {:.2} Å, barrier {:.2} eV, D(300K) = {:.1e} cm²/s",
                s.formula(),
                path.bottleneck_radius,
                path.barrier_ev,
                diffusion::diffusivity(path.barrier_ev, 300.0)
            );
            found += 1;
            if found >= 5 {
                break;
            }
        }
    }
    println!();

    // --- bonus: remote entries → local phase diagram -----------------
    println!("=== bonus: phase diagram from API entries (MPRester pattern) ===");
    // Find a binary oxide system present in the database.
    let binaries = client.query(&json!({"nelements": 2, "elements": "O"}), &["chemsys"])?;
    if let Some(sys) = binaries.first().and_then(|b| b["chemsys"].as_str()) {
        let els: Vec<&str> = sys.split('-').collect();
        let mut entries = client.get_entries_in_chemsys(&els)?;
        // Ensure elemental references exist (the client may not find
        // elemental entries in a small deployment; add model references).
        for el_sym in &els {
            let el = Element::from_symbol(el_sym)?;
            if !entries
                .iter()
                .any(|e| e.composition.num_elements() == 1 && e.composition.amount(el) > 0.0)
            {
                entries.push(materials_project::matsci::PdEntry::new(
                    format!("ref-{el_sym}"),
                    materials_project::matsci::Composition::from_pairs([(el, 1.0)]),
                    materials_project::elemental_reference(el),
                ));
            }
        }
        let pd = PhaseDiagram::new(entries)?;
        let stable: Vec<String> = pd
            .stable_entries(1e-6)
            .iter()
            .map(|e| e.composition.reduced_formula())
            .collect();
        println!("  {sys}: stable phases {stable:?}");
    }
    Ok(())
}
