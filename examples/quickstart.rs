//! Quickstart: the whole Materials Project loop in one small run.
//!
//! Ingest a handful of synthetic-ICSD crystals, run them through the
//! FireWorks → batch-queue → DFT → offline-loading pipeline, build the
//! derived views, and query the result through the Materials API —
//! including the paper's Fig.-4 URI.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use materials_project::mapi::ApiRequest;
use materials_project::matsci::Element;
use materials_project::{assemble, render_input_files, MaterialsProject};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mp = MaterialsProject::new()?;

    // (a)→(b): candidate materials arrive as MPS records.
    let recs = mp.ingest_icsd(25, 2012)?;
    println!(
        "ingested {} MPS records, e.g. {}",
        recs.len(),
        recs[0].structure.formula()
    );

    // Show what the Assembler turns a Stage into on the compute node.
    let spec = materials_project::make_spec(
        &recs[0],
        &materials_project::mp_dft::Incar::default(),
        3600.0,
    );
    let job = assemble(&spec)?;
    println!(
        "\n--- assembled input files for {} ---",
        job.structure.formula()
    );
    for (name, content) in render_input_files(&job) {
        println!("[{name}]");
        for line in content.lines().take(4) {
            println!("  {line}");
        }
    }

    // (c): submit for computation and run the campaign.
    mp.submit_calculations(&recs)?;
    let report = mp.run_campaign(20)?;
    println!("\n--- campaign ---");
    println!("rounds            {}", report.rounds);
    println!("batch jobs        {}", report.batch_jobs);
    println!("completed tasks   {}", report.completed);
    println!("walltime re-runs  {}", report.walltime_reruns);
    println!("error detours     {}", report.detours);
    println!("duplicate hits    {}", report.dedup_hits);
    println!("fizzled (human)   {}", report.fizzled);
    println!("compute node-sec  {:.0}", report.compute_s);
    println!("data loading sec  {:.1}", report.load_s);
    println!(
        "store overhead    {:.3} s  (the 'negligible fraction')",
        report.store_overhead_us as f64 / 1e6
    );

    // (e): analytics — materials view, stability, batteries, spectra.
    let li = Element::from_symbol("Li")?;
    let summary = mp.build_views(li)?;
    println!(
        "\n--- derived collections ---\n{}",
        serde_json::to_string_pretty(&summary)?
    );

    // V&V before "release".
    let violations = mp.run_vnv()?;
    println!(
        "\nV&V clean: {}",
        materials_project::mapi::vnv_clean(&violations)
    );

    // (f): dissemination through the Materials API.
    let api = mp.materials_api();
    let a_formula = mp.database().collection("materials").find(&json!({}))?[0]["formula"]
        .as_str()
        .unwrap()
        .to_string();
    let uri = format!("/rest/v1/materials/{a_formula}/vasp/energy");
    let resp = api.handle(&ApiRequest::get(&uri));
    println!("\nGET {uri}\n  status {}\n  {}", resp.status, resp.body);

    Ok(())
}
