//! The community portal: registration, the Materials API, rate limits,
//! sandboxes, and the publish flow of Fig. 3.
//!
//! ```text
//! cargo run --example community_portal
//! ```

use materials_project::mapi::{
    ApiRequest, AuthRegistry, Provider, ProviderAssertion, QueryEngine, Sandbox, WebUi,
};
use materials_project::matsci::Element;
use materials_project::MaterialsProject;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand up a populated deployment.
    let mut mp = MaterialsProject::new()?;
    let recs = mp.ingest_icsd(40, 7)?;
    mp.submit_calculations(&recs)?;
    mp.run_campaign(20)?;
    mp.build_views(Element::from_symbol("Li")?)?;
    let api = mp.materials_api();

    // --- registration via a trusted third party (§IV-D1) ---
    let alice = api.auth().register(&ProviderAssertion {
        provider: Provider::Google,
        email: "alice@university.edu".into(),
        signature: materials_project::mapi::auth::sign("alice@university.edu"),
    })?;
    println!("alice registered; api key {}", alice.api_key);

    // --- browsing the data over the REST API ---
    let mats = mp.database().collection("materials").find(&json!({}))?;
    let formula = mats[0]["formula"].as_str().unwrap();
    for uri in [
        format!("/rest/v1/materials/{formula}"),
        format!("/rest/v1/materials/{formula}/vasp/energy"),
        format!("/rest/v1/materials/{formula}/vasp/band_gap"),
        "/rest/v1/tasks/count".to_string(),
    ] {
        let resp = api.handle(&ApiRequest::get(&uri).with_key(&alice.api_key).at(1.0));
        println!("GET {uri} -> {}", resp.status);
    }

    // --- the structured query pymatgen's MPRester would send ---
    let resp = api.structured_query(
        &ApiRequest::get("/query").with_key(&alice.api_key).at(2.0),
        "materials",
        &json!({"nelements": {"$lte": 2}, "band_gap": {"$gt": 0.5}}),
        &["formula", "band_gap"],
    );
    println!(
        "\nbinary compounds with a gap > 0.5 eV: {}",
        resp.payload().as_array().map(Vec::len).unwrap_or(0)
    );

    // --- a malicious query is stopped at the QueryEngine ---
    let evil = api.structured_query(
        &ApiRequest::get("/query").with_key(&alice.api_key).at(3.0),
        "materials",
        &json!({"$where": "while(1){}"}),
        &[],
    );
    println!(
        "injection attempt -> {} ({})",
        evil.status, evil.body["error"]
    );

    // --- a scraper hits the rate limiter ---
    let mut served = 0;
    let mut throttled = 0;
    for i in 0..200 {
        let r = api.handle(
            &ApiRequest::get(&format!("/rest/v1/materials/{formula}"))
                .with_key(&alice.api_key)
                .at(4.0 + i as f64 * 0.01),
        );
        if r.status == 429 {
            throttled += 1;
        } else {
            served += 1;
        }
    }
    println!("scrape burst: {served} served, {throttled} throttled");

    // --- sandboxes and the publish flow (Fig. 3 d→f) ---
    let db = mp.database();
    let sandbox = Sandbox::new(db);
    let rec_id = sandbox.upload(
        "alice@university.edu",
        json!({"formula": "Li3FeO3", "note": "unpublished candidate"}),
    )?;
    sandbox.share("alice@university.edu", &rec_id, "bob@lab.gov")?;
    println!("\nsandbox: alice uploaded a private record and shared it with bob");
    println!(
        "  visible to anonymous: {}",
        sandbox.visible_to(None)?.len()
    );
    println!(
        "  visible to bob:       {}",
        sandbox.visible_to(Some("bob@lab.gov"))?.len()
    );
    sandbox.publish("alice@university.edu", &rec_id)?;
    println!("after publication:");
    println!(
        "  visible to anonymous: {}",
        sandbox.visible_to(None)?.len()
    );

    // --- the QueryEngine alias layer in action ---
    let qe = QueryEngine::new(db.clone());
    let stable = qe.count("materials", &json!({"e_above_hull": {"$lte": 0.0}}))?;
    println!("\nstable materials (via the 'e_above_hull' alias): {stable}");

    // --- the HTML5 portal (§III-D1): search page, material detail with
    // inline band-structure and XRD SVGs, and an aggregation-backed
    // statistics dashboard ---
    let ui = WebUi::new(&qe);
    let search_html = ui.search_page(&json!({"elements": "O"}), 10)?;
    let some_id = mats[0]["_id"].as_str().unwrap();
    let detail_html = ui.material_page(some_id)?.unwrap();
    let stats_html = ui.stats_page()?;
    println!("\nportal pages rendered:");
    println!("  search page   {} bytes", search_html.len());
    println!(
        "  detail page   {} bytes (band SVG: {}, XRD SVG: {})",
        detail_html.len(),
        detail_html.contains("class=\"bands\""),
        detail_html.contains("class=\"xrd\"")
    );
    println!("  stats page    {} bytes", stats_html.len());

    // --- portal telemetry: the Fig.-5 histogram over this session ---
    println!("\nquery-latency histogram (this session):");
    for (bucket, n) in api
        .weblog()
        .histogram_ms(&[100.0, 250.0, 500.0, 1000.0, 2000.0])
    {
        println!("  {bucket:>12}  {}", "#".repeat(n.min(60)));
    }
    let _ = AuthRegistry::new(); // (exported type exercised)
    Ok(())
}
