//! Battery screening: the workload behind Fig. 1 of the paper.
//!
//! Generate Li-intercalation candidates, compute them, derive voltage
//! and capacity for each, and print the screened candidates alongside
//! the narrow band occupied by known electrode materials — exactly the
//! story the paper's introduction tells.
//!
//! ```text
//! cargo run --example battery_screening
//! ```

use materials_project::matsci::{prototypes, Element};
use materials_project::MaterialsProject;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let li = Element::from_symbol("Li")?;
    let mut mp = MaterialsProject::new()?;

    // Known electrodes (the red band of Fig. 1): classic layered /
    // olivine / spinel chemistries.
    let knowns = [
        (
            "LiCoO2 (layered)",
            prototypes::layered_amo2(li, Element::from_symbol("Co")?, Element::from_symbol("O")?),
        ),
        (
            "LiFePO4 (olivine)",
            prototypes::olivine_ampo4(li, Element::from_symbol("Fe")?),
        ),
        (
            "LiMn2O4 (spinel)",
            prototypes::spinel(li, Element::from_symbol("Mn")?, Element::from_symbol("O")?),
        ),
        (
            "LiNiO2 (layered)",
            prototypes::layered_amo2(li, Element::from_symbol("Ni")?, Element::from_symbol("O")?),
        ),
    ];

    // Screened candidates: several hundred decorated frameworks.
    let candidates = mp.ingest_battery_candidates(300, 1234, li)?;
    println!(
        "screening {} Li-framework candidates + {} knowns",
        candidates.len(),
        knowns.len()
    );
    mp.submit_calculations(&candidates)?;
    let report = mp.run_campaign(25)?;
    println!(
        "campaign: {} completed, {} dedup hits, {} detours, {} fizzled",
        report.completed, report.dedup_hits, report.detours, report.fizzled
    );

    mp.build_views(li)?;
    let batteries = mp
        .database()
        .collection("batteries")
        .find(&json!({"type": "intercalation"}))?;

    println!("\n capacity(mAh/g)  voltage(V)  framework");
    println!(" ---------------  ----------  ---------");
    let mut in_window = 0;
    for b in &batteries {
        let v = b["average_voltage"].as_f64().unwrap_or(0.0);
        let c = b["capacity_grav"].as_f64().unwrap_or(0.0);
        if (0.0..=5.0).contains(&v) && c <= 1200.0 {
            in_window += 1;
            if in_window <= 25 {
                println!(
                    " {c:>15.0}  {v:>10.2}  {}",
                    b["framework"].as_str().unwrap_or("?")
                );
            }
        }
    }
    println!(
        " ... {} candidates inside the Fig.-1 window (0-5 V, 0-1200 mAh/g)",
        in_window
    );

    // Knowns, computed through the same physics.
    println!("\n known electrode          capacity  voltage");
    for (name, s) in &knowns {
        let frame = s.without_element(li);
        let x = s.composition().amount(li);
        let e_lith = materials_project::mp_dft::energy_per_atom(s) * s.num_sites() as f64;
        let e_frame = materials_project::mp_dft::energy_per_atom(&frame) * frame.num_sites() as f64;
        let electrode = materials_project::matsci::InsertionElectrode::new(
            frame.composition(),
            li,
            materials_project::elemental_reference(li),
            vec![
                materials_project::matsci::LithiationPoint {
                    x: 0.0,
                    energy: e_frame,
                },
                materials_project::matsci::LithiationPoint { x, energy: e_lith },
            ],
        )?;
        println!(
            " {name:<24} {:>8.0}  {:>7.2}",
            electrode.gravimetric_capacity(),
            electrode.average_voltage()
        );
    }
    println!("\nThe knowns cluster in a narrow band; the screen surfaces candidates");
    println!("outside it — the opportunity Fig. 1 illustrates.");
    Ok(())
}
