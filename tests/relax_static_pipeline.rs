//! The production two-step workflow: relaxation feeding a static run
//! through the Fuse's parent-output mechanism (§III-C2).

use materials_project::matsci::{Element, Structure};
use materials_project::MaterialsProject;
use serde_json::json;

#[test]
fn relax_then_static_flows_structure_through_the_fuse() {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(20, 55).unwrap();
    mp.submit_relax_static_workflows(&recs).unwrap();
    let report = mp.run_campaign(30).unwrap();
    assert!(report.completed >= 20, "{report:?}");

    let tasks = mp.database().collection("tasks");
    let relax_tasks = tasks
        .find(&json!({"task_type": "relax", "status": "converged"}))
        .unwrap();
    let static_tasks = tasks
        .find(&json!({"task_type": "static", "status": "converged"}))
        .unwrap();
    assert!(!relax_tasks.is_empty());
    assert!(!static_tasks.is_empty());

    // Every relax task published its relaxed structure and trajectory.
    for t in &relax_tasks {
        assert!(t["output"]["structure"].is_object(), "{}", t["_id"]);
        assert!(
            t["output"]["relax_trajectory"]
                .as_array()
                .map(Vec::len)
                .unwrap_or(0)
                >= 4,
            "trajectory missing on {}",
            t["_id"]
        );
    }

    // Every static task ran on the *relaxed* structure, not the input:
    // its engine spec's structure equals the parent's output structure.
    let engines = mp.database().collection("engines");
    let mut verified = 0;
    for t in &static_tasks {
        let fw = engines
            .find_one(&json!({"_id": t["fw_id"]}))
            .unwrap()
            .unwrap();
        // Deduplicated statics got pointers instead of specs; skip those.
        let parents = fw["parents"].as_array().unwrap();
        let Some(parent_id) = parents.first().and_then(|p| p.as_str()) else {
            continue;
        };
        let parent_task = tasks
            .find(&json!({"fw_id": parent_id, "status": "converged"}))
            .unwrap();
        let Some(parent_task) = parent_task.first() else {
            continue;
        };
        assert_eq!(
            fw["spec"]["structure"], parent_task["output"]["structure"],
            "static spec must carry the relaxed structure ({})",
            t["_id"]
        );
        verified += 1;
    }
    assert!(verified > 0, "no relax->static handoffs verified");
}

#[test]
fn relaxed_volume_differs_from_input_when_strained() {
    // A deliberately inflated cell: the relax step must contract it and
    // the static step must compute the contracted geometry.
    let mut mp = MaterialsProject::new().unwrap();
    let na = Element::from_symbol("Na").unwrap();
    let cl = Element::from_symbol("Cl").unwrap();
    let ideal = materials_project::matsci::prototypes::rocksalt(na, cl);
    let mut inflated = ideal.clone();
    inflated.lattice = inflated
        .lattice
        .scaled_to_volume(ideal.lattice.volume() * 1.2);
    let rec = materials_project::matsci::MpsRecord::new(
        "mps-strained",
        inflated.clone(),
        materials_project::matsci::MpsSource::User {
            account: "test".into(),
        },
    );
    mp.database()
        .collection("mps")
        .insert_one(rec.to_doc())
        .unwrap();
    mp.submit_relax_static_workflows(std::slice::from_ref(&rec))
        .unwrap();
    let report = mp.run_campaign(20).unwrap();
    assert!(report.completed >= 1, "{report:?}");

    let static_fw = mp
        .database()
        .collection("engines")
        .find_one(&json!({"_id": "fw-mps-strained-static"}))
        .unwrap()
        .unwrap();
    let relaxed: Structure =
        serde_json::from_value(static_fw["spec"]["structure"].clone()).unwrap();
    assert!(
        relaxed.lattice.volume() < inflated.lattice.volume() * 0.99,
        "static ran on un-relaxed geometry: {} vs {}",
        relaxed.lattice.volume(),
        inflated.lattice.volume()
    );
}
