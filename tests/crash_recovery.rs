//! Durability integration: snapshot + journal recovery of a populated
//! deployment, including a torn final journal write.

use materials_project::docstore::{Database, JournalOp, Persister};
use materials_project::MaterialsProject;
use serde_json::json;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mp-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_deployment_survives_snapshot_recovery() {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(25, 5).unwrap();
    mp.submit_calculations(&recs).unwrap();
    mp.run_campaign(15).unwrap();
    mp.build_views(materials_project::matsci::Element::from_symbol("Li").unwrap())
        .unwrap();

    let dir = tmpdir("full");
    let mut p = Persister::open(&dir).unwrap();
    p.snapshot(mp.database()).unwrap();

    let recovered = Persister::open(&dir).unwrap().recover().unwrap();
    for coll in mp.database().collection_names() {
        assert_eq!(
            recovered.collection(&coll).len(),
            mp.database().collection(&coll).len(),
            "collection {coll} size mismatch after recovery"
        );
    }
    // Spot-check: a material document round-trips byte-for-byte.
    let orig = mp
        .database()
        .collection("materials")
        .find(&json!({}))
        .unwrap();
    let back = recovered
        .collection("materials")
        .find_one(&json!({"_id": orig[0]["_id"]}))
        .unwrap()
        .unwrap();
    assert_eq!(back, orig[0]);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn journal_replay_reconstructs_queue_mutations() {
    let dir = tmpdir("queue");
    let db = Database::new();
    db.collection("engines")
        .insert_one(json!({"_id": "fw-1", "state": "READY", "launches": 0}))
        .unwrap();
    let mut p = Persister::open(&dir).unwrap();
    p.snapshot(&db).unwrap();

    // The claim + completion sequence, journaled as it would be by a
    // write-ahead layer.
    let claim = JournalOp::Update {
        collection: "engines".into(),
        filter: json!({"_id": "fw-1", "state": "READY"}),
        update: json!({"$set": {"state": "RUNNING"}, "$inc": {"launches": 1}}),
        many: false,
    };
    let task = JournalOp::Insert {
        collection: "tasks".into(),
        doc: json!({"_id": "task-fw-1-1", "fw_id": "fw-1", "status": "converged"}),
    };
    let complete = JournalOp::Update {
        collection: "engines".into(),
        filter: json!({"_id": "fw-1"}),
        update: json!({"$set": {"state": "COMPLETED", "task_id": "task-fw-1-1"}}),
        many: false,
    };
    // Apply to the live DB and journal each op.
    db.collection("engines")
        .update_one(
            &json!({"_id": "fw-1", "state": "READY"}),
            &json!({"$set": {"state": "RUNNING"}, "$inc": {"launches": 1}}),
        )
        .unwrap();
    p.append_ops(&[claim]).unwrap();
    db.collection("tasks")
        .insert_one(json!({"_id": "task-fw-1-1", "fw_id": "fw-1", "status": "converged"}))
        .unwrap();
    p.append_ops(&[task]).unwrap();
    db.collection("engines")
        .update_one(
            &json!({"_id": "fw-1"}),
            &json!({"$set": {"state": "COMPLETED", "task_id": "task-fw-1-1"}}),
        )
        .unwrap();
    p.append_ops(&[complete]).unwrap();

    let rec = Persister::open(&dir).unwrap().recover().unwrap();
    let fw = rec
        .collection("engines")
        .find_one(&json!({"_id": "fw-1"}))
        .unwrap()
        .unwrap();
    assert_eq!(fw["state"], "COMPLETED");
    assert_eq!(fw["launches"], 1);
    assert_eq!(rec.collection("tasks").len(), 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn snapshot_after_journal_truncates_journal() {
    let dir = tmpdir("compact");
    let db = Database::new();
    db.collection("c").insert_one(json!({"_id": 1})).unwrap();
    let mut p = Persister::open(&dir).unwrap();
    p.snapshot(&db).unwrap();
    p.append_ops(&[JournalOp::Insert {
        collection: "c".into(),
        doc: json!({"_id": 2}),
    }])
    .unwrap();
    db.collection("c").insert_one(json!({"_id": 2})).unwrap();
    // Compaction: new snapshot supersedes the journal.
    p.snapshot(&db).unwrap();
    assert!(!dir.join("journal.wal").exists());
    let rec = Persister::open(&dir).unwrap().recover().unwrap();
    assert_eq!(rec.collection("c").len(), 2);
    let _ = std::fs::remove_dir_all(dir);
}
