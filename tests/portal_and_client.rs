//! Portal + client integration over a live deployment: the HTML pages
//! render real data, the MPRester-style client feeds local analyses,
//! and the aggregation pipelines agree with first-principles counts.

use materials_project::mapi::{MpClient, QueryEngine, WebUi};
use materials_project::matsci::Element;
use materials_project::MaterialsProject;
use serde_json::json;

fn deployment() -> MaterialsProject {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(35, 23).unwrap();
    mp.submit_calculations(&recs).unwrap();
    mp.run_campaign(20).unwrap();
    mp.build_views(Element::from_symbol("Li").unwrap()).unwrap();
    mp
}

#[test]
fn portal_pages_render_live_data() {
    let mp = deployment();
    let qe = QueryEngine::new(mp.database().clone());
    let ui = WebUi::new(&qe);

    let search = ui.search_page(&json!({}), 100).unwrap();
    let n_mats = mp.database().collection("materials").len();
    assert!(search.contains(&format!("Search results ({n_mats})")));

    // Every material gets a detail page with band + DOS + XRD panels.
    for m in mp.database().collection("materials").dump().iter().take(5) {
        let id = m["_id"].as_str().unwrap();
        let html = ui.material_page(id).unwrap().unwrap();
        assert!(html.contains("class=\"bands\""), "{id} missing bands");
        assert!(html.contains("class=\"dos\""), "{id} missing DOS");
        assert!(html.contains("class=\"xrd\""), "{id} missing XRD");
    }

    let stats = ui.stats_page().unwrap();
    assert!(stats.contains(&format!("{n_mats} materials")));
}

#[test]
fn aggregation_agrees_with_direct_counts() {
    let mp = deployment();
    let mats = mp.database().collection("materials");
    let agg = mats
        .aggregate(&json!([
            {"$unwind": "$elements"},
            {"$group": {"_id": "$elements", "n": {"$sum": 1}}},
        ]))
        .unwrap();
    for row in &agg {
        let el = row["_id"].as_str().unwrap();
        let direct = mats.count(&json!({ "elements": el })).unwrap();
        assert_eq!(
            row["n"].as_u64().unwrap() as usize,
            direct,
            "aggregation disagrees with count for {el}"
        );
    }
}

#[test]
fn client_round_trips_structures_for_every_material() {
    let mp = deployment();
    let api = mp.materials_api();
    let client = MpClient::new(&api);
    let ids: Vec<String> = mp
        .database()
        .collection("materials")
        .dump()
        .iter()
        .map(|m| m["_id"].as_str().unwrap().to_string())
        .collect();
    for id in ids.iter().take(10) {
        let s = client.get_structure(id).unwrap();
        assert!(s.num_sites() > 0);
        // The fetched structure matches the stored formula.
        let doc = &client.get_materials(id).unwrap()[0];
        assert_eq!(doc["formula"].as_str().unwrap(), s.formula());
    }
}

#[test]
fn explain_shows_materials_indexes_in_use() {
    let mp = deployment();
    let mats = mp.database().collection("materials");
    let plan = mats.explain(&json!({"formula": "NaCl"})).unwrap();
    assert_eq!(plan["plan"], "INDEX_EQ", "{plan}");
    let plan = mats
        .explain(&json!({"output.band_gap": {"$gt": 2.0}}))
        .unwrap();
    assert_eq!(plan["plan"], "COLLSCAN");
}
