//! Integration tests for the campaign driver's operating modes and the
//! §III-C3 feature set under a hostile environment.

use materials_project::hpcsim::{BatchConfig, ClusterSpec};
use materials_project::matsci::Element;
use materials_project::{MaterialsProject, SubmissionMode};
use serde_json::json;

#[test]
fn task_farming_mode_completes_the_same_work_with_fewer_batch_jobs() {
    let run = |mode: SubmissionMode| {
        let mut mp = MaterialsProject::new()
            .unwrap()
            .with_cluster(ClusterSpec::small())
            .with_mode(mode);
        let recs = mp.ingest_icsd(40, 31).unwrap();
        mp.submit_calculations(&recs).unwrap();
        mp.run_campaign(40).unwrap()
    };
    let plain = run(SubmissionMode::OneJobPerCalc);
    let farmed = run(SubmissionMode::TaskFarming { tasks_per_farm: 10 });
    assert_eq!(
        plain.completed, farmed.completed,
        "both modes must complete the same distinct calculations"
    );
    assert!(
        farmed.batch_jobs * 3 < plain.batch_jobs,
        "farming must slash batch-job count: {} vs {}",
        farmed.batch_jobs,
        plain.batch_jobs
    );
}

#[test]
fn queue_cap_without_reservation_causes_rejection_churn() {
    let mut batch = BatchConfig::default(); // cap 8, no reservation
    batch.reservations.clear();
    let mut mp = MaterialsProject::new()
        .unwrap()
        .with_cluster(ClusterSpec::small())
        .with_batch_config(batch);
    let recs = mp.ingest_icsd(60, 13).unwrap();
    mp.submit_calculations(&recs).unwrap();
    let report = mp.run_campaign(80).unwrap();
    assert!(
        report.queue_rejections > 0,
        "60 burst submissions under cap 8 must hit the limit: {report:?}"
    );
    // Churn costs rounds but not correctness.
    let lingering = mp
        .database()
        .collection("engines")
        .count(&json!({"state": {"$in": ["READY", "RUNNING", "WAITING"]}}))
        .unwrap();
    assert_eq!(lingering, 0);
    assert!(report.completed > 30);
}

#[test]
fn tight_memory_cluster_forces_node_doubling_reruns() {
    let mut mp = MaterialsProject::new().unwrap().with_cluster(ClusterSpec {
        nodes: 64,
        cores_per_node: 24,
        mem_per_node_gb: 2.8,
    });
    let recs = mp.ingest_icsd(60, 7).unwrap();
    mp.submit_calculations(&recs).unwrap();
    let report = mp.run_campaign(40).unwrap();
    assert!(report.memory_reruns > 0, "{report:?}");
    // Jobs that OOMed were retried on more nodes and eventually passed
    // (memory per node halves each doubling).
    let doubled = mp
        .database()
        .collection("engines")
        .count(&json!({"spec.nodes": {"$gte": 2}}))
        .unwrap();
    assert!(doubled > 0);
}

#[test]
fn detoured_workflows_preserve_history_for_analysis() {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(60, 3).unwrap();
    mp.submit_calculations(&recs).unwrap();
    let report = mp.run_campaign(30).unwrap();
    if report.detours == 0 {
        // Deterministic seed should produce detours; if chemistry was
        // all easy this assertion would be vacuous — guard against it.
        panic!("seed 3 must produce at least one detour");
    }
    // Every detour firework records why it exists and what changed.
    let detours = mp
        .database()
        .collection("engines")
        .find(&json!({"detour_of": {"$exists": true}}))
        .unwrap();
    assert!(!detours.is_empty());
    for d in detours {
        let hist = d["history"].as_array().unwrap();
        assert!(
            hist.iter()
                .any(|h| h["event"] == "detour" && h["updates"]["$set"].is_object()),
            "detour {} missing modification record",
            d["_id"]
        );
    }
}

#[test]
fn sodium_campaign_builds_na_batteries() {
    // The paper's screening covered Na-ion as well as Li-ion ([22]).
    let na = Element::from_symbol("Na").unwrap();
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_battery_candidates(40, 99, na).unwrap();
    mp.submit_calculations(&recs).unwrap();
    mp.run_campaign(25).unwrap();
    mp.build_views(na).unwrap();
    let bats = mp
        .database()
        .collection("batteries")
        .find(&json!({"working_ion": "Na", "type": "intercalation"}))
        .unwrap();
    assert!(!bats.is_empty(), "Na-ion screening produced no electrodes");
    for b in &bats {
        let v = b["average_voltage"].as_f64().unwrap();
        assert!((0.0..6.0).contains(&v));
    }
}

#[test]
fn campaign_time_accounting_is_consistent() {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(30, 21).unwrap();
    mp.submit_calculations(&recs).unwrap();
    let report = mp.run_campaign(20).unwrap();
    assert!(report.compute_s > 0.0);
    assert!(report.load_s > 0.0);
    assert!(report.makespan_s > 0.0);
    // The paper's overhead claim, as an invariant: store ops are
    // negligible next to simulated compute.
    assert!(
        (report.store_overhead_us as f64 / 1e6) < report.compute_s / 100.0,
        "store overhead {}us vs compute {}s",
        report.store_overhead_us,
        report.compute_s
    );
}
