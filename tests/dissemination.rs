//! Dissemination-layer integration: the Materials API, QueryEngine
//! sanitization, rate limiting, sandbox publish flow, and the Fig.-5
//! telemetry, against a live populated deployment.

use materials_project::mapi::{auth, ApiRequest, Provider, ProviderAssertion, Sandbox};
use materials_project::matsci::Element;
use materials_project::MaterialsProject;
use serde_json::json;

fn deployment() -> MaterialsProject {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(30, 17).unwrap();
    mp.submit_calculations(&recs).unwrap();
    mp.run_campaign(15).unwrap();
    mp.build_views(Element::from_symbol("Li").unwrap()).unwrap();
    mp
}

#[test]
fn api_serves_every_material_by_three_identifier_kinds() {
    let mp = deployment();
    let api = mp.materials_api();
    let mats = mp
        .database()
        .collection("materials")
        .find(&json!({}))
        .unwrap();
    assert!(!mats.is_empty());
    for (i, m) in mats.iter().enumerate() {
        let t = i as f64 * 5.0;
        let by_id = api.handle(
            &ApiRequest::get(&format!(
                "/rest/v1/materials/{}",
                m["_id"].as_str().unwrap()
            ))
            .at(t),
        );
        assert_eq!(by_id.status, 200, "by id: {:?}", by_id.body);
        let by_formula = api.handle(
            &ApiRequest::get(&format!(
                "/rest/v1/materials/{}",
                m["formula"].as_str().unwrap()
            ))
            .at(t + 1.0),
        );
        assert_eq!(by_formula.status, 200);
        let by_sys = api.handle(
            &ApiRequest::get(&format!(
                "/rest/v1/materials/{}",
                m["chemsys"].as_str().unwrap()
            ))
            .at(t + 2.0),
        );
        assert_eq!(by_sys.status, 200);
    }
}

#[test]
fn sanitization_blocks_injection_everywhere() {
    let mp = deployment();
    let api = mp.materials_api();
    for evil in [
        json!({"$where": "sleep(10000)"}),
        json!({"x": {"$function": "x"}}),
        json!({"$or": [{"y": {"$where": "1"}}]}),
        json!({"a": {"$not": {"$where": "1"}}}),
    ] {
        let resp = api.structured_query(&ApiRequest::get("/q"), "materials", &evil, &[]);
        assert_eq!(resp.status, 400, "query {evil} must be rejected");
    }
}

#[test]
fn registered_users_get_separate_rate_buckets() {
    let mp = deployment();
    let api = mp.materials_api();
    let a = api
        .auth()
        .register(&ProviderAssertion {
            provider: Provider::Google,
            email: "a@x.org".into(),
            signature: auth::sign("a@x.org"),
        })
        .unwrap();
    let b = api
        .auth()
        .register(&ProviderAssertion {
            provider: Provider::Yahoo,
            email: "b@y.org".into(),
            signature: auth::sign("b@y.org"),
        })
        .unwrap();
    // Exhaust a's bucket at t=0.
    let mut a_throttled = false;
    for _ in 0..60 {
        if api
            .handle(&ApiRequest::get("/rest/v1/tasks/count").with_key(&a.api_key))
            .status
            == 429
        {
            a_throttled = true;
            break;
        }
    }
    assert!(a_throttled);
    // b is unaffected.
    let r = api.handle(&ApiRequest::get("/rest/v1/tasks/count").with_key(&b.api_key));
    assert_eq!(r.status, 200);
}

#[test]
fn sandbox_lifecycle_and_isolation() {
    let mp = deployment();
    let db = mp.database();
    let sb = Sandbox::new(db);
    let id_a = sb
        .upload("alice@x", json!({"formula": "LiNi0.5Mn1.5O4"}))
        .unwrap();
    let id_b = sb
        .upload("bob@y", json!({"formula": "Na3V2(PO4)3"}))
        .unwrap();

    // Isolation between users.
    assert_eq!(sb.visible_to(Some("alice@x")).unwrap().len(), 1);
    assert_eq!(sb.visible_to(Some("bob@y")).unwrap().len(), 1);
    // Cross-user sharing.
    assert!(sb.share("alice@x", &id_a, "bob@y").unwrap());
    assert_eq!(sb.visible_to(Some("bob@y")).unwrap().len(), 2);
    // Publication reaches everyone, including anonymous.
    assert!(sb.publish("bob@y", &id_b).unwrap());
    let public = sb.visible_to(None).unwrap();
    assert_eq!(public.len(), 1);
    assert_eq!(public[0]["formula"], "Na3V2(PO4)3");
}

#[test]
fn weblog_histogram_has_paper_shape() {
    let mp = deployment();
    let api = mp.materials_api();
    let mats = mp
        .database()
        .collection("materials")
        .find(&json!({}))
        .unwrap();
    for i in 0..400usize {
        let f = mats[i % mats.len()]["formula"].as_str().unwrap();
        api.handle(&ApiRequest::get(&format!("/rest/v1/materials/{f}")).at(i as f64 * 3.0));
    }
    let log = api.weblog();
    let p50 = log.percentile_ms(50.0).unwrap();
    assert!(
        (100.0..600.0).contains(&p50),
        "median should be a few hundred ms, got {p50}"
    );
    let hist = log.histogram_ms(&[100.0, 250.0, 500.0, 1000.0, 2000.0]);
    let total: usize = hist.iter().map(|(_, n)| n).sum();
    let tail: usize = hist[3..].iter().map(|(_, n)| n).sum();
    assert!(tail * 10 < total, "outliers must be few: {hist:?}");
}

#[test]
fn vnv_detects_injected_corruption() {
    let mp = deployment();
    // Corrupt one material the way a calculation bug would.
    mp.database()
        .collection("materials")
        .update_one(
            &json!({}),
            &json!({"$set": {"output.energy_per_atom": 12.5}}),
        )
        .unwrap();
    let violations = mp.run_vnv().unwrap();
    assert!(!materials_project::mapi::vnv_clean(&violations));
    let bad = violations
        .iter()
        .find(|(name, _)| name == "energy_in_physical_range")
        .unwrap();
    assert_eq!(bad.1.len(), 1);
}
