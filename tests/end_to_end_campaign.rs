//! Full-stack integration: ICSD ingest → FireWorks submission → batch
//! simulation + DFT execution → offline loading → derived views → V&V →
//! Materials API, all against one shared datastore (Fig. 2).

use materials_project::*;
use mp_matsci::Element;
use serde_json::json;

#[test]
fn campaign_produces_queryable_database() {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(60, 42).unwrap();
    assert_eq!(recs.len(), 60);
    let submitted = mp.submit_calculations(&recs).unwrap();
    assert_eq!(submitted, 60);

    let report = mp.run_campaign(25).unwrap();
    assert!(report.rounds >= 1);
    assert!(
        report.completed >= 40,
        "most calculations should converge eventually: {report:?}"
    );
    // The failure machinery must actually have been exercised.
    assert!(
        report.walltime_reruns + report.detours + report.memory_reruns > 0,
        "expected some failures in 60 heterogeneous jobs: {report:?}"
    );
    // Duplicates from the generator are deduplicated, not recomputed.
    assert!(report.dedup_hits > 0, "ICSD stream contains duplicates");
    // Loading took real (simulated) time; store overhead is tiny
    // relative to compute — the paper's "negligible fraction" claim.
    assert!(report.load_s > 0.0);
    assert!(report.compute_s > 0.0);

    // No firework left behind: every engine entry is terminal.
    let lingering = mp
        .database()
        .collection("engines")
        .count(&json!({"state": {"$in": ["READY", "RUNNING", "WAITING"]}}))
        .unwrap();
    assert_eq!(lingering, 0, "campaign must drain the queue");

    // Derived views.
    let li = Element::from_symbol("Li").unwrap();
    let summary = mp.build_views(li).unwrap();
    let n_materials = summary["materials"].as_u64().unwrap();
    assert!(n_materials >= 30, "materials view too small: {summary}");
    assert!(summary["bandstructures"].as_u64().unwrap() >= 30);
    assert!(summary["xrd_patterns"].as_u64().unwrap() >= 30);

    // V&V must pass on a freshly built view.
    let violations = mp.run_vnv().unwrap();
    assert!(
        mp_mapi::vnv_clean(&violations),
        "V&V violations: {violations:?}"
    );

    // Materials API serves the data.
    let api = mp.materials_api();
    let some_formula = mp
        .database()
        .collection("materials")
        .find(&json!({}))
        .unwrap()[0]["formula"]
        .as_str()
        .unwrap()
        .to_string();
    let resp = api.handle(&mp_mapi::ApiRequest::get(&format!(
        "/rest/v1/materials/{some_formula}/vasp/energy"
    )));
    assert_eq!(resp.status, 200, "{:?}", resp.body);
    assert!(resp.payload()[0]["output"]["energy"].as_f64().unwrap() < 0.0);
}

#[test]
fn resubmission_is_idempotent_via_binders() {
    let mut mp = MaterialsProject::new().unwrap();
    let recs = mp.ingest_icsd(20, 7).unwrap();
    mp.submit_calculations(&recs).unwrap();
    let r1 = mp.run_campaign(20).unwrap();
    let tasks_after_first = mp.database().collection("tasks").len();
    assert!(r1.completed > 0);

    // Submit the *same* calculations again (different fw ids, same
    // binders) — §III-C3: "the FireWorks code allows workflows to be
    // idempotent and be submitted without regard to prior history".
    let resubs: Vec<mp_matsci::MpsRecord> = recs
        .iter()
        .map(|r| {
            let mut c = r.clone();
            c.mps_id = format!("{}-again", r.mps_id);
            c
        })
        .collect();
    mp.submit_calculations(&resubs).unwrap();
    let r2 = mp.run_campaign(20).unwrap();
    let tasks_after_second = mp.database().collection("tasks").len();

    // Only the handful that fizzled the first time (and thus never
    // registered a binder) may run again.
    let new_tasks = tasks_after_second - tasks_after_first;
    assert!(
        new_tasks <= r1.fizzled + 2,
        "resubmission recomputed {new_tasks} tasks (first-round fizzles: {})",
        r1.fizzled
    );
    assert!(r2.dedup_hits >= 15, "dedup hits {}", r2.dedup_hits);
}
