//! `mpctl` — the operator's console for a Materials Project deployment.
//!
//! State persists between invocations through the snapshot/journal layer
//! (the same machinery the crash-recovery tests exercise), so this is a
//! small end-to-end demonstration of the datastore as a *durable*
//! service:
//!
//! ```text
//! mpctl demo  --data /tmp/mpdata --n 40 --seed 7   # build + snapshot
//! mpctl stats --data /tmp/mpdata                   # collection stats
//! mpctl query --data /tmp/mpdata materials '{"elements":"Li"}'
//! mpctl vnv   --data /tmp/mpdata                   # consistency checks
//! mpctl page  --data /tmp/mpdata mp-1 > mp-1.html  # portal detail page
//! ```

use materials_project::docstore::{BuiltinEngine, Database, Persister};
use materials_project::mapi::{QueryEngine, WebUi};
use materials_project::matsci::Element;
use materials_project::MaterialsProject;
use serde_json::Value;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ! {
    eprintln!(
        "usage: mpctl <demo|stats|query|vnv|page> --data DIR [args]\n\
         \n  demo  --data DIR [--n N] [--seed S]   build a deployment and snapshot it\
         \n  stats --data DIR                      per-collection document/index stats\
         \n  query --data DIR COLLECTION FILTER    run a sanitized find\
         \n  vnv   --data DIR                      run the MapReduce V&V checks\
         \n  page  --data DIR MATERIAL_ID          render the portal detail page"
    );
    std::process::exit(2)
}

fn recover(dir: &str) -> Result<Database, Box<dyn std::error::Error>> {
    Ok(Persister::open(dir)?.recover()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let Some(data) = arg_value(&args, "--data") else {
        usage()
    };
    // Positional arguments: everything after the subcommand that is not
    // part of a `--flag value` pair.
    let mut positional: Vec<String> = Vec::new();
    let mut skip_next = true; // skip the subcommand itself
    for a in args.iter() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = true;
            continue;
        }
        positional.push(a.clone());
    }

    match cmd.as_str() {
        "demo" => {
            let n: usize = arg_value(&args, "--n")
                .and_then(|s| s.parse().ok())
                .unwrap_or(40);
            let seed: u64 = arg_value(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(7);
            let mut mp = MaterialsProject::new()?;
            let recs = mp.ingest_icsd(n, seed)?;
            mp.submit_calculations(&recs)?;
            let report = mp.run_campaign(30)?;
            mp.build_views(Element::from_symbol("Li")?)?;
            let mut p = Persister::open(&data)?;
            p.snapshot(mp.database())?;
            println!(
                "deployment built: {} tasks, {} materials; snapshot written to {data}",
                report.completed,
                mp.database().collection("materials").len()
            );
        }
        "stats" => {
            let db = recover(&data)?;
            println!("{:<18} {:>8}  {:>6}  indexes", "collection", "docs", "KB");
            for name in db.collection_names() {
                let coll = db.collection(&name);
                let bytes: usize = coll
                    .dump()
                    .iter()
                    .map(|d| serde_json::to_string(d).map(|s| s.len()).unwrap_or(0))
                    .sum();
                println!(
                    "{:<18} {:>8}  {:>6}  {}",
                    name,
                    coll.len(),
                    bytes / 1024,
                    coll.index_paths().join(", ")
                );
            }
            println!("\ntotal documents: {}", db.total_documents());
        }
        "query" => {
            let (Some(coll), Some(filter)) = (positional.first(), positional.get(1)) else {
                usage()
            };
            let db = recover(&data)?;
            let criteria: Value = serde_json::from_str(filter)?;
            let qe = QueryEngine::new(db);
            let hits = qe.query(coll, &criteria, &[], Some(20))?;
            println!("{} document(s):", hits.len());
            for h in hits {
                println!("{}", serde_json::to_string(&h)?);
            }
        }
        "vnv" => {
            let db = recover(&data)?;
            let violations =
                materials_project::mapi::run_vnv_checks(&db, &BuiltinEngine::default())?;
            for (check, ids) in &violations {
                let status = if ids.is_empty() { "PASS" } else { "FAIL" };
                println!("{status}  {check}  ({} violations)", ids.len());
                for id in ids.iter().take(5) {
                    println!("        {id}");
                }
            }
            if !materials_project::mapi::vnv_clean(&violations) {
                std::process::exit(1);
            }
        }
        "page" => {
            let Some(id) = positional.first() else {
                usage()
            };
            let db = recover(&data)?;
            let qe = QueryEngine::new(db);
            let ui = WebUi::new(&qe);
            match ui.material_page(id)? {
                Some(html) => println!("{html}"),
                None => {
                    eprintln!("no material '{id}'");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
    Ok(())
}
