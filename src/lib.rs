//! # materials-project — a community accessible datastore of
//! high-throughput calculations
//!
//! Rust reproduction of the Materials Project infrastructure described
//! in Gunter et al., *"Community Accessible Datastore of High-Throughput
//! Calculations: Experiences from the Materials Project"* (SC 2012).
//!
//! The system is organized exactly as Fig. 2 of the paper: a single
//! document datastore ([`docstore`]) at the center, serving four roles
//! at once —
//!
//! 1. **Parallel computation**: the FireWorks workflow engine
//!    ([`fireworks`]) keeps its queue and task state in the store and
//!    drives simulated DFT calculations ([`dft`]) on a simulated HPC
//!    cluster ([`hpcsim`]);
//! 2. **Data analytics**: materials analyses ([`matsci`]) and derived
//!    views ([`core::analytics`]);
//! 3. **Data validation & verification**: offline loading and MapReduce
//!    V&V ([`core::loading`], [`mapi::builder`]);
//! 4. **Data dissemination**: the Materials API ([`mapi`]).
//!
//! ```
//! use materials_project::MaterialsProject;
//! use materials_project::matsci::Element;
//!
//! let mut mp = MaterialsProject::new().unwrap();
//! let recs = mp.ingest_icsd(10, 1).unwrap();
//! mp.submit_calculations(&recs).unwrap();
//! let report = mp.run_campaign(10).unwrap();
//! assert!(report.completed > 0);
//! mp.build_views(Element::from_symbol("Li").unwrap()).unwrap();
//! ```

pub use mp_core as core;
pub use mp_core::*;
pub use mp_dft;
pub use mp_docstore as docstore;
pub use mp_docstore::Database;
pub use mp_fireworks as fireworks;
pub use mp_hpcsim as hpcsim;
pub use mp_mapi as mapi;
pub use mp_matsci as matsci;

pub use mp_dft as dft;
