//! Simulated execution of one DFT calculation: resource demands,
//! runtimes, the paper's failure taxonomy, and the reduced output
//! document.
//!
//! §III-C1: runtimes "range from minutes to days" with "a high degree of
//! uncertainty"; jobs are "often killed due to insufficient walltime and
//! memory" (motivating **re-runs**) or "quit with an error message"
//! fixable by changing "a few minor input parameters" (motivating
//! **detours**). Every one of those phenomena is produced here,
//! deterministically, so workflow tests are reproducible.

use crate::incar::{Algo, Incar, Kpoints};
use crate::potential;
use crate::scf::{self, ScfResult};
use mp_matsci::Structure;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Converged cleanly.
    Converged,
    /// SCF did not converge within NELM (retry with safer parameters).
    Unconverged,
    /// Ionic-relaxation bracketing failure (the classic `ZBRENT: fatal
    /// error`); fixed by switching IBRION / smaller steps.
    ZbrentError,
    /// Not enough bands for the electron count; fixed by raising NBANDS.
    TooFewBands,
}

/// Resource demands the scheduler must honour (and may violate,
/// producing kills — that decision belongs to the HPC simulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// Wall-clock the run needs (simulated seconds).
    pub runtime_s: f64,
    /// Peak resident memory (GB).
    pub memory_gb: f64,
    /// Intermediate output volume generated (MB) — §III-B: "from a small
    /// input ... several MB of intermediate output data".
    pub intermediate_mb: f64,
}

/// Complete result of a simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Terminal status.
    pub status: RunStatus,
    /// SCF detail.
    pub scf: ScfResult,
    /// What the run consumed.
    pub demand: ResourceDemand,
    /// Band gap (eV) when converged.
    pub band_gap: Option<f64>,
}

/// Deterministic hash in [0,1) from a structure + parameter salt.
fn unit_hash(s: &Structure, salt: u64) -> f64 {
    let mut h: u64 = 0x9E3779B97F4A7C15 ^ salt;
    for b in s.fingerprint().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    (h % 100_000) as f64 / 100_000.0
}

/// Predicted resource demand for (structure, parameters) — what a
/// domain expert would request. The *actual* demand (returned in
/// [`RunResult`]) deviates from this heavy-tailedly, which is the
/// paper's "high degree of uncertainty" in runtime estimation.
pub fn predict_demand(s: &Structure, incar: &Incar, kpoints: &Kpoints) -> ResourceDemand {
    let n = s.num_sites() as f64;
    let nk = kpoints.total() as f64;
    // Cubic scaling in system size, linear in k-points and cutoff.
    let runtime_s = 40.0 * n.powi(3) / 64.0 * nk.sqrt() * (incar.encut / 500.0);
    let memory_gb = 0.4 + n * 0.12 * (incar.encut / 500.0);
    let intermediate_mb = 1.5 + n * 0.8 + nk * 0.05;
    ResourceDemand {
        runtime_s,
        memory_gb,
        intermediate_mb,
    }
}

/// Actual demand: prediction × a deterministic heavy-tailed factor in
/// [0.5, ~8].
pub fn actual_demand(s: &Structure, incar: &Incar, kpoints: &Kpoints) -> ResourceDemand {
    let p = predict_demand(s, incar, kpoints);
    let u = unit_hash(s, 0xA11CE);
    // Lognormal-ish: most runs near the prediction, a tail several×.
    let factor = 0.5 + 2.5 * u + if u > 0.9 { (u - 0.9) * 50.0 } else { 0.0 };
    let mem_factor = 0.8 + 0.9 * unit_hash(s, 0xB0B);
    ResourceDemand {
        runtime_s: p.runtime_s * factor,
        memory_gb: p.memory_gb * mem_factor,
        intermediate_mb: p.intermediate_mb,
    }
}

/// Execute one calculation (instantaneously — simulated time is carried
/// in the returned demand; wall-clock enforcement is the scheduler's
/// job).
pub fn run(s: &Structure, incar: &Incar, kpoints: &Kpoints) -> RunResult {
    let difficulty = potential::difficulty(s);
    let demand = actual_demand(s, incar, kpoints);

    // Parameter-sensitive failure taxonomy.
    // ZBRENT: ionic CG on difficult systems with default-ish steps.
    let zbrent_roll = unit_hash(s, 0x2B7E);
    if incar.ibrion == 2 && difficulty > 0.55 && zbrent_roll > 0.55 {
        return RunResult {
            status: RunStatus::ZbrentError,
            scf: ScfResult {
                converged: false,
                iterations: 3,
                energy_per_atom: 0.0,
                residual: f64::INFINITY,
                trace: vec![],
            },
            demand: ResourceDemand {
                runtime_s: demand.runtime_s * 0.1, // fails early
                ..demand
            },
            band_gap: None,
        };
    }
    // Too few bands: auto NBANDS underestimates for electron-rich cells.
    let nelect = s.composition().num_electrons();
    if incar.nbands != 0 && (incar.nbands as f64) < nelect / 2.0 {
        return RunResult {
            status: RunStatus::TooFewBands,
            scf: ScfResult {
                converged: false,
                iterations: 1,
                energy_per_atom: 0.0,
                residual: f64::INFINITY,
                trace: vec![],
            },
            demand: ResourceDemand {
                runtime_s: demand.runtime_s * 0.02,
                ..demand
            },
            band_gap: None,
        };
    }

    let e_limit = potential::energy_per_atom(s);
    let e_at_cutoff = potential::energy_at_cutoff(e_limit, incar.encut);
    let scf = scf::run_scf(incar, difficulty, e_at_cutoff);
    if !scf.converged {
        return RunResult {
            status: RunStatus::Unconverged,
            scf,
            demand,
            band_gap: None,
        };
    }
    let gap = mp_matsci::estimate_band_gap(&s.composition());
    RunResult {
        status: RunStatus::Converged,
        scf,
        demand,
        band_gap: Some(gap),
    }
}

/// The "safer parameter" detour the paper's Analyzer applies after an
/// error: what changed, and the new INCAR.
pub fn detour_parameters(
    incar: &Incar,
    status: &RunStatus,
    nelect: f64,
) -> Option<(Incar, String)> {
    match status {
        RunStatus::ZbrentError => {
            let mut fixed = incar.clone();
            fixed.ibrion = 1; // quasi-Newton instead of CG bracketing
            fixed.amix = (incar.amix * 0.5).max(0.05);
            Some((fixed, "ZBRENT: switch IBRION 2→1, halve AMIX".into()))
        }
        RunStatus::TooFewBands => {
            let mut fixed = incar.clone();
            fixed.nbands = (nelect / 2.0 * 1.3).ceil() as u32 + 4;
            let why = format!("TooFewBands: NBANDS → {}", fixed.nbands);
            Some((fixed, why))
        }
        RunStatus::Unconverged => {
            let mut fixed = incar.clone();
            fixed.algo = match incar.algo {
                Algo::Fast => Algo::Normal,
                Algo::Normal | Algo::All => Algo::All,
            };
            fixed.amix = (incar.amix * 0.5).max(0.05);
            fixed.nelm = (incar.nelm * 2).min(500);
            Some((
                fixed,
                "Unconverged: safer ALGO, halve AMIX, double NELM".into(),
            ))
        }
        RunStatus::Converged => None,
    }
}

impl RunResult {
    /// Reduce to the small task document stored in the datastore — the
    /// paper's FireWorks-Analyzer data reduction (§III-B: "parsed and
    /// reduced ... so that the aggregate volume of data stored in our
    /// database remains relatively small").
    pub fn to_task_doc(&self, s: &Structure, incar: &Incar, kpoints: &Kpoints) -> Value {
        let comp = s.composition();
        json!({
            "status": match self.status {
                RunStatus::Converged => "converged",
                RunStatus::Unconverged => "unconverged",
                RunStatus::ZbrentError => "zbrent_error",
                RunStatus::TooFewBands => "too_few_bands",
            },
            "formula": comp.reduced_formula(),
            "chemsys": comp.chemical_system(),
            "elements": comp.elements().iter().map(|e| e.symbol()).collect::<Vec<_>>(),
            "nsites": s.num_sites(),
            "nelectrons": comp.num_electrons(),
            "output": {
                "energy_per_atom": self.scf.energy_per_atom,
                "energy": self.scf.energy_per_atom * s.num_sites() as f64,
                "band_gap": self.band_gap,
                "scf_iterations": self.scf.iterations,
                "scf_trace": self.scf.trace,
                "residual": if self.scf.residual.is_finite() { json!(self.scf.residual) } else { json!(null) },
            },
            "input": {
                // Tasks keep the full calculation record — "much more
                // robust data about the output state and data produced
                // by the calculation" (§III-B2) — which is why Table I
                // shows them as the most complex documents.
                "structure": serde_json::to_value(s).expect("structure serializes"),
                "incar": incar.to_dict(),
                "kpoints": {"mesh": kpoints.mesh},
            },
            "resources": {
                "runtime_s": self.demand.runtime_s,
                "memory_gb": self.demand.memory_gb,
                "intermediate_mb": self.demand.intermediate_mb,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_matsci::{prototypes, Element};

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    fn easy() -> Structure {
        prototypes::rocksalt(el("Na"), el("Cl"))
    }

    #[test]
    fn easy_run_converges() {
        let r = run(&easy(), &Incar::default(), &Kpoints::gamma_only());
        assert_eq!(r.status, RunStatus::Converged);
        assert!(r.band_gap.unwrap() > 0.0);
        assert!(r.scf.energy_per_atom < 0.0);
    }

    #[test]
    fn deterministic() {
        let a = run(&easy(), &Incar::default(), &Kpoints::gamma_only());
        let b = run(&easy(), &Incar::default(), &Kpoints::gamma_only());
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_scales_with_system_size() {
        let small = predict_demand(&easy(), &Incar::default(), &Kpoints::gamma_only());
        let big = predict_demand(
            &easy().supercell(2, 2, 1),
            &Incar::default(),
            &Kpoints::gamma_only(),
        );
        assert!(big.runtime_s > small.runtime_s * 10.0);
        assert!(big.memory_gb > small.memory_gb);
    }

    #[test]
    fn runtime_spans_minutes_to_days() {
        // Across a population of structures the actual runtimes must span
        // orders of magnitude (§III-C1).
        let mut gen = mp_matsci::IcsdGenerator::new(21);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for rec in gen.generate(60) {
            let d = actual_demand(
                &rec.structure,
                &Incar::default(),
                &Kpoints::automatic(rec.structure.lattice.lengths(), 20.0),
            );
            lo = lo.min(d.runtime_s);
            hi = hi.max(d.runtime_s);
        }
        assert!(hi / lo > 50.0, "runtime spread {lo}..{hi}");
    }

    #[test]
    fn too_few_bands_triggers_and_detour_fixes() {
        let s = easy();
        let nelect = s.composition().num_electrons();
        let starved = Incar {
            nbands: 4,
            ..Incar::default()
        };
        let r = run(&s, &starved, &Kpoints::gamma_only());
        assert_eq!(r.status, RunStatus::TooFewBands);
        let (fixed, why) = detour_parameters(&starved, &r.status, nelect).unwrap();
        assert!(fixed.nbands as f64 >= nelect / 2.0);
        assert!(why.contains("NBANDS"));
        let r2 = run(&s, &fixed, &Kpoints::gamma_only());
        assert_eq!(r2.status, RunStatus::Converged);
    }

    #[test]
    fn unconverged_detour_escalates_to_convergence() {
        // Find a difficult structure, run with fragile settings, then
        // apply detours until converged — the paper's detour loop.
        let mut gen = mp_matsci::IcsdGenerator::new(5);
        let mut incar = Incar {
            algo: Algo::Fast,
            amix: 0.9,
            nelm: 25,
            ibrion: 0,
            ..Incar::default()
        };
        let mut found_failure = false;
        for rec in gen.generate(40) {
            let s = &rec.structure;
            let r = run(s, &incar, &Kpoints::gamma_only());
            if r.status == RunStatus::Unconverged {
                found_failure = true;
                let mut status = r.status;
                for _ in 0..4 {
                    let (fixed, _) =
                        detour_parameters(&incar, &status, s.composition().num_electrons())
                            .unwrap();
                    incar = fixed;
                    let r2 = run(s, &incar, &Kpoints::gamma_only());
                    status = r2.status;
                    if status == RunStatus::Converged {
                        break;
                    }
                }
                assert_eq!(
                    status,
                    RunStatus::Converged,
                    "detours must eventually fix SCF"
                );
                break;
            }
        }
        assert!(
            found_failure,
            "expected at least one unconverged run in 40 samples"
        );
    }

    #[test]
    fn zbrent_happens_for_some_difficult_structures() {
        let mut gen = mp_matsci::IcsdGenerator::new(33);
        let incar = Incar::default(); // ibrion = 2
        let mut seen = 0;
        for rec in gen.generate(80) {
            let r = run(&rec.structure, &incar, &Kpoints::gamma_only());
            if r.status == RunStatus::ZbrentError {
                seen += 1;
                // Detour must clear it.
                let (fixed, _) = detour_parameters(
                    &incar,
                    &r.status,
                    rec.structure.composition().num_electrons(),
                )
                .unwrap();
                assert_ne!(fixed.ibrion, 2);
                let r2 = run(&rec.structure, &fixed, &Kpoints::gamma_only());
                assert_ne!(r2.status, RunStatus::ZbrentError);
            }
        }
        assert!(
            seen > 0,
            "no ZBRENT errors in 80 difficult-chemistry samples"
        );
    }

    #[test]
    fn task_doc_is_reduced_and_queryable() {
        let s = easy();
        let incar = Incar::default();
        let kp = Kpoints::gamma_only();
        let r = run(&s, &incar, &kp);
        let doc = r.to_task_doc(&s, &incar, &kp);
        assert_eq!(doc["status"], "converged");
        assert_eq!(doc["formula"], "NaCl");
        assert!(doc["output"]["energy_per_atom"].as_f64().unwrap() < 0.0);
        // The reduced doc must be small even though the run generated MB
        // of intermediate data.
        let reduced_bytes = serde_json::to_string(&doc).unwrap().len();
        let intermediate_bytes = (r.demand.intermediate_mb * 1e6) as usize;
        assert!(reduced_bytes * 100 < intermediate_bytes);
    }
}
