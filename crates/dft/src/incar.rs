//! Calculation parameters — the INCAR-style control dictionary.
//!
//! FireWorks `Stage` objects carry these parameters as plain dicts
//! (§III-C2: "each job ... is specified as a dictionary of runtime
//! parameters"); the `Assembler` turns them into the input files a run
//! consumes. This module is the typed view of that dictionary plus
//! its JSON round-trip.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Electronic minimization algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Blocked-Davidson: robust, slower.
    Normal,
    /// RMM-DIIS: fast but fragile for difficult systems.
    Fast,
    /// Conjugate-gradient fallback: slowest, most robust.
    All,
}

/// Typed calculation parameters with VASP-flavoured names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incar {
    /// Plane-wave cutoff (eV).
    pub encut: f64,
    /// SCF convergence criterion (eV).
    pub ediff: f64,
    /// Max SCF iterations.
    pub nelm: u32,
    /// Electronic algorithm.
    pub algo: Algo,
    /// Number of bands (0 = auto).
    pub nbands: u32,
    /// Density mixing parameter (0, 1].
    pub amix: f64,
    /// Ionic relaxation scheme (2 = conjugate gradient, relevant to
    /// ZBRENT-class failures).
    pub ibrion: i32,
    /// Spin polarized?
    pub ispin: bool,
}

impl Default for Incar {
    fn default() -> Self {
        Incar {
            encut: 520.0,
            ediff: 1e-5,
            nelm: 60,
            algo: Algo::Fast,
            nbands: 0,
            amix: 0.4,
            ibrion: 2,
            ispin: false,
        }
    }
}

/// Validation failure for a parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncarError(pub String);

impl std::fmt::Display for IncarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid INCAR: {}", self.0)
    }
}
impl std::error::Error for IncarError {}

impl Incar {
    /// Check physical sanity of the parameters.
    pub fn validate(&self) -> Result<(), IncarError> {
        if !(50.0..=2000.0).contains(&self.encut) {
            return Err(IncarError(format!(
                "ENCUT {} outside [50, 2000]",
                self.encut
            )));
        }
        if self.ediff <= 0.0 || self.ediff > 1e-2 {
            return Err(IncarError(format!(
                "EDIFF {} outside (0, 1e-2]",
                self.ediff
            )));
        }
        if self.nelm == 0 || self.nelm > 10_000 {
            return Err(IncarError(format!("NELM {} outside [1, 10000]", self.nelm)));
        }
        if self.amix <= 0.0 || self.amix > 1.0 {
            return Err(IncarError(format!("AMIX {} outside (0, 1]", self.amix)));
        }
        Ok(())
    }

    /// To the flat JSON dict form stored in Stage documents.
    pub fn to_dict(&self) -> Value {
        serde_json::to_value(self).expect("Incar serializes")
    }

    /// From the dict form; missing keys take defaults, like real input
    /// parsers do.
    pub fn from_dict(v: &Value) -> Result<Incar, IncarError> {
        let mut base = serde_json::to_value(Incar::default()).expect("default serializes");
        if let (Some(bm), Some(vm)) = (base.as_object_mut(), v.as_object()) {
            for (k, val) in vm {
                bm.insert(k.clone(), val.clone());
            }
        }
        let inc: Incar =
            serde_json::from_value(base).map_err(|e| IncarError(format!("parse: {e}")))?;
        inc.validate()?;
        Ok(inc)
    }
}

/// k-point mesh specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Kpoints {
    /// Mesh subdivisions along each reciprocal axis.
    pub mesh: [u32; 3],
}

impl Kpoints {
    /// Γ-only mesh.
    pub fn gamma_only() -> Self {
        Kpoints { mesh: [1, 1, 1] }
    }

    /// Automatic mesh from a linear k-density and the lattice lengths:
    /// longer axes get fewer divisions.
    pub fn automatic(lengths: [f64; 3], kppra: f64) -> Self {
        // kppra = k-points per reciprocal Å, a linear density.
        let mesh = lengths.map(|l| ((kppra / l).ceil() as u32).max(1));
        Kpoints { mesh }
    }

    /// Total k-points in the mesh.
    pub fn total(&self) -> u32 {
        self.mesh[0] * self.mesh[1] * self.mesh[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn defaults_validate() {
        Incar::default().validate().unwrap();
    }

    #[test]
    fn validation_bounds() {
        for bad in [
            Incar {
                encut: 10.0,
                ..Incar::default()
            },
            Incar {
                ediff: 0.0,
                ..Incar::default()
            },
            Incar {
                amix: 1.5,
                ..Incar::default()
            },
            Incar {
                nelm: 0,
                ..Incar::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn dict_roundtrip() {
        let i = Incar {
            encut: 400.0,
            algo: Algo::Normal,
            ..Incar::default()
        };
        let d = i.to_dict();
        let back = Incar::from_dict(&d).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn partial_dict_takes_defaults() {
        let d = json!({"encut": 300.0});
        let i = Incar::from_dict(&d).unwrap();
        assert_eq!(i.encut, 300.0);
        assert_eq!(i.nelm, Incar::default().nelm);
    }

    #[test]
    fn bad_dict_rejected() {
        assert!(Incar::from_dict(&json!({"encut": 5.0})).is_err());
        assert!(Incar::from_dict(&json!({"encut": "high"})).is_err());
    }

    #[test]
    fn kpoints_auto_scales_inversely() {
        let k = Kpoints::automatic([4.0, 8.0, 4.0], 32.0);
        assert!(k.mesh[0] > k.mesh[1]);
        assert_eq!(k.mesh[0], k.mesh[2]);
        assert!(k.total() >= 1);
    }

    #[test]
    fn gamma_only() {
        assert_eq!(Kpoints::gamma_only().total(), 1);
    }
}
