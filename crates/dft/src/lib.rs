//! # mp-dft — synthetic density-functional-theory engine
//!
//! The VASP substitute (see DESIGN.md): a deterministic empirical energy
//! model relaxed through a genuine iterative SCF loop, wrapped in a
//! runner that reproduces the *operational envelope* of real DFT —
//! minutes-to-days runtimes with heavy-tailed uncertainty, memory
//! demands, non-guaranteed convergence, and the error taxonomy
//! (`ZBRENT`, too-few-bands, unconverged) that the FireWorks workflow
//! engine must recover from with re-runs and detours.
//!
//! * [`incar`] — calculation parameters and k-point meshes;
//! * [`potential`] — the deterministic energy model;
//! * [`scf`] — the iterative minimization with real divergence modes;
//! * [`runner`] — execution, failure injection, detour prescriptions,
//!   and reduction to small task documents.

pub mod incar;
pub mod potential;
pub mod relax;
pub mod runner;
pub mod scf;

pub use incar::{Algo, Incar, Kpoints};
pub use potential::{difficulty, energy_at_cutoff, energy_per_atom};
pub use relax::{relax, relax_volume, RelaxResult, RelaxStep};
pub use runner::{
    actual_demand, detour_parameters, predict_demand, run, ResourceDemand, RunResult, RunStatus,
};
pub use scf::{contraction_rate, run_scf, ScfResult};
