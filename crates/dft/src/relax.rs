//! Structure relaxation (geometry optimization).
//!
//! The production pipeline never ran a lone static calculation: each
//! material went through relaxation first, and the static run consumed
//! the *relaxed* geometry ("the job specification blueprint and
//! subsequent translation to execution state ... is dependent on the
//! desired code to be executed", §III-C2 — with the Fuse forwarding
//! parent outputs into the child's inputs). This module implements the
//! relaxation step: an isotropic cell-volume optimization by
//! golden-section search over the energy model, with a recorded
//! trajectory (the bulky part of real task documents).

use crate::potential::energy_per_atom;
use mp_matsci::Structure;
use serde::{Deserialize, Serialize};

/// One relaxation step record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxStep {
    /// Cell volume (Å³).
    pub volume: f64,
    /// Energy per atom at that volume (eV).
    pub energy_per_atom: f64,
}

/// Outcome of a relaxation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelaxResult {
    /// The relaxed structure.
    pub structure: Structure,
    /// Volume trajectory (every energy evaluation, in order).
    pub trajectory: Vec<RelaxStep>,
    /// Ionic steps taken (golden-section iterations).
    pub nsteps: u32,
    /// Energy per atom at the relaxed geometry.
    pub final_energy_per_atom: f64,
    /// |ΔV|/V of the final bracketing interval.
    pub volume_convergence: f64,
}

/// Relax the cell volume of `s`: golden-section search for the
/// energy-minimizing isotropic scale in [`lo`, `hi`] (fractions of the
/// input volume), to relative tolerance `tol`.
pub fn relax_volume(s: &Structure, lo: f64, hi: f64, tol: f64) -> RelaxResult {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let v0 = s.lattice.volume();
    let scaled = |scale: f64| -> Structure {
        let mut out = s.clone();
        out.lattice = out.lattice.scaled_to_volume(v0 * scale);
        out
    };
    let mut trajectory = Vec::new();
    let mut eval = |scale: f64| -> f64 {
        let st = scaled(scale);
        let e = energy_per_atom(&st);
        trajectory.push(RelaxStep {
            volume: st.lattice.volume(),
            energy_per_atom: e,
        });
        e
    };

    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let mut fc = eval(c);
    let mut fd = eval(d);
    let mut nsteps = 2u32;
    while (b - a) / ((b + a) / 2.0) > tol && nsteps < 200 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = eval(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = eval(d);
        }
        nsteps += 1;
    }
    let best = (a + b) / 2.0;
    let structure = scaled(best);
    let final_energy = energy_per_atom(&structure);
    trajectory.push(RelaxStep {
        volume: structure.lattice.volume(),
        energy_per_atom: final_energy,
    });
    RelaxResult {
        structure,
        trajectory,
        nsteps,
        final_energy_per_atom: final_energy,
        volume_convergence: (b - a) / best,
    }
}

/// Default relaxation window: ±20% volume, 0.5% tolerance — the VASP
/// double-relaxation ballpark.
pub fn relax(s: &Structure) -> RelaxResult {
    relax_volume(s, 0.8, 1.2, 5e-3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_matsci::{prototypes, Element};

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn relaxation_lowers_or_keeps_energy() {
        for s in [
            prototypes::rocksalt(el("Na"), el("Cl")),
            prototypes::layered_amo2(el("Li"), el("Co"), el("O")),
            prototypes::fcc(el("Cu")),
        ] {
            let e0 = energy_per_atom(&s);
            let r = relax(&s);
            assert!(
                r.final_energy_per_atom <= e0 + 1e-9,
                "{}: {} -> {}",
                s.formula(),
                e0,
                r.final_energy_per_atom
            );
        }
    }

    #[test]
    fn expanded_cell_contracts_back() {
        // Blow the cell up 15%: relaxation must bring the volume back
        // down toward the optimum.
        let s0 = prototypes::rocksalt(el("Na"), el("Cl"));
        let mut inflated = s0.clone();
        inflated.lattice = inflated
            .lattice
            .scaled_to_volume(s0.lattice.volume() * 1.15);
        let r = relax(&inflated);
        assert!(
            r.structure.lattice.volume() < inflated.lattice.volume(),
            "inflated {} relaxed {}",
            inflated.lattice.volume(),
            r.structure.lattice.volume()
        );
    }

    #[test]
    fn trajectory_is_recorded_and_converges() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let r = relax(&s);
        assert!(r.trajectory.len() >= 4);
        assert!(r.nsteps >= 2);
        assert!(r.volume_convergence < 0.01);
        // The last trajectory entry is the relaxed point.
        let last = r.trajectory.last().unwrap();
        assert!((last.energy_per_atom - r.final_energy_per_atom).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let s = prototypes::olivine_ampo4(el("Li"), el("Fe"));
        let a = relax(&s);
        let b = relax(&s);
        assert_eq!(a, b);
    }

    #[test]
    fn composition_preserved() {
        let s = prototypes::spinel(el("Li"), el("Mn"), el("O"));
        let r = relax(&s);
        assert_eq!(r.structure.formula(), s.formula());
        assert_eq!(r.structure.num_sites(), s.num_sites());
    }

    #[test]
    fn tight_window_respects_bounds() {
        let s = prototypes::fcc(el("Cu"));
        let v0 = s.lattice.volume();
        let r = relax_volume(&s, 0.95, 1.05, 1e-3);
        let ratio = r.structure.lattice.volume() / v0;
        assert!((0.94..=1.06).contains(&ratio), "{ratio}");
    }
}
