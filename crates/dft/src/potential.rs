//! Deterministic empirical energy model (the physics substitute).
//!
//! Real VASP solves the Kohn–Sham equations; the substitution (see
//! DESIGN.md) is an empirical potential that is *deterministic in the
//! structure* and reproduces the energetic **trends** the screening
//! pipeline depends on:
//!
//! * elemental references get element-specific cohesive energies;
//! * ionic bonding lowers the energy in proportion to the
//!   electronegativity difference of bonded neighbors (so oxides are
//!   strongly bound, intermetallics weakly);
//! * over/under-stretched bonds pay a harmonic strain penalty;
//! * alkali insertion into an oxide framework is exothermic by a few eV
//!   per ion — which is exactly what makes battery voltages land in the
//!   0–5 V window of Fig. 1.

use mp_matsci::{Element, Structure};

/// Cohesive-energy baseline per element (eV/atom), a smooth function of
/// position in the periodic table plus known anchors for the elements
/// that dominate our chemistry.
fn cohesive(el: Element) -> f64 {
    // Anchors close to experimental cohesive energies.
    match el.symbol() {
        "H" => 2.2,
        "Li" => 1.63,
        "Na" => 1.11,
        "K" => 0.93,
        "Rb" => 0.85,
        "Cs" => 0.80,
        "Mg" => 1.51,
        "Ca" => 1.84,
        "Al" => 3.39,
        "Si" => 4.63,
        "C" => 7.37,
        "N" => 4.9,
        "O" => 2.6,
        "P" => 3.43,
        "S" => 2.85,
        "F" => 0.84,
        "Cl" => 1.40,
        "Ti" => 4.85,
        "V" => 5.31,
        "Cr" => 4.10,
        "Mn" => 2.92,
        "Fe" => 4.28,
        "Co" => 4.39,
        "Ni" => 4.44,
        "Cu" => 3.49,
        "Zn" => 1.35,
        "W" => 8.90,
        "Mo" => 6.82,
        _ => {
            // Smooth fallback: transition metals bind harder.
            let z = el.z() as f64;
            if el.is_transition_metal() {
                4.0 + (z % 7.0) * 0.3
            } else {
                1.5 + (z % 5.0) * 0.4
            }
        }
    }
}

/// Ionic bond-energy coefficient (eV per unit electronegativity
/// difference per bond), calibrated so Li→layered-oxide insertion is
/// worth ~3–4 eV.
const IONIC_K: f64 = 1.0;
/// Metallic/covalent baseline bond depth (eV) for like-electronegativity
/// pairs, so elemental metals still cohere through their bond term.
const METALLIC_EPS: f64 = 0.15;
/// Neighbor cutoff as a multiple of the radius sum.
const BOND_CUTOFF: f64 = 1.65;

/// A tiny deterministic per-structure offset (±0.05 eV/atom) standing in
/// for everything the model leaves out; keyed on the formula so
/// identical compounds always agree.
fn structure_noise(s: &Structure) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.formula().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    ((h % 1000) as f64 / 1000.0 - 0.5) * 0.1
}

/// Total energy per atom (eV/atom) of a structure under the model.
pub fn energy_per_atom(s: &Structure) -> f64 {
    let n = s.num_sites();
    if n == 0 {
        return 0.0;
    }
    let mut e = 0.0f64;
    for i in 0..n {
        let el_i = s.sites[i].element;
        e -= cohesive(el_i);
        let cutoff = el_i.radius() * 2.0 * BOND_CUTOFF;
        let neigh = s.neighbors(i, cutoff);
        let mut bond_e = 0.0f64;
        let mut bonds = 0.0f64;
        for (j, d) in &neigh {
            let el_j = s.sites[*j].element;
            let d0 = el_i.radius() + el_j.radius();
            if *d > d0 * BOND_CUTOFF {
                continue;
            }
            let dchi = (el_i.electronegativity() - el_j.electronegativity()).abs();
            // A 3-6 Lennard-Jones-style pair term: minimum of depth
            // -eps exactly at the radius-sum distance, steep repulsion
            // inside it (no collapse), smoothly decaying attraction
            // beyond it (distant neighbors contribute little and never
            // a spurious penalty). eps grows with the electronegativity
            // difference — the ionic-bonding trend.
            let eps = IONIC_K * dchi + METALLIC_EPS;
            let x3 = (d0 / d).powi(3);
            bond_e += eps * (x3 * x3 - 2.0 * x3);
            bonds += 1.0;
        }
        // Saturate coordination: energy gain grows sub-linearly with
        // neighbor count (√ rather than linear), as real bonding does.
        if bonds > 0.0 {
            e += bond_e / bonds.sqrt();
        }
    }
    e / n as f64 + structure_noise(s)
}

/// Model energy convergence with plane-wave cutoff: the computed energy
/// approaches the basis-set limit from above as `encut` grows. Returns
/// the *computed* energy per atom at a finite cutoff.
pub fn energy_at_cutoff(e_converged: f64, encut: f64) -> f64 {
    e_converged + 1.2 * (-encut / 160.0).exp()
}

/// A structure-intrinsic "difficulty" in [0, 1): how hard the SCF is to
/// converge (transition metals and sulfides are harder, and a
/// deterministic hash term distinguishes otherwise-similar systems).
pub fn difficulty(s: &Structure) -> f64 {
    let comp = s.composition();
    let mut d = 0.0f64;
    for (el, frac) in comp.elements().iter().map(|&e| (e, comp.fraction(e))) {
        if el.is_transition_metal() {
            d += 0.35 * frac;
        }
        if matches!(el.symbol(), "S" | "Se" | "Mn" | "Cr" | "Fe") {
            d += 0.2 * frac;
        }
    }
    let mut h: u64 = 14695981039346656037;
    for b in s.fingerprint().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(1099511628211);
    }
    (d + (h % 997) as f64 / 997.0 * 0.5).min(0.99)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_matsci::prototypes;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn deterministic() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        assert_eq!(energy_per_atom(&s), energy_per_atom(&s));
    }

    #[test]
    fn all_energies_negative() {
        for s in [
            prototypes::fcc(el("Cu")),
            prototypes::rocksalt(el("Na"), el("Cl")),
            prototypes::olivine_ampo4(el("Li"), el("Fe")),
            prototypes::perovskite(el("Sr"), el("Ti"), el("O")),
        ] {
            let e = energy_per_atom(&s);
            assert!(e < 0.0, "{}: {e}", s.formula());
            assert!(e > -15.0, "{}: {e} unphysically deep", s.formula());
        }
    }

    #[test]
    fn ionic_compounds_bind_more_than_elements() {
        // Formation energy of NaCl from Na + Cl references must be negative.
        let nacl = prototypes::rocksalt(el("Na"), el("Cl"));
        let na = prototypes::bcc(el("Na"));
        let cl = prototypes::fcc(el("Cl"));
        let ef = energy_per_atom(&nacl) - 0.5 * energy_per_atom(&na) - 0.5 * energy_per_atom(&cl);
        assert!(ef < -0.3, "formation energy {ef} not favourable");
    }

    #[test]
    fn lithium_insertion_is_exothermic_in_battery_window() {
        // V = -[E(LiCoO2)·4 - E(CoO2)·3 - E(Li)·1] must be 0.5–5.5 V.
        let licoo2 = prototypes::layered_amo2(el("Li"), el("Co"), el("O"));
        let coo2 = licoo2.without_element(el("Li"));
        let li = prototypes::bcc(el("Li"));
        let e_lith = energy_per_atom(&licoo2) * licoo2.num_sites() as f64;
        let e_del = energy_per_atom(&coo2) * coo2.num_sites() as f64;
        let e_li = energy_per_atom(&li);
        let v = -(e_lith - e_del - e_li);
        assert!(v > 0.5 && v < 5.5, "insertion voltage {v}");
    }

    #[test]
    fn cutoff_convergence_monotone_from_above() {
        let e = -5.0;
        let e300 = energy_at_cutoff(e, 300.0);
        let e500 = energy_at_cutoff(e, 500.0);
        let e800 = energy_at_cutoff(e, 800.0);
        assert!(e300 > e500 && e500 > e800 && e800 > e);
        assert!((e800 - e) < 0.01);
    }

    #[test]
    fn difficulty_in_range_and_chemistry_dependent() {
        let easy = prototypes::rocksalt(el("Na"), el("Cl"));
        let hard = prototypes::rocksalt(el("Mn"), el("S"));
        let d_easy = difficulty(&easy);
        let d_hard = difficulty(&hard);
        assert!((0.0..1.0).contains(&d_easy));
        assert!((0.0..1.0).contains(&d_hard));
        assert!(
            d_hard > d_easy - 0.5,
            "hash term can overlap, but TM+S should trend harder"
        );
    }

    #[test]
    fn duplicate_structures_same_energy() {
        let a = prototypes::olivine_ampo4(el("Li"), el("Fe"));
        let b = prototypes::olivine_ampo4(el("Li"), el("Fe"));
        assert_eq!(energy_per_atom(&a), energy_per_atom(&b));
    }
}
