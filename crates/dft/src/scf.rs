//! The iterative SCF loop.
//!
//! §III-C1: "The core method is really a series of algorithms, each of
//! which is an iterative calculation with several key parameters. There
//! is no single set of parameters or iterative algorithms that works
//! best for all types of crystals, and there is no guarantee that a
//! given run will converge at all." This module reproduces that
//! behaviour: a damped fixed-point iteration whose convergence rate
//! depends on the mixing parameter, the algorithm, and the structure's
//! intrinsic difficulty — with genuine divergence when they're mismatched.

use crate::incar::{Algo, Incar};
use serde::{Deserialize, Serialize};

/// Outcome of one SCF minimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScfResult {
    /// Did the energy change fall below EDIFF within NELM iterations?
    pub converged: bool,
    /// Iterations actually performed.
    pub iterations: u32,
    /// Final computed energy per atom (eV/atom).
    pub energy_per_atom: f64,
    /// Residual |ΔE| at exit (eV).
    pub residual: f64,
    /// Energy trace (one entry per iteration), for log parsing tests.
    pub trace: Vec<f64>,
}

/// The per-iteration contraction factor for a given parameter set and
/// difficulty. < 1 converges; ≥ 1 diverges/oscillates.
pub fn contraction_rate(incar: &Incar, difficulty: f64) -> f64 {
    // Fast algorithm converges quicker but destabilizes on hard systems;
    // Normal is steady; All is slow but nearly always safe.
    let (base, fragility) = match incar.algo {
        Algo::Fast => (0.45, 1.15),
        Algo::Normal => (0.60, 0.45),
        Algo::All => (0.75, 0.15),
    };
    // Over-aggressive mixing destabilizes difficult systems.
    let mix_penalty = (incar.amix - 0.4).max(0.0) * 0.8;
    base + fragility * difficulty * (0.5 + mix_penalty)
}

/// Run the simulated SCF loop toward `e_converged` (the basis-set-limit
/// energy at this cutoff).
pub fn run_scf(incar: &Incar, difficulty: f64, e_converged: f64) -> ScfResult {
    let rate = contraction_rate(incar, difficulty);
    let mut delta = 2.0 + 3.0 * difficulty; // initial energy error (eV)
    let mut energy = e_converged + delta;
    let mut trace = Vec::with_capacity(incar.nelm as usize);
    let mut iterations = 0;
    for _ in 0..incar.nelm {
        iterations += 1;
        delta *= rate;
        // Diverging runs oscillate with growing amplitude.
        energy = if rate < 1.0 {
            e_converged + delta
        } else {
            e_converged + delta * if iterations % 2 == 0 { 1.0 } else { -1.0 }
        };
        trace.push(energy);
        if delta.abs() < incar.ediff {
            return ScfResult {
                converged: true,
                iterations,
                energy_per_atom: energy,
                residual: delta.abs(),
                trace,
            };
        }
        if delta.abs() > 1e6 {
            break; // Hard divergence.
        }
    }
    ScfResult {
        converged: false,
        iterations,
        energy_per_atom: energy,
        residual: delta.abs(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_system_converges_fast() {
        let r = run_scf(&Incar::default(), 0.1, -5.0);
        assert!(r.converged);
        assert!(r.iterations < 40, "{} iterations", r.iterations);
        assert!((r.energy_per_atom - (-5.0)).abs() < 1e-4);
    }

    #[test]
    fn hard_system_with_fast_algo_diverges() {
        let incar = Incar {
            algo: Algo::Fast,
            ..Incar::default()
        };
        let r = run_scf(&incar, 0.95, -5.0);
        assert!(
            !r.converged,
            "should not converge: rate {}",
            contraction_rate(&incar, 0.95)
        );
    }

    #[test]
    fn hard_system_recovers_with_safe_algo() {
        let incar = Incar {
            algo: Algo::All,
            amix: 0.1,
            nelm: 200,
            ..Incar::default()
        };
        let r = run_scf(&incar, 0.95, -5.0);
        assert!(
            r.converged,
            "safe algorithm should converge (rate {})",
            contraction_rate(&incar, 0.95)
        );
    }

    #[test]
    fn tighter_ediff_needs_more_iterations() {
        let loose = run_scf(
            &Incar {
                ediff: 1e-3,
                ..Incar::default()
            },
            0.2,
            -4.0,
        );
        let tight = run_scf(
            &Incar {
                ediff: 1e-7,
                nelm: 200,
                ..Incar::default()
            },
            0.2,
            -4.0,
        );
        assert!(loose.converged && tight.converged);
        assert!(tight.iterations > loose.iterations);
    }

    #[test]
    fn trace_is_monotone_when_converging() {
        let r = run_scf(&Incar::default(), 0.1, -5.0);
        assert!(r.trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        assert_eq!(r.trace.len() as u32, r.iterations);
    }

    #[test]
    fn contraction_rate_orders_algorithms_on_hard_systems() {
        let hard = 0.9;
        let fast = contraction_rate(
            &Incar {
                algo: Algo::Fast,
                ..Incar::default()
            },
            hard,
        );
        let normal = contraction_rate(
            &Incar {
                algo: Algo::Normal,
                ..Incar::default()
            },
            hard,
        );
        let all = contraction_rate(
            &Incar {
                algo: Algo::All,
                ..Incar::default()
            },
            hard,
        );
        assert!(fast > normal, "Fast should be most fragile");
        assert!(normal > all * 0.8, "All is safest");
        assert!(all < 1.0, "All must converge even on hard systems");
    }
}
