//! # mp-matsci — materials-science object model and analysis
//!
//! The Rust analogue of *pymatgen* (§III-D3 of the SC 2012 Materials
//! Project paper): "a Python object model for materials data along with
//! a well-tested set of structure and thermodynamic analysis tools".
//!
//! * [`element`] — embedded periodic table (H…Pu);
//! * [`composition`] — formula parsing, reduction, chemical systems;
//! * [`lattice`] / [`structure`] — crystals with periodic geometry;
//! * [`prototypes`] — the decorated structure families of
//!   high-throughput screening;
//! * [`mps`] — the Materials Project Source JSON format (§III-B1);
//! * [`icsd`] — the synthetic ICSD substitute (see DESIGN.md);
//! * [`analysis`] — phase diagrams, batteries, XRD, band structures;
//! * [`matcher`] — duplicate-structure detection feeding FireWorks
//!   Binders.

pub mod analysis;
pub mod composition;
pub mod element;
pub mod icsd;
pub mod lattice;
pub mod matcher;
pub mod mps;
pub mod prototypes;
pub mod structure;

pub use analysis::bandstructure::{
    compute_bands, estimate_band_gap, BandStructure, DensityOfStates,
};
pub use analysis::battery::{
    ConversionElectrode, InsertionElectrode, LithiationPoint, VoltageStep,
};
pub use analysis::diffusion::{diffusivity, easiest_path, MigrationPath};
pub use analysis::phase_diagram::{PdEntry, PhaseDiagram};
pub use analysis::xrd::{compute_pattern, XrdPattern, CU_KA};
pub use composition::{Composition, FormulaError};
pub use element::{Element, ElementData, PERIODIC_TABLE};
pub use icsd::IcsdGenerator;
pub use lattice::Lattice;
pub use matcher::StructureMatcher;
pub use mps::{MpsRecord, MpsSource};
pub use structure::{Site, Structure};
