//! Crystal structures: a lattice plus occupied sites.

use crate::composition::Composition;
use crate::element::Element;
use crate::lattice::{Lattice, Vec3};
use serde::{Deserialize, Serialize};

/// One occupied crystallographic site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Occupying element.
    pub element: Element,
    /// Fractional coordinates in the lattice basis.
    pub frac: Vec3,
}

impl Site {
    /// Construct a site, normalizing coordinates into [0, 1).
    pub fn new(element: Element, frac: Vec3) -> Self {
        Site {
            element,
            frac: [wrap(frac[0]), wrap(frac[1]), wrap(frac[2])],
        }
    }
}

fn wrap(x: f64) -> f64 {
    let w = x - x.floor();
    if w >= 1.0 {
        0.0
    } else {
        w
    }
}

/// A periodic crystal structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Structure {
    /// Unit-cell lattice.
    pub lattice: Lattice,
    /// Occupied sites.
    pub sites: Vec<Site>,
}

impl Structure {
    /// Build from a lattice and (element, frac-coord) pairs.
    pub fn new(lattice: Lattice, sites: Vec<(Element, Vec3)>) -> Self {
        Structure {
            lattice,
            sites: sites.into_iter().map(|(e, f)| Site::new(e, f)).collect(),
        }
    }

    /// Number of sites in the cell.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The cell's composition.
    pub fn composition(&self) -> Composition {
        Composition::from_pairs(self.sites.iter().map(|s| (s.element, 1.0)))
    }

    /// Reduced formula of the composition.
    pub fn formula(&self) -> String {
        self.composition().reduced_formula()
    }

    /// Mass density (g/cm³).
    pub fn density(&self) -> f64 {
        // amu per Å³ → g/cm³ : 1 u/Å³ = 1.66053906660 g/cm³.
        let mass: f64 = self.sites.iter().map(|s| s.element.mass()).sum();
        1.66053906660 * mass / self.lattice.volume()
    }

    /// Volume per atom (Å³).
    pub fn volume_per_atom(&self) -> f64 {
        if self.sites.is_empty() {
            0.0
        } else {
            self.lattice.volume() / self.sites.len() as f64
        }
    }

    /// Minimum-image distance between two sites (Å).
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.lattice
            .pbc_distance(&self.sites[i].frac, &self.sites[j].frac)
    }

    /// Shortest interatomic distance in the cell (or `None` for < 2 sites
    /// — then the shortest self-image distance through the lattice).
    pub fn min_distance(&self) -> Option<f64> {
        let n = self.sites.len();
        if n == 0 {
            return None;
        }
        let mut best = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                best = best.min(self.distance(i, j));
            }
            // Self image through each lattice vector.
            let lengths = self.lattice.lengths();
            for l in lengths {
                best = best.min(l);
            }
        }
        Some(best)
    }

    /// All neighbors of site `i` within `cutoff` Å, counting each
    /// periodic image separately (so coordination numbers come out
    /// right: 6 for rocksalt at the nearest-neighbor shell).
    pub fn neighbors(&self, i: usize, cutoff: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let fi = self.sites[i].frac;
        for (j, sj) in self.sites.iter().enumerate() {
            for di in -1i32..=1 {
                for dj in -1i32..=1 {
                    for dk in -1i32..=1 {
                        if j == i && di == 0 && dj == 0 && dk == 0 {
                            continue;
                        }
                        let df = [
                            sj.frac[0] - fi[0] + di as f64,
                            sj.frac[1] - fi[1] + dj as f64,
                            sj.frac[2] - fi[2] + dk as f64,
                        ];
                        let d = crate::lattice::norm(&self.lattice.to_cartesian(&df));
                        if d <= cutoff {
                            out.push((j, d));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Integer supercell: replicate the cell `na × nb × nc` times.
    pub fn supercell(&self, na: usize, nb: usize, nc: usize) -> Structure {
        let [a, b, c] = &self.lattice.matrix;
        let scale = |v: &Vec3, n: usize| [v[0] * n as f64, v[1] * n as f64, v[2] * n as f64];
        let lattice = Lattice::new([scale(a, na), scale(b, nb), scale(c, nc)]);
        let mut sites = Vec::with_capacity(self.sites.len() * na * nb * nc);
        for ia in 0..na {
            for ib in 0..nb {
                for ic in 0..nc {
                    for s in &self.sites {
                        sites.push((
                            s.element,
                            [
                                (s.frac[0] + ia as f64) / na as f64,
                                (s.frac[1] + ib as f64) / nb as f64,
                                (s.frac[2] + ic as f64) / nc as f64,
                            ],
                        ));
                    }
                }
            }
        }
        Structure::new(lattice, sites)
    }

    /// Replace every occurrence of `from` with `to` (cation substitution,
    /// the workhorse move of high-throughput screening).
    pub fn substituted(&self, from: Element, to: Element) -> Structure {
        let mut s = self.clone();
        for site in &mut s.sites {
            if site.element == from {
                site.element = to;
            }
        }
        s
    }

    /// Remove all sites of `el` (e.g. delithiation of a cathode).
    pub fn without_element(&self, el: Element) -> Structure {
        let mut s = self.clone();
        s.sites.retain(|site| site.element != el);
        s
    }

    /// A canonical per-structure fingerprint for duplicate detection:
    /// reduced formula, site count, rounded volume/atom, and a sorted,
    /// coarsely-rounded list of (element, nearest-neighbor distance).
    pub fn fingerprint(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.sites.len() + 2);
        parts.push(self.formula());
        parts.push(format!("v{:.1}", self.volume_per_atom()));
        let mut env: Vec<String> = (0..self.sites.len())
            .map(|i| {
                let nn = self
                    .neighbors(i, 6.0)
                    .first()
                    .map(|(_, d)| *d)
                    .unwrap_or(0.0);
                format!("{}:{:.1}", self.sites[i].element.symbol(), nn)
            })
            .collect();
        env.sort_unstable();
        parts.extend(env);
        parts.join("|")
    }

    /// Displace every site by a deterministic pseudo-random jitter of at
    /// most `amplitude` Å (models thermal noise / symmetry breaking).
    pub fn perturbed(&self, amplitude: f64, seed: u64) -> Structure {
        let mut s = self.clone();
        let [la, lb, lc] = self.lattice.lengths();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for site in &mut s.sites {
            site.frac = [
                wrap(site.frac[0] + next() * amplitude / la),
                wrap(site.frac[1] + next() * amplitude / lb),
                wrap(site.frac[2] + next() * amplitude / lc),
            ];
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    /// NaCl rocksalt conventional cell (8 atoms).
    pub fn rocksalt(a: f64, cation: &str, anion: &str) -> Structure {
        let c = el(cation);
        let n = el(anion);
        Structure::new(
            Lattice::cubic(a),
            vec![
                (c, [0.0, 0.0, 0.0]),
                (c, [0.5, 0.5, 0.0]),
                (c, [0.5, 0.0, 0.5]),
                (c, [0.0, 0.5, 0.5]),
                (n, [0.5, 0.0, 0.0]),
                (n, [0.0, 0.5, 0.0]),
                (n, [0.0, 0.0, 0.5]),
                (n, [0.5, 0.5, 0.5]),
            ],
        )
    }

    #[test]
    fn composition_and_formula() {
        let s = rocksalt(5.64, "Na", "Cl");
        assert_eq!(s.formula(), "NaCl");
        assert_eq!(s.num_sites(), 8);
        assert_eq!(s.composition().num_atoms(), 8.0);
    }

    #[test]
    fn density_of_nacl() {
        // Real NaCl: 2.165 g/cm³ at a = 5.64 Å.
        let s = rocksalt(5.64, "Na", "Cl");
        assert!((s.density() - 2.165).abs() < 0.02, "{}", s.density());
    }

    #[test]
    fn nearest_neighbor_distance() {
        let s = rocksalt(5.64, "Na", "Cl");
        // Na-Cl distance = a/2.
        let d = s.min_distance().unwrap();
        assert!((d - 2.82).abs() < 0.01, "{d}");
    }

    #[test]
    fn neighbors_sorted() {
        let s = rocksalt(5.64, "Na", "Cl");
        let ns = s.neighbors(0, 3.0);
        assert_eq!(ns.len(), 6, "rocksalt coordination number");
        assert!(ns.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn supercell_multiplies() {
        let s = rocksalt(5.64, "Na", "Cl");
        let sc = s.supercell(2, 1, 1);
        assert_eq!(sc.num_sites(), 16);
        assert!((sc.lattice.volume() - 2.0 * s.lattice.volume()).abs() < 1e-9);
        // Density is intensive.
        assert!((sc.density() - s.density()).abs() < 1e-9);
    }

    #[test]
    fn substitution() {
        let s = rocksalt(5.64, "Na", "Cl").substituted(el("Na"), el("Li"));
        assert_eq!(s.formula(), "LiCl");
    }

    #[test]
    fn delithiation() {
        let s = rocksalt(4.1, "Li", "O").without_element(el("Li"));
        assert_eq!(s.formula(), "O");
        assert_eq!(s.num_sites(), 4);
    }

    #[test]
    fn coords_wrap_into_cell() {
        let s = Structure::new(Lattice::cubic(4.0), vec![(el("Fe"), [1.25, -0.25, 2.0])]);
        assert_eq!(s.sites[0].frac, [0.25, 0.75, 0.0]);
    }

    #[test]
    fn fingerprint_detects_same_structure() {
        let s1 = rocksalt(5.64, "Na", "Cl");
        let s2 = rocksalt(5.64, "Na", "Cl");
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        let s3 = rocksalt(5.0, "Na", "Cl");
        assert_ne!(s1.fingerprint(), s3.fingerprint());
        let s4 = rocksalt(5.64, "Li", "Cl");
        assert_ne!(s1.fingerprint(), s4.fingerprint());
    }

    #[test]
    fn perturbation_is_deterministic_and_small() {
        let s = rocksalt(5.64, "Na", "Cl");
        let p1 = s.perturbed(0.1, 42);
        let p2 = s.perturbed(0.1, 42);
        assert_eq!(p1, p2);
        assert_ne!(p1, s);
        for (a, b) in s.sites.iter().zip(p1.sites.iter()) {
            let d = s.lattice.pbc_distance(&a.frac, &b.frac);
            assert!(d < 0.2, "perturbation too large: {d}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = rocksalt(5.64, "Na", "Cl");
        let j = serde_json::to_string(&s).unwrap();
        let back: Structure = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
