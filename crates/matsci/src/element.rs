//! Periodic-table data for elements H (Z=1) through Pu (Z=94).
//!
//! The embedded table carries the properties the Materials Project
//! pipeline needs: atomic mass (u), Pauling electronegativity, covalent
//! radius (Å), and common oxidation states. Values are standard textbook
//! data rounded to the precision the analyses use.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A chemical element, identified by atomic number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Element(pub u8);

/// Static per-element record.
#[derive(Debug, Clone, Copy)]
pub struct ElementData {
    /// Atomic number.
    pub z: u8,
    /// IUPAC symbol.
    pub symbol: &'static str,
    /// English name.
    pub name: &'static str,
    /// Standard atomic mass (u).
    pub mass: f64,
    /// Pauling electronegativity; 0.0 where undefined (noble gases).
    pub electronegativity: f64,
    /// Covalent radius (Å).
    pub radius: f64,
    /// Common oxidation states.
    pub oxidation_states: &'static [i8],
}

macro_rules! el {
    ($z:expr, $sym:expr, $name:expr, $mass:expr, $chi:expr, $r:expr, [$($ox:expr),*]) => {
        ElementData {
            z: $z,
            symbol: $sym,
            name: $name,
            mass: $mass,
            electronegativity: $chi,
            radius: $r,
            oxidation_states: &[$($ox),*],
        }
    };
}

/// The embedded periodic table, indexed by `Z - 1`.
pub static PERIODIC_TABLE: &[ElementData] = &[
    el!(1, "H", "Hydrogen", 1.008, 2.20, 0.31, [-1, 1]),
    el!(2, "He", "Helium", 4.0026, 0.0, 0.28, []),
    el!(3, "Li", "Lithium", 6.94, 0.98, 1.28, [1]),
    el!(4, "Be", "Beryllium", 9.0122, 1.57, 0.96, [2]),
    el!(5, "B", "Boron", 10.81, 2.04, 0.84, [3]),
    el!(6, "C", "Carbon", 12.011, 2.55, 0.76, [-4, 2, 4]),
    el!(7, "N", "Nitrogen", 14.007, 3.04, 0.71, [-3, 3, 5]),
    el!(8, "O", "Oxygen", 15.999, 3.44, 0.66, [-2]),
    el!(9, "F", "Fluorine", 18.998, 3.98, 0.57, [-1]),
    el!(10, "Ne", "Neon", 20.180, 0.0, 0.58, []),
    el!(11, "Na", "Sodium", 22.990, 0.93, 1.66, [1]),
    el!(12, "Mg", "Magnesium", 24.305, 1.31, 1.41, [2]),
    el!(13, "Al", "Aluminium", 26.982, 1.61, 1.21, [3]),
    el!(14, "Si", "Silicon", 28.085, 1.90, 1.11, [-4, 4]),
    el!(15, "P", "Phosphorus", 30.974, 2.19, 1.07, [-3, 3, 5]),
    el!(16, "S", "Sulfur", 32.06, 2.58, 1.05, [-2, 4, 6]),
    el!(17, "Cl", "Chlorine", 35.45, 3.16, 1.02, [-1, 1, 3, 5, 7]),
    el!(18, "Ar", "Argon", 39.948, 0.0, 1.06, []),
    el!(19, "K", "Potassium", 39.098, 0.82, 2.03, [1]),
    el!(20, "Ca", "Calcium", 40.078, 1.00, 1.76, [2]),
    el!(21, "Sc", "Scandium", 44.956, 1.36, 1.70, [3]),
    el!(22, "Ti", "Titanium", 47.867, 1.54, 1.60, [2, 3, 4]),
    el!(23, "V", "Vanadium", 50.942, 1.63, 1.53, [2, 3, 4, 5]),
    el!(24, "Cr", "Chromium", 51.996, 1.66, 1.39, [2, 3, 6]),
    el!(25, "Mn", "Manganese", 54.938, 1.55, 1.39, [2, 3, 4, 7]),
    el!(26, "Fe", "Iron", 55.845, 1.83, 1.32, [2, 3]),
    el!(27, "Co", "Cobalt", 58.933, 1.88, 1.26, [2, 3]),
    el!(28, "Ni", "Nickel", 58.693, 1.91, 1.24, [2, 3]),
    el!(29, "Cu", "Copper", 63.546, 1.90, 1.32, [1, 2]),
    el!(30, "Zn", "Zinc", 65.38, 1.65, 1.22, [2]),
    el!(31, "Ga", "Gallium", 69.723, 1.81, 1.22, [3]),
    el!(32, "Ge", "Germanium", 72.630, 2.01, 1.20, [2, 4]),
    el!(33, "As", "Arsenic", 74.922, 2.18, 1.19, [-3, 3, 5]),
    el!(34, "Se", "Selenium", 78.971, 2.55, 1.20, [-2, 4, 6]),
    el!(35, "Br", "Bromine", 79.904, 2.96, 1.20, [-1, 1, 5]),
    el!(36, "Kr", "Krypton", 83.798, 3.00, 1.16, []),
    el!(37, "Rb", "Rubidium", 85.468, 0.82, 2.20, [1]),
    el!(38, "Sr", "Strontium", 87.62, 0.95, 1.95, [2]),
    el!(39, "Y", "Yttrium", 88.906, 1.22, 1.90, [3]),
    el!(40, "Zr", "Zirconium", 91.224, 1.33, 1.75, [4]),
    el!(41, "Nb", "Niobium", 92.906, 1.60, 1.64, [3, 5]),
    el!(42, "Mo", "Molybdenum", 95.95, 2.16, 1.54, [2, 3, 4, 5, 6]),
    el!(43, "Tc", "Technetium", 98.0, 1.90, 1.47, [4, 7]),
    el!(44, "Ru", "Ruthenium", 101.07, 2.20, 1.46, [2, 3, 4]),
    el!(45, "Rh", "Rhodium", 102.91, 2.28, 1.42, [3]),
    el!(46, "Pd", "Palladium", 106.42, 2.20, 1.39, [2, 4]),
    el!(47, "Ag", "Silver", 107.87, 1.93, 1.45, [1]),
    el!(48, "Cd", "Cadmium", 112.41, 1.69, 1.44, [2]),
    el!(49, "In", "Indium", 114.82, 1.78, 1.42, [3]),
    el!(50, "Sn", "Tin", 118.71, 1.96, 1.39, [2, 4]),
    el!(51, "Sb", "Antimony", 121.76, 2.05, 1.39, [-3, 3, 5]),
    el!(52, "Te", "Tellurium", 127.60, 2.10, 1.38, [-2, 4, 6]),
    el!(53, "I", "Iodine", 126.90, 2.66, 1.39, [-1, 1, 5, 7]),
    el!(54, "Xe", "Xenon", 131.29, 2.60, 1.40, []),
    el!(55, "Cs", "Caesium", 132.91, 0.79, 2.44, [1]),
    el!(56, "Ba", "Barium", 137.33, 0.89, 2.15, [2]),
    el!(57, "La", "Lanthanum", 138.91, 1.10, 2.07, [3]),
    el!(58, "Ce", "Cerium", 140.12, 1.12, 2.04, [3, 4]),
    el!(59, "Pr", "Praseodymium", 140.91, 1.13, 2.03, [3]),
    el!(60, "Nd", "Neodymium", 144.24, 1.14, 2.01, [3]),
    el!(61, "Pm", "Promethium", 145.0, 1.13, 1.99, [3]),
    el!(62, "Sm", "Samarium", 150.36, 1.17, 1.98, [2, 3]),
    el!(63, "Eu", "Europium", 151.96, 1.20, 1.98, [2, 3]),
    el!(64, "Gd", "Gadolinium", 157.25, 1.20, 1.96, [3]),
    el!(65, "Tb", "Terbium", 158.93, 1.20, 1.94, [3, 4]),
    el!(66, "Dy", "Dysprosium", 162.50, 1.22, 1.92, [3]),
    el!(67, "Ho", "Holmium", 164.93, 1.23, 1.92, [3]),
    el!(68, "Er", "Erbium", 167.26, 1.24, 1.89, [3]),
    el!(69, "Tm", "Thulium", 168.93, 1.25, 1.90, [2, 3]),
    el!(70, "Yb", "Ytterbium", 173.05, 1.10, 1.87, [2, 3]),
    el!(71, "Lu", "Lutetium", 174.97, 1.27, 1.87, [3]),
    el!(72, "Hf", "Hafnium", 178.49, 1.30, 1.75, [4]),
    el!(73, "Ta", "Tantalum", 180.95, 1.50, 1.70, [5]),
    el!(74, "W", "Tungsten", 183.84, 2.36, 1.62, [4, 6]),
    el!(75, "Re", "Rhenium", 186.21, 1.90, 1.51, [4, 7]),
    el!(76, "Os", "Osmium", 190.23, 2.20, 1.44, [4]),
    el!(77, "Ir", "Iridium", 192.22, 2.20, 1.41, [3, 4]),
    el!(78, "Pt", "Platinum", 195.08, 2.28, 1.36, [2, 4]),
    el!(79, "Au", "Gold", 196.97, 2.54, 1.36, [1, 3]),
    el!(80, "Hg", "Mercury", 200.59, 2.00, 1.32, [1, 2]),
    el!(81, "Tl", "Thallium", 204.38, 1.62, 1.45, [1, 3]),
    el!(82, "Pb", "Lead", 207.2, 2.33, 1.46, [2, 4]),
    el!(83, "Bi", "Bismuth", 208.98, 2.02, 1.48, [3, 5]),
    el!(84, "Po", "Polonium", 209.0, 2.00, 1.40, [-2, 2, 4]),
    el!(85, "At", "Astatine", 210.0, 2.20, 1.50, [-1, 1]),
    el!(86, "Rn", "Radon", 222.0, 0.0, 1.50, []),
    el!(87, "Fr", "Francium", 223.0, 0.70, 2.60, [1]),
    el!(88, "Ra", "Radium", 226.0, 0.90, 2.21, [2]),
    el!(89, "Ac", "Actinium", 227.0, 1.10, 2.15, [3]),
    el!(90, "Th", "Thorium", 232.04, 1.30, 2.06, [4]),
    el!(91, "Pa", "Protactinium", 231.04, 1.50, 2.00, [4, 5]),
    el!(92, "U", "Uranium", 238.03, 1.38, 1.96, [3, 4, 5, 6]),
    el!(93, "Np", "Neptunium", 237.0, 1.36, 1.90, [3, 4, 5, 6]),
    el!(94, "Pu", "Plutonium", 244.0, 1.28, 1.87, [3, 4, 5, 6]),
];

/// Error for unknown element symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownElement(pub String);

impl fmt::Display for UnknownElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown element '{}'", self.0)
    }
}
impl std::error::Error for UnknownElement {}

impl Element {
    /// Look up an element by symbol.
    pub fn from_symbol(sym: &str) -> Result<Element, UnknownElement> {
        PERIODIC_TABLE
            .iter()
            .find(|e| e.symbol == sym)
            .map(|e| Element(e.z))
            .ok_or_else(|| UnknownElement(sym.to_string()))
    }

    /// The static data record for this element.
    pub fn data(&self) -> &'static ElementData {
        // mp-flow: allow(R002) — index is clamped into the non-empty static table
        &PERIODIC_TABLE[(self.0 as usize)
            .saturating_sub(1)
            .min(PERIODIC_TABLE.len() - 1)]
    }

    /// Atomic number.
    pub fn z(&self) -> u8 {
        self.0
    }

    /// IUPAC symbol.
    pub fn symbol(&self) -> &'static str {
        self.data().symbol
    }

    /// Standard atomic mass (u).
    pub fn mass(&self) -> f64 {
        self.data().mass
    }

    /// Pauling electronegativity (0.0 where undefined).
    pub fn electronegativity(&self) -> f64 {
        self.data().electronegativity
    }

    /// Covalent radius (Å).
    pub fn radius(&self) -> f64 {
        self.data().radius
    }

    /// Common oxidation states.
    pub fn oxidation_states(&self) -> &'static [i8] {
        self.data().oxidation_states
    }

    /// Is this an alkali metal (workhorse check for battery chemistry)?
    pub fn is_alkali(&self) -> bool {
        matches!(self.0, 3 | 11 | 19 | 37 | 55 | 87)
    }

    /// Is this one of the common anions (O, S, Se, F, Cl, Br, I, N, P)?
    pub fn is_anion_former(&self) -> bool {
        matches!(self.0, 7 | 8 | 9 | 15 | 16 | 17 | 34 | 35 | 53)
    }

    /// Is this a transition metal (3d/4d/5d block)?
    pub fn is_transition_metal(&self) -> bool {
        matches!(self.0, 21..=30 | 39..=48 | 72..=80)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl FromStr for Element {
    type Err = UnknownElement;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Element::from_symbol(s)
    }
}

impl TryFrom<String> for Element {
    type Error = UnknownElement;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        Element::from_symbol(&s)
    }
}

impl From<Element> for String {
    fn from(e: Element) -> String {
        e.symbol().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent() {
        assert_eq!(PERIODIC_TABLE.len(), 94);
        for (i, e) in PERIODIC_TABLE.iter().enumerate() {
            assert_eq!(e.z as usize, i + 1, "Z mismatch at index {i}");
            assert!(e.mass > 0.0);
            assert!(e.radius > 0.0);
            assert!(!e.symbol.is_empty() && e.symbol.len() <= 2);
        }
    }

    #[test]
    fn lookup_by_symbol() {
        assert_eq!(Element::from_symbol("Fe").unwrap().z(), 26);
        assert_eq!(Element::from_symbol("Li").unwrap().symbol(), "Li");
        assert!(Element::from_symbol("Xx").is_err());
        // Case sensitive, like real chemistry.
        assert!(Element::from_symbol("fe").is_err());
    }

    #[test]
    fn properties() {
        let o = Element::from_symbol("O").unwrap();
        assert!((o.mass() - 15.999).abs() < 1e-6);
        assert!((o.electronegativity() - 3.44).abs() < 1e-6);
        assert_eq!(o.oxidation_states(), &[-2]);
    }

    #[test]
    fn classification() {
        assert!(Element::from_symbol("Li").unwrap().is_alkali());
        assert!(Element::from_symbol("Na").unwrap().is_alkali());
        assert!(!Element::from_symbol("Fe").unwrap().is_alkali());
        assert!(Element::from_symbol("Fe").unwrap().is_transition_metal());
        assert!(Element::from_symbol("O").unwrap().is_anion_former());
        assert!(!Element::from_symbol("O").unwrap().is_transition_metal());
    }

    #[test]
    fn serde_roundtrip() {
        let fe = Element::from_symbol("Fe").unwrap();
        let s = serde_json::to_string(&fe).unwrap();
        assert_eq!(s, "\"Fe\"");
        let back: Element = serde_json::from_str(&s).unwrap();
        assert_eq!(back, fe);
    }

    #[test]
    fn noble_gases_have_no_oxidation_states() {
        for sym in ["He", "Ne", "Ar"] {
            assert!(Element::from_symbol(sym)
                .unwrap()
                .oxidation_states()
                .is_empty());
        }
    }

    #[test]
    fn display_and_fromstr() {
        let e: Element = "Mn".parse().unwrap();
        assert_eq!(e.to_string(), "Mn");
    }
}
