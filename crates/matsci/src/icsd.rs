//! Synthetic ICSD: a seeded generator of plausible inorganic crystal
//! structures.
//!
//! The real Inorganic Crystal Structure Database is proprietary; this
//! generator is the substitution documented in DESIGN.md. It decorates
//! the prototype families of [`crate::prototypes`] with chemically
//! sensible element combinations, reproducing the properties of the real
//! input stream that matter to the pipeline: broad chemistry coverage, a
//! deliberate duplicate rate (the same compound reported by different
//! experimental papers), and a mix of battery-relevant and irrelevant
//! compounds.

use crate::element::Element;
use crate::mps::{MpsRecord, MpsSource};
use crate::prototypes;
use crate::structure::Structure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element pools used for prototype decoration.
#[derive(Debug, Clone)]
pub struct ChemistryPools {
    /// A-site / alkali cations.
    pub alkali: Vec<Element>,
    /// Divalent-ish large cations.
    pub alkaline: Vec<Element>,
    /// Redox-active transition metals.
    pub transition: Vec<Element>,
    /// Main-group cations.
    pub main_group: Vec<Element>,
    /// Anions.
    pub anions: Vec<Element>,
}

fn els(syms: &[&str]) -> Vec<Element> {
    syms.iter()
        .map(|s| Element::from_symbol(s).expect("pool symbol valid"))
        .collect()
}

impl Default for ChemistryPools {
    fn default() -> Self {
        ChemistryPools {
            alkali: els(&["Li", "Na", "K", "Rb", "Cs"]),
            alkaline: els(&["Mg", "Ca", "Sr", "Ba"]),
            transition: els(&[
                "Ti", "V", "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Zn", "Zr", "Nb", "Mo", "W",
            ]),
            main_group: els(&["Al", "Si", "Ga", "Ge", "Sn", "Sb", "Bi", "Pb", "In"]),
            anions: els(&["O", "S", "Se", "F", "Cl", "Br", "N", "P"]),
        }
    }
}

/// The synthetic ICSD generator.
pub struct IcsdGenerator {
    rng: StdRng,
    pools: ChemistryPools,
    next_code: u64,
    next_mps: u64,
    /// Probability that an entry duplicates an earlier one.
    pub duplicate_rate: f64,
    generated: Vec<Structure>,
}

impl IcsdGenerator {
    /// Seeded generator with default chemistry pools and a 10% duplicate
    /// rate (multiple experimental reports of the same compound).
    pub fn new(seed: u64) -> Self {
        IcsdGenerator {
            rng: StdRng::seed_from_u64(seed),
            pools: ChemistryPools::default(),
            next_code: 100_000,
            next_mps: 1,
            duplicate_rate: 0.10,
            generated: Vec::new(),
        }
    }

    fn pick(rng: &mut StdRng, pool: &[Element]) -> Element {
        pool[rng.gen_range(0..pool.len())]
    }

    /// Generate one structure by decorating a random prototype.
    pub fn next_structure(&mut self) -> Structure {
        if !self.generated.is_empty() && self.rng.gen_bool(self.duplicate_rate) {
            let i = self.rng.gen_range(0..self.generated.len());
            return self.generated[i].clone();
        }
        let pools = self.pools.clone();
        let kind = self.rng.gen_range(0..11u32);
        let s = match kind {
            0 => prototypes::fcc(Self::pick(&mut self.rng, &pools.transition)),
            1 => prototypes::bcc(Self::pick(&mut self.rng, &pools.transition)),
            2 => prototypes::hcp(Self::pick(&mut self.rng, &pools.transition)),
            3 => prototypes::rocksalt(
                Self::pick(&mut self.rng, &pools.alkali),
                Self::pick(&mut self.rng, &pools.anions),
            ),
            4 => prototypes::zincblende(
                Self::pick(&mut self.rng, &pools.main_group),
                Self::pick(&mut self.rng, &pools.anions),
            ),
            5 => prototypes::fluorite(
                Self::pick(&mut self.rng, &pools.alkaline),
                Self::pick(&mut self.rng, &pools.anions),
            ),
            6 => prototypes::perovskite(
                Self::pick(&mut self.rng, &pools.alkaline),
                Self::pick(&mut self.rng, &pools.transition),
                Self::pick(&mut self.rng, &pools.anions),
            ),
            7 => prototypes::rutile(
                Self::pick(&mut self.rng, &pools.transition),
                Self::pick(&mut self.rng, &pools.anions),
            ),
            8 => prototypes::layered_amo2(
                Self::pick(&mut self.rng, &pools.alkali),
                Self::pick(&mut self.rng, &pools.transition),
                Element::from_symbol("O").expect("O"),
            ),
            9 => prototypes::olivine_ampo4(
                Self::pick(&mut self.rng, &pools.alkali),
                Self::pick(&mut self.rng, &pools.transition),
            ),
            _ => prototypes::spinel(
                Self::pick(&mut self.rng, &pools.alkali),
                Self::pick(&mut self.rng, &pools.transition),
                Element::from_symbol("O").expect("O"),
            ),
        };
        self.generated.push(s.clone());
        s
    }

    /// Generate one full MPS record.
    pub fn next_record(&mut self) -> MpsRecord {
        let structure = self.next_structure();
        let code = self.next_code;
        self.next_code += 1;
        let id = format!("mps-{}", self.next_mps);
        self.next_mps += 1;
        MpsRecord::new(id, structure, MpsSource::Icsd { code })
    }

    /// Generate `n` records.
    pub fn generate(&mut self, n: usize) -> Vec<MpsRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Generate `n` *battery-relevant* candidates: alkali-containing
    /// intercalation frameworks (layered, olivine, spinel families),
    /// for the Fig.-1 screening experiment.
    pub fn generate_battery_candidates(&mut self, n: usize, alkali: Element) -> Vec<MpsRecord> {
        let pools = self.pools.clone();
        let o = Element::from_symbol("O").expect("O");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = self.rng.gen_range(0..4u32);
            let metal = Self::pick(&mut self.rng, &pools.transition);
            let s = match kind {
                0 => prototypes::layered_amo2(alkali, metal, o),
                1 => prototypes::olivine_ampo4(alkali, metal),
                2 => prototypes::spinel(alkali, metal, o),
                _ => {
                    // Mixed-metal layered A(M,M')O2 — the combinatorial
                    // decoration move of high-throughput screening
                    // (cf. the mixed-polyanion searches of refs [10],[12]).
                    let metal2 = Self::pick(&mut self.rng, &pools.transition);
                    let mut sc = prototypes::layered_amo2(alkali, metal, o).supercell(2, 1, 1);
                    let mut seen_metal = 0;
                    for site in &mut sc.sites {
                        if site.element == metal {
                            seen_metal += 1;
                            if seen_metal % 2 == 0 {
                                site.element = metal2;
                            }
                        }
                    }
                    sc
                }
            };
            let code = self.next_code;
            self.next_code += 1;
            let id = format!("mps-{}", self.next_mps);
            self.next_mps += 1;
            let mut rec = MpsRecord::new(id, s, MpsSource::Icsd { code });
            rec.remarks.push("battery candidate".into());
            out.push(rec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<String> = IcsdGenerator::new(7)
            .generate(20)
            .iter()
            .map(|r| r.structure.formula())
            .collect();
        let b: Vec<String> = IcsdGenerator::new(7)
            .generate(20)
            .iter()
            .map(|r| r.structure.formula())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<String> = IcsdGenerator::new(1)
            .generate(30)
            .iter()
            .map(|r| r.structure.formula())
            .collect();
        let b: Vec<String> = IcsdGenerator::new(2)
            .generate(30)
            .iter()
            .map(|r| r.structure.formula())
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn ids_unique_and_sequential() {
        let recs = IcsdGenerator::new(3).generate(50);
        let ids: HashSet<&str> = recs.iter().map(|r| r.mps_id.as_str()).collect();
        assert_eq!(ids.len(), 50);
        assert_eq!(recs[0].mps_id, "mps-1");
        assert_eq!(recs[49].mps_id, "mps-50");
    }

    #[test]
    fn duplicates_appear_at_roughly_the_configured_rate() {
        let mut gen = IcsdGenerator::new(11);
        gen.duplicate_rate = 0.3;
        let recs = gen.generate(400);
        let mut seen = HashSet::new();
        let mut dups = 0;
        for r in &recs {
            if !seen.insert(r.structure.fingerprint()) {
                dups += 1;
            }
        }
        // Duplicates also arise by chance (same prototype, same elements),
        // so expect at least the configured floor and well below 70%.
        let rate = dups as f64 / recs.len() as f64;
        assert!(rate > 0.15 && rate < 0.7, "duplicate rate {rate}");
    }

    #[test]
    fn chemistry_coverage_is_broad() {
        let recs = IcsdGenerator::new(5).generate(300);
        let mut elements = HashSet::new();
        for r in &recs {
            for e in r.composition().elements() {
                elements.insert(e);
            }
        }
        assert!(elements.len() >= 15, "only {} elements", elements.len());
    }

    #[test]
    fn battery_candidates_contain_alkali() {
        let li = Element::from_symbol("Li").unwrap();
        let recs = IcsdGenerator::new(9).generate_battery_candidates(50, li);
        assert_eq!(recs.len(), 50);
        for r in &recs {
            assert!(
                r.composition().amount(li) > 0.0,
                "{}",
                r.structure.formula()
            );
        }
    }

    #[test]
    fn records_export_valid_docs() {
        let recs = IcsdGenerator::new(13).generate(10);
        for r in recs {
            let doc = r.to_doc();
            assert!(doc["formula"].is_string());
            assert!(doc["nsites"].as_u64().unwrap() >= 1);
        }
    }
}
