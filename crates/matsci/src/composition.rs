//! Chemical compositions: formula parsing, reduction, and derived
//! quantities (weight, electron count, chemical system).

use crate::element::{Element, UnknownElement};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An amount-weighted set of elements, e.g. `LiFePO4`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Composition {
    /// Element → amount (formula units; may be fractional).
    amounts: BTreeMap<Element, f64>,
}

/// Errors from formula parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// Unknown element symbol.
    UnknownElement(String),
    /// Structural problem in the formula string.
    Malformed(String),
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::UnknownElement(s) => write!(f, "unknown element '{s}'"),
            FormulaError::Malformed(s) => write!(f, "malformed formula: {s}"),
        }
    }
}
impl std::error::Error for FormulaError {}

impl From<UnknownElement> for FormulaError {
    fn from(e: UnknownElement) -> Self {
        FormulaError::UnknownElement(e.0)
    }
}

impl Composition {
    /// Empty composition.
    pub fn new() -> Self {
        Composition {
            amounts: BTreeMap::new(),
        }
    }

    /// Build from (element, amount) pairs; zero/negative amounts dropped.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Element, f64)>) -> Self {
        let mut c = Composition::new();
        for (el, amt) in pairs {
            if amt > 0.0 {
                *c.amounts.entry(el).or_insert(0.0) += amt;
            }
        }
        c
    }

    /// Parse a chemical formula. Supports nested parentheses and
    /// fractional amounts: `"LiFePO4"`, `"Ca(OH)2"`, `"Li0.5CoO2"`.
    pub fn parse(formula: &str) -> Result<Composition, FormulaError> {
        let chars: Vec<char> = formula.chars().collect();
        let (c, pos) = parse_group(&chars, 0, 0)?;
        if let Some(&stray) = chars.get(pos) {
            return Err(FormulaError::Malformed(format!(
                "unexpected character '{stray}' at {pos}"
            )));
        }
        if c.amounts.is_empty() {
            return Err(FormulaError::Malformed("empty formula".into()));
        }
        Ok(c)
    }

    /// Elements present, in atomic-number order.
    pub fn elements(&self) -> Vec<Element> {
        self.amounts.keys().copied().collect()
    }

    /// Amount of one element (0 if absent).
    pub fn amount(&self, el: Element) -> f64 {
        self.amounts.get(&el).copied().unwrap_or(0.0)
    }

    /// Iterate (element, amount).
    pub fn iter(&self) -> impl Iterator<Item = (Element, f64)> + '_ {
        self.amounts.iter().map(|(e, a)| (*e, *a))
    }

    /// Total atoms per formula unit.
    pub fn num_atoms(&self) -> f64 {
        self.amounts.values().sum()
    }

    /// Number of distinct elements.
    pub fn num_elements(&self) -> usize {
        self.amounts.len()
    }

    /// Molecular weight (g/mol of formula unit).
    pub fn weight(&self) -> f64 {
        self.iter().map(|(e, a)| e.mass() * a).sum()
    }

    /// Total electron count per formula unit (Σ Z·n).
    pub fn num_electrons(&self) -> f64 {
        self.iter().map(|(e, a)| e.z() as f64 * a).sum()
    }

    /// Atomic fraction of `el`.
    pub fn fraction(&self, el: Element) -> f64 {
        let n = self.num_atoms();
        if n == 0.0 {
            0.0
        } else {
            self.amount(el) / n
        }
    }

    /// Add `amt` of `el`, returning a new composition.
    pub fn plus(&self, el: Element, amt: f64) -> Composition {
        let mut c = self.clone();
        *c.amounts.entry(el).or_insert(0.0) += amt;
        c.amounts.retain(|_, a| *a > 1e-12);
        c
    }

    /// Remove element entirely, returning a new composition.
    pub fn without(&self, el: Element) -> Composition {
        let mut c = self.clone();
        c.amounts.remove(&el);
        c
    }

    /// The reduced (integer, GCD-normalized) formula string, with elements
    /// ordered by electronegativity (cations first) — close to the
    /// conventional ordering pymatgen produces.
    pub fn reduced_formula(&self) -> String {
        let (amounts, _) = self.reduced_amounts();
        let mut els: Vec<(Element, i64)> = amounts.into_iter().collect();
        els.sort_by(|a, b| {
            a.0.electronegativity()
                .partial_cmp(&b.0.electronegativity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.z().cmp(&b.0.z()))
        });
        let mut s = String::new();
        for (el, n) in els {
            s.push_str(el.symbol());
            if n != 1 {
                s.push_str(&n.to_string());
            }
        }
        s
    }

    /// Reduced integer amounts and the reduction factor. Fractional
    /// amounts are scaled to integers first (up to a denominator of 16).
    pub fn reduced_amounts(&self) -> (BTreeMap<Element, i64>, f64) {
        // Find the smallest multiplier ≤ 16 making all amounts ~integer.
        let mut mult = 1.0;
        'outer: for m in 1..=16 {
            for a in self.amounts.values() {
                let x = a * m as f64;
                if (x - x.round()).abs() > 1e-6 {
                    continue 'outer;
                }
            }
            mult = m as f64;
            break;
        }
        let ints: Vec<i64> = self
            .amounts
            .values()
            .map(|a| (a * mult).round() as i64)
            .collect();
        let g = ints.iter().fold(0i64, |acc, &x| gcd(acc, x.max(1)));
        let g = g.max(1);
        let map = self
            .amounts
            .keys()
            .zip(ints.iter())
            .map(|(e, i)| (*e, i / g))
            .collect();
        (map, g as f64 / mult)
    }

    /// Alphabetical hyphenated chemical system, e.g. `"Fe-Li-O-P"`.
    pub fn chemical_system(&self) -> String {
        let mut syms: Vec<&str> = self.amounts.keys().map(|e| e.symbol()).collect();
        syms.sort_unstable();
        syms.join("-")
    }

    /// Anonymized formula (`AB2C4`-style), used for prototype matching.
    pub fn anonymized_formula(&self) -> String {
        let (amounts, _) = self.reduced_amounts();
        let mut ns: Vec<i64> = amounts.values().copied().collect();
        ns.sort_unstable();
        let letters = "ABCDEFGHIJ";
        let mut s = String::new();
        for (i, n) in ns.iter().enumerate() {
            s.push(letters.as_bytes()[i.min(9)] as char);
            if *n != 1 {
                s.push_str(&n.to_string());
            }
        }
        s
    }

    /// Mean electronegativity weighted by amount.
    pub fn mean_electronegativity(&self) -> f64 {
        let n = self.num_atoms();
        if n == 0.0 {
            return 0.0;
        }
        self.iter()
            .map(|(e, a)| e.electronegativity() * a)
            .sum::<f64>()
            / n
    }

    /// Can the composition be charge-balanced with common oxidation
    /// states? Searches small assignments exhaustively.
    pub fn can_charge_balance(&self) -> bool {
        let (amounts, _) = self.reduced_amounts();
        let items: Vec<(Element, i64)> = amounts.into_iter().collect();
        // Each element takes exactly one oxidation state; try them all.
        fn rec(items: &[(Element, i64)], idx: usize, total: i64) -> bool {
            if idx == items.len() {
                return total == 0;
            }
            let (el, n) = items[idx];
            let states = el.oxidation_states();
            if states.is_empty() {
                return rec(items, idx + 1, total);
            }
            states
                .iter()
                .any(|&s| rec(items, idx + 1, total + s as i64 * n))
        }
        rec(&items, 0, 0)
    }
}

impl Default for Composition {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Composition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reduced_formula())
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// Recursive-descent formula parser. `depth` guards against runaway
/// nesting; returns (composition, next position).
fn parse_group(
    chars: &[char],
    mut pos: usize,
    depth: usize,
) -> Result<(Composition, usize), FormulaError> {
    if depth > 8 {
        return Err(FormulaError::Malformed("nesting too deep".into()));
    }
    let mut comp = Composition::new();
    while let Some(&c) = chars.get(pos) {
        if c == '(' {
            let (inner, after) = parse_group(chars, pos + 1, depth + 1)?;
            if chars.get(after) != Some(&')') {
                return Err(FormulaError::Malformed("unbalanced parentheses".into()));
            }
            pos = after + 1;
            let (mult, after_num) = parse_number(chars, pos);
            pos = after_num;
            for (el, amt) in inner.iter() {
                comp = comp.plus(el, amt * mult);
            }
        } else if c == ')' {
            if depth == 0 {
                return Err(FormulaError::Malformed("unbalanced ')'".into()));
            }
            return Ok((comp, pos));
        } else if c.is_ascii_uppercase() {
            let mut sym = c.to_string();
            pos += 1;
            if let Some(&lc) = chars.get(pos).filter(|lc| lc.is_ascii_lowercase()) {
                sym.push(lc);
                pos += 1;
            }
            let el = Element::from_symbol(&sym)?;
            let (amt, after) = parse_number(chars, pos);
            pos = after;
            comp = comp.plus(el, amt);
        } else if c.is_whitespace() {
            pos += 1;
        } else {
            return Err(FormulaError::Malformed(format!(
                "unexpected character '{c}' at {pos}"
            )));
        }
    }
    if depth > 0 {
        return Err(FormulaError::Malformed("unbalanced parentheses".into()));
    }
    Ok((comp, pos))
}

/// Parse an optional (possibly fractional) amount; default 1.
fn parse_number(chars: &[char], mut pos: usize) -> (f64, usize) {
    let start = pos;
    while chars
        .get(pos)
        .is_some_and(|c| c.is_ascii_digit() || *c == '.')
    {
        pos += 1;
    }
    if pos == start {
        return (1.0, pos);
    }
    let s: String = chars.iter().take(pos).skip(start).collect();
    (s.parse().unwrap_or(1.0), pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn parse_simple() {
        let c = Composition::parse("Fe2O3").unwrap();
        assert_eq!(c.amount(el("Fe")), 2.0);
        assert_eq!(c.amount(el("O")), 3.0);
        assert_eq!(c.num_atoms(), 5.0);
    }

    #[test]
    fn parse_multi_letter_and_implicit_one() {
        let c = Composition::parse("LiFePO4").unwrap();
        assert_eq!(c.amount(el("Li")), 1.0);
        assert_eq!(c.amount(el("Fe")), 1.0);
        assert_eq!(c.amount(el("P")), 1.0);
        assert_eq!(c.amount(el("O")), 4.0);
    }

    #[test]
    fn parse_parentheses() {
        let c = Composition::parse("Ca(OH)2").unwrap();
        assert_eq!(c.amount(el("Ca")), 1.0);
        assert_eq!(c.amount(el("O")), 2.0);
        assert_eq!(c.amount(el("H")), 2.0);

        let c = Composition::parse("Mg3(PO4)2").unwrap();
        assert_eq!(c.amount(el("P")), 2.0);
        assert_eq!(c.amount(el("O")), 8.0);
    }

    #[test]
    fn parse_nested_parentheses() {
        let c = Composition::parse("K4(Fe(CN)6)").unwrap();
        assert_eq!(c.amount(el("K")), 4.0);
        assert_eq!(c.amount(el("C")), 6.0);
        assert_eq!(c.amount(el("N")), 6.0);
    }

    #[test]
    fn parse_fractional() {
        let c = Composition::parse("Li0.5CoO2").unwrap();
        assert_eq!(c.amount(el("Li")), 0.5);
        assert_eq!(c.amount(el("Co")), 1.0);
    }

    #[test]
    fn parse_errors() {
        assert!(Composition::parse("Xx2").is_err());
        assert!(Composition::parse("Fe2O3)").is_err());
        assert!(Composition::parse("(Fe2O3").is_err());
        assert!(Composition::parse("").is_err());
        assert!(Composition::parse("fe2").is_err());
    }

    #[test]
    fn reduced_formula_gcd() {
        assert_eq!(
            Composition::parse("Fe4O6").unwrap().reduced_formula(),
            "Fe2O3"
        );
        assert_eq!(
            Composition::parse("Li2Co2O4").unwrap().reduced_formula(),
            "LiCoO2"
        );
    }

    #[test]
    fn reduced_formula_orders_by_electronegativity() {
        // Li (0.98) < Fe (1.83) < P (2.19) < O (3.44)
        assert_eq!(
            Composition::parse("O4PFeLi").unwrap().reduced_formula(),
            "LiFePO4"
        );
    }

    #[test]
    fn reduced_handles_fractional() {
        let c = Composition::parse("Li0.5CoO2").unwrap();
        // ×2 → LiCo2O4
        assert_eq!(c.reduced_formula(), "LiCo2O4");
    }

    #[test]
    fn weight_and_electrons() {
        let c = Composition::parse("Fe2O3").unwrap();
        assert!((c.weight() - 159.687).abs() < 0.01);
        assert!((c.num_electrons() - (2.0 * 26.0 + 3.0 * 8.0)).abs() < 1e-9);
    }

    #[test]
    fn chemical_system_alphabetical() {
        assert_eq!(
            Composition::parse("LiFePO4").unwrap().chemical_system(),
            "Fe-Li-O-P"
        );
    }

    #[test]
    fn anonymized() {
        assert_eq!(
            Composition::parse("Fe2O3").unwrap().anonymized_formula(),
            "A2B3"
        );
        assert_eq!(
            Composition::parse("LiCoO2").unwrap().anonymized_formula(),
            "ABC2"
        );
    }

    #[test]
    fn charge_balance() {
        assert!(Composition::parse("Fe2O3").unwrap().can_charge_balance());
        assert!(Composition::parse("LiFePO4").unwrap().can_charge_balance());
        assert!(Composition::parse("NaCl").unwrap().can_charge_balance());
        // Li2O3 cannot balance with Li+ and O2-.
        assert!(!Composition::parse("Li2O3").unwrap().can_charge_balance());
    }

    #[test]
    fn fraction_sums_to_one() {
        let c = Composition::parse("LiFePO4").unwrap();
        let total: f64 = c.elements().iter().map(|&e| c.fraction(e)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Composition::parse("LiFePO4").unwrap();
        let s = serde_json::to_string(&c).unwrap();
        let back: Composition = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn plus_and_without() {
        let c = Composition::parse("CoO2").unwrap();
        let with_li = c.plus(el("Li"), 1.0);
        assert_eq!(with_li.reduced_formula(), "LiCoO2");
        assert_eq!(with_li.without(el("Li")).reduced_formula(), "CoO2");
    }
}
