//! Common crystal-structure prototypes.
//!
//! High-throughput screening populates its candidate list by decorating
//! known prototypes with new elements (the approach of Jain et al. 2011,
//! which the paper's §III builds on). These constructors provide the
//! prototypes our synthetic ICSD generator and the battery screening
//! pipeline decorate.

use crate::element::Element;
use crate::lattice::Lattice;
use crate::structure::Structure;

/// Estimate a sensible lattice constant from covalent radii (Å).
fn bond(a: Element, b: Element) -> f64 {
    a.radius() + b.radius()
}

/// FCC elemental metal (conventional 4-atom cubic cell).
pub fn fcc(el: Element) -> Structure {
    let a = el.radius() * 2.0 * std::f64::consts::SQRT_2;
    Structure::new(
        Lattice::cubic(a),
        vec![
            (el, [0.0, 0.0, 0.0]),
            (el, [0.5, 0.5, 0.0]),
            (el, [0.5, 0.0, 0.5]),
            (el, [0.0, 0.5, 0.5]),
        ],
    )
}

/// BCC elemental metal (conventional 2-atom cubic cell).
pub fn bcc(el: Element) -> Structure {
    let a = el.radius() * 4.0 / 3f64.sqrt();
    Structure::new(
        Lattice::cubic(a),
        vec![(el, [0.0, 0.0, 0.0]), (el, [0.5, 0.5, 0.5])],
    )
}

/// HCP elemental metal (2-atom hexagonal cell).
pub fn hcp(el: Element) -> Structure {
    let a = el.radius() * 2.0;
    let c = a * 1.633;
    Structure::new(
        Lattice::hexagonal(a, c),
        vec![(el, [0.0, 0.0, 0.0]), (el, [1.0 / 3.0, 2.0 / 3.0, 0.5])],
    )
}

/// Rocksalt MX (8-atom conventional cell): NaCl, MgO, ...
pub fn rocksalt(cation: Element, anion: Element) -> Structure {
    let a = bond(cation, anion) * 2.0;
    Structure::new(
        Lattice::cubic(a),
        vec![
            (cation, [0.0, 0.0, 0.0]),
            (cation, [0.5, 0.5, 0.0]),
            (cation, [0.5, 0.0, 0.5]),
            (cation, [0.0, 0.5, 0.5]),
            (anion, [0.5, 0.0, 0.0]),
            (anion, [0.0, 0.5, 0.0]),
            (anion, [0.0, 0.0, 0.5]),
            (anion, [0.5, 0.5, 0.5]),
        ],
    )
}

/// Zincblende MX (8-atom conventional cell): ZnS, GaAs, ...
pub fn zincblende(cation: Element, anion: Element) -> Structure {
    let a = bond(cation, anion) * 4.0 / 3f64.sqrt();
    Structure::new(
        Lattice::cubic(a),
        vec![
            (cation, [0.0, 0.0, 0.0]),
            (cation, [0.5, 0.5, 0.0]),
            (cation, [0.5, 0.0, 0.5]),
            (cation, [0.0, 0.5, 0.5]),
            (anion, [0.25, 0.25, 0.25]),
            (anion, [0.75, 0.75, 0.25]),
            (anion, [0.75, 0.25, 0.75]),
            (anion, [0.25, 0.75, 0.75]),
        ],
    )
}

/// Fluorite MX₂ (12-atom conventional cell): CaF₂, ZrO₂, ...
pub fn fluorite(cation: Element, anion: Element) -> Structure {
    let a = bond(cation, anion) * 4.0 / 3f64.sqrt();
    let mut sites = vec![
        (cation, [0.0, 0.0, 0.0]),
        (cation, [0.5, 0.5, 0.0]),
        (cation, [0.5, 0.0, 0.5]),
        (cation, [0.0, 0.5, 0.5]),
    ];
    for &x in &[0.25, 0.75] {
        for &y in &[0.25, 0.75] {
            for &z in &[0.25, 0.75] {
                sites.push((anion, [x, y, z]));
            }
        }
    }
    Structure::new(Lattice::cubic(a), sites)
}

/// Perovskite ABX₃ (5-atom cubic cell): SrTiO₃, BaTiO₃, ...
pub fn perovskite(a_site: Element, b_site: Element, anion: Element) -> Structure {
    let a = bond(b_site, anion) * 2.0;
    Structure::new(
        Lattice::cubic(a),
        vec![
            (a_site, [0.5, 0.5, 0.5]),
            (b_site, [0.0, 0.0, 0.0]),
            (anion, [0.5, 0.0, 0.0]),
            (anion, [0.0, 0.5, 0.0]),
            (anion, [0.0, 0.0, 0.5]),
        ],
    )
}

/// Rutile MX₂ (6-atom tetragonal cell): TiO₂, SnO₂, ...
pub fn rutile(cation: Element, anion: Element) -> Structure {
    let d = bond(cation, anion);
    let a = d * 2.37;
    let c = d * 1.52;
    let u = 0.305;
    Structure::new(
        Lattice::orthorhombic(a, a, c),
        vec![
            (cation, [0.0, 0.0, 0.0]),
            (cation, [0.5, 0.5, 0.5]),
            (anion, [u, u, 0.0]),
            (anion, [1.0 - u, 1.0 - u, 0.0]),
            (anion, [0.5 + u, 0.5 - u, 0.5]),
            (anion, [0.5 - u, 0.5 + u, 0.5]),
        ],
    )
}

/// Layered alkali transition-metal oxide A MO₂ (the LiCoO₂ / NaCoO₂
/// family), approximated in a hexagonal 4-atom cell.
pub fn layered_amo2(alkali: Element, metal: Element, anion: Element) -> Structure {
    let a = bond(metal, anion) * 1.45;
    let c = (bond(alkali, anion) + bond(metal, anion)) * 2.4;
    Structure::new(
        Lattice::hexagonal(a, c),
        vec![
            (alkali, [0.0, 0.0, 0.5]),
            (metal, [0.0, 0.0, 0.0]),
            (anion, [1.0 / 3.0, 2.0 / 3.0, 0.25]),
            (anion, [2.0 / 3.0, 1.0 / 3.0, 0.75]),
        ],
    )
}

/// Olivine A MPO₄ (the LiFePO₄ family), approximated in a 7-atom
/// orthorhombic cell (one formula unit).
pub fn olivine_ampo4(alkali: Element, metal: Element) -> Structure {
    let p = Element::from_symbol("P").expect("P in table");
    let o = Element::from_symbol("O").expect("O in table");
    let scale = bond(metal, o);
    let (a, b, c) = (scale * 4.9, scale * 2.9, scale * 2.25);
    Structure::new(
        Lattice::orthorhombic(a, b, c),
        vec![
            (alkali, [0.0, 0.0, 0.0]),
            (metal, [0.28, 0.25, 0.97]),
            (p, [0.09, 0.25, 0.42]),
            (o, [0.10, 0.25, 0.74]),
            (o, [0.46, 0.25, 0.21]),
            (o, [0.17, 0.05, 0.28]),
            (o, [0.17, 0.45, 0.28]),
        ],
    )
}

/// Spinel-stoichiometry AB₂X₄ (14-atom cell, 2 formula units). The cell
/// is an idealized arrangement on a ¼-spaced grid — correct
/// stoichiometry, cation/anion alternation and realistic density, which
/// is what the screening pipeline consumes (exact Fd-3m geometry is not
/// needed by any downstream analysis).
pub fn spinel(a_site: Element, b_site: Element, anion: Element) -> Structure {
    let a = bond(b_site, anion) * 4.0;
    Structure::new(
        Lattice::cubic(a),
        vec![
            (a_site, [0.0, 0.0, 0.0]),
            (a_site, [0.5, 0.5, 0.0]),
            (b_site, [0.25, 0.25, 0.25]),
            (b_site, [0.75, 0.75, 0.25]),
            (b_site, [0.25, 0.75, 0.75]),
            (b_site, [0.75, 0.25, 0.75]),
            (anion, [0.5, 0.0, 0.5]),
            (anion, [0.0, 0.5, 0.5]),
            (anion, [0.25, 0.25, 0.75]),
            (anion, [0.75, 0.75, 0.75]),
            (anion, [0.5, 0.0, 0.0]),
            (anion, [0.0, 0.5, 0.0]),
            (anion, [0.75, 0.25, 0.25]),
            (anion, [0.25, 0.75, 0.25]),
        ],
    )
}

/// Names of all prototype families (for generators and reports).
pub const PROTOTYPE_NAMES: &[&str] = &[
    "fcc",
    "bcc",
    "hcp",
    "rocksalt",
    "zincblende",
    "fluorite",
    "perovskite",
    "rutile",
    "layered_amo2",
    "olivine_ampo4",
    "spinel",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn stoichiometries() {
        assert_eq!(rocksalt(el("Na"), el("Cl")).formula(), "NaCl");
        assert_eq!(zincblende(el("Zn"), el("S")).formula(), "ZnS");
        assert_eq!(fluorite(el("Ca"), el("F")).formula(), "CaF2");
        assert_eq!(perovskite(el("Sr"), el("Ti"), el("O")).formula(), "SrTiO3");
        assert_eq!(rutile(el("Ti"), el("O")).formula(), "TiO2");
        assert_eq!(
            layered_amo2(el("Li"), el("Co"), el("O")).formula(),
            "LiCoO2"
        );
        assert_eq!(olivine_ampo4(el("Li"), el("Fe")).formula(), "LiFePO4");
        assert_eq!(spinel(el("Li"), el("Mn"), el("O")).formula(), "LiMn2O4");
    }

    #[test]
    fn elemental_cells() {
        assert_eq!(fcc(el("Cu")).num_sites(), 4);
        assert_eq!(bcc(el("Fe")).num_sites(), 2);
        assert_eq!(hcp(el("Mg")).num_sites(), 2);
        assert_eq!(fcc(el("Cu")).formula(), "Cu");
    }

    #[test]
    fn no_overlapping_sites() {
        let protos = [
            rocksalt(el("Na"), el("Cl")),
            zincblende(el("Zn"), el("S")),
            fluorite(el("Ca"), el("F")),
            perovskite(el("Sr"), el("Ti"), el("O")),
            rutile(el("Ti"), el("O")),
            layered_amo2(el("Li"), el("Co"), el("O")),
            olivine_ampo4(el("Li"), el("Fe")),
            spinel(el("Li"), el("Mn"), el("O")),
        ];
        for s in &protos {
            let d = s.min_distance().unwrap();
            assert!(d > 0.8, "{} has overlapping sites: d = {d}", s.formula());
        }
    }

    #[test]
    fn densities_physically_plausible() {
        for s in [
            rocksalt(el("Na"), el("Cl")),
            perovskite(el("Sr"), el("Ti"), el("O")),
            olivine_ampo4(el("Li"), el("Fe")),
        ] {
            let rho = s.density();
            assert!(rho > 0.5 && rho < 20.0, "{}: {rho} g/cm³", s.formula());
        }
    }
}
