//! Structure matching for duplicate detection.
//!
//! §III-C3: "Duplicate jobs are detected via Binder objects, which
//! uniquely identify a job. In the case of VASP runs, a Binder may
//! contain a reference to a crystal structure ID and the type of
//! functional." The structure part of that identity comes from a
//! matcher like this: two structures are duplicates when they have the
//! same reduced formula and equivalent cells within tolerances.

use crate::structure::Structure;

/// Tolerance-based structure comparator.
#[derive(Debug, Clone)]
pub struct StructureMatcher {
    /// Relative tolerance on volume per atom.
    pub vol_tol: f64,
    /// Relative tolerance on lattice lengths.
    pub length_tol: f64,
    /// Absolute tolerance on nearest-neighbor distances (Å).
    pub nn_tol: f64,
}

impl Default for StructureMatcher {
    fn default() -> Self {
        StructureMatcher {
            vol_tol: 0.05,
            length_tol: 0.05,
            nn_tol: 0.15,
        }
    }
}

impl StructureMatcher {
    /// Do `a` and `b` represent the same crystal?
    pub fn matches(&self, a: &Structure, b: &Structure) -> bool {
        if a.formula() != b.formula() {
            return false;
        }
        // Compare per-formula-unit site counts (supercells still match).
        let (ra, _) = a.composition().reduced_amounts();
        let (rb, _) = b.composition().reduced_amounts();
        if ra != rb {
            return false;
        }
        let va = a.volume_per_atom();
        let vb = b.volume_per_atom();
        if (va - vb).abs() > self.vol_tol * va.max(vb) {
            return false;
        }
        // For equal cells also compare sorted lattice lengths; supercells
        // are covered by the volume-per-atom and environment checks.
        if a.num_sites() == b.num_sites() {
            let mut la = a.lattice.lengths();
            let mut lb = b.lattice.lengths();
            la.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            lb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            for (x, y) in la.iter().zip(lb.iter()) {
                if (x - y).abs() > self.length_tol * x.max(*y) {
                    return false;
                }
            }
        }
        // Compare sorted per-element nearest-neighbor environments.
        let env = |s: &Structure| -> Vec<(u8, f64)> {
            let mut v: Vec<(u8, f64)> = (0..s.num_sites())
                .map(|i| {
                    let nn = s.neighbors(i, 8.0).first().map(|(_, d)| *d).unwrap_or(0.0);
                    (s.sites[i].element.z(), nn)
                })
                .collect();
            v.sort_by(|p, q| p.0.cmp(&q.0).then(p.1.partial_cmp(&q.1).expect("finite")));
            v
        };
        let ea = env(a);
        let eb = env(b);
        if a.num_sites() == b.num_sites() {
            ea.iter()
                .zip(eb.iter())
                .all(|((za, da), (zb, db))| za == zb && (da - db).abs() <= self.nn_tol)
        } else {
            // Different cell sizes: compare the per-element min NN only.
            let min_by_z = |env: &[(u8, f64)]| -> Vec<(u8, f64)> {
                let mut out: Vec<(u8, f64)> = Vec::new();
                for &(z, d) in env {
                    match out.last_mut() {
                        Some((lz, ld)) if *lz == z => *ld = ld.min(d),
                        _ => out.push((z, d)),
                    }
                }
                out
            };
            let ma = min_by_z(&ea);
            let mb = min_by_z(&eb);
            ma.len() == mb.len()
                && ma
                    .iter()
                    .zip(mb.iter())
                    .all(|((za, da), (zb, db))| za == zb && (da - db).abs() <= self.nn_tol)
        }
    }

    /// Group structures into duplicate classes; returns, for each input
    /// index, the index of its class representative (first occurrence).
    pub fn group(&self, structures: &[Structure]) -> Vec<usize> {
        let mut rep: Vec<usize> = Vec::with_capacity(structures.len());
        for (i, s) in structures.iter().enumerate() {
            let mut found = i;
            for (j, _) in structures.iter().enumerate().take(i) {
                if rep[j] == j && self.matches(s, &structures[j]) {
                    found = j;
                    break;
                }
            }
            rep.push(found);
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::prototypes;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn identical_structures_match() {
        let m = StructureMatcher::default();
        let a = prototypes::rocksalt(el("Na"), el("Cl"));
        let b = prototypes::rocksalt(el("Na"), el("Cl"));
        assert!(m.matches(&a, &b));
    }

    #[test]
    fn different_chemistry_no_match() {
        let m = StructureMatcher::default();
        let a = prototypes::rocksalt(el("Na"), el("Cl"));
        let b = prototypes::rocksalt(el("Li"), el("Cl"));
        assert!(!m.matches(&a, &b));
    }

    #[test]
    fn different_prototype_no_match() {
        let m = StructureMatcher::default();
        // Same formula, different structure: rocksalt vs zincblende ZnS.
        let a = prototypes::rocksalt(el("Zn"), el("S"));
        let b = prototypes::zincblende(el("Zn"), el("S"));
        assert!(!m.matches(&a, &b), "rocksalt vs zincblende must differ");
    }

    #[test]
    fn small_perturbation_still_matches() {
        let m = StructureMatcher::default();
        let a = prototypes::rocksalt(el("Na"), el("Cl"));
        let b = a.perturbed(0.03, 99);
        assert!(m.matches(&a, &b));
    }

    #[test]
    fn volume_change_no_match() {
        let m = StructureMatcher::default();
        let a = prototypes::rocksalt(el("Na"), el("Cl"));
        let mut b = a.clone();
        b.lattice = b.lattice.scaled_to_volume(a.lattice.volume() * 1.4);
        assert!(!m.matches(&a, &b));
    }

    #[test]
    fn supercell_matches_unit_cell() {
        let m = StructureMatcher::default();
        let a = prototypes::rocksalt(el("Na"), el("Cl"));
        let b = a.supercell(2, 1, 1);
        assert!(m.matches(&a, &b), "supercell should match its unit cell");
    }

    #[test]
    fn grouping() {
        let m = StructureMatcher::default();
        let s1 = prototypes::rocksalt(el("Na"), el("Cl"));
        let s2 = prototypes::rocksalt(el("Na"), el("Cl"));
        let s3 = prototypes::rocksalt(el("Li"), el("F"));
        let reps = m.group(&[s1, s2, s3]);
        assert_eq!(reps, vec![0, 0, 2]);
    }
}
