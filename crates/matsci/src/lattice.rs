//! Crystal lattices: 3×3 row-vector matrices, parameter conversions,
//! reciprocal lattices, and d-spacings.

use serde::{Deserialize, Serialize};

/// A 3-vector in Cartesian or fractional space.
pub type Vec3 = [f64; 3];

/// Dot product.
pub fn dot(a: &Vec3, b: &Vec3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Cross product.
pub fn cross(a: &Vec3, b: &Vec3) -> Vec3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Euclidean norm.
pub fn norm(a: &Vec3) -> f64 {
    dot(a, a).sqrt()
}

/// A crystal lattice; rows are the three lattice vectors (Å).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lattice {
    /// Row-vector matrix `[a, b, c]`.
    pub matrix: [Vec3; 3],
}

impl Lattice {
    /// From an explicit row-vector matrix.
    pub fn new(matrix: [Vec3; 3]) -> Self {
        Lattice { matrix }
    }

    /// Cubic lattice with edge `a`.
    pub fn cubic(a: f64) -> Self {
        Lattice::new([[a, 0.0, 0.0], [0.0, a, 0.0], [0.0, 0.0, a]])
    }

    /// Orthorhombic lattice.
    pub fn orthorhombic(a: f64, b: f64, c: f64) -> Self {
        Lattice::new([[a, 0.0, 0.0], [0.0, b, 0.0], [0.0, 0.0, c]])
    }

    /// Hexagonal lattice (γ = 120°).
    pub fn hexagonal(a: f64, c: f64) -> Self {
        Lattice::from_parameters(a, a, c, 90.0, 90.0, 120.0)
    }

    /// Rhombohedral lattice (a = b = c, α = β = γ).
    pub fn rhombohedral(a: f64, alpha: f64) -> Self {
        Lattice::from_parameters(a, a, a, alpha, alpha, alpha)
    }

    /// From cell parameters (lengths in Å, angles in degrees), using the
    /// standard crystallographic construction.
    pub fn from_parameters(a: f64, b: f64, c: f64, alpha: f64, beta: f64, gamma: f64) -> Self {
        let (ar, br, gr) = (alpha.to_radians(), beta.to_radians(), gamma.to_radians());
        let val = (ar.cos() * br.cos() - gr.cos()) / (ar.sin() * br.sin());
        let val = val.clamp(-1.0, 1.0);
        let gamma_star = val.acos();
        let snap = |x: f64| if x.abs() < 1e-12 { 0.0 } else { x };
        let va = [snap(a * br.sin()), 0.0, snap(a * br.cos())];
        let vb = [
            snap(-b * ar.sin() * gamma_star.cos()),
            snap(b * ar.sin() * gamma_star.sin()),
            snap(b * ar.cos()),
        ];
        let vc = [0.0, 0.0, c];
        Lattice::new([va, vb, vc])
    }

    /// Lattice vector lengths (a, b, c).
    pub fn lengths(&self) -> [f64; 3] {
        [
            norm(&self.matrix[0]),
            norm(&self.matrix[1]),
            norm(&self.matrix[2]),
        ]
    }

    /// Cell angles (α, β, γ) in degrees.
    pub fn angles(&self) -> [f64; 3] {
        let [a, b, c] = &self.matrix;
        let ang = |u: &Vec3, v: &Vec3| -> f64 {
            (dot(u, v) / (norm(u) * norm(v)))
                .clamp(-1.0, 1.0)
                .acos()
                .to_degrees()
        };
        [ang(b, c), ang(a, c), ang(a, b)]
    }

    /// Cell volume (Å³).
    pub fn volume(&self) -> f64 {
        let [a, b, c] = &self.matrix;
        dot(a, &cross(b, c)).abs()
    }

    /// Fractional → Cartesian coordinates.
    pub fn to_cartesian(&self, frac: &Vec3) -> Vec3 {
        let m = &self.matrix;
        [
            frac[0] * m[0][0] + frac[1] * m[1][0] + frac[2] * m[2][0],
            frac[0] * m[0][1] + frac[1] * m[1][1] + frac[2] * m[2][1],
            frac[0] * m[0][2] + frac[1] * m[1][2] + frac[2] * m[2][2],
        ]
    }

    /// Cartesian → fractional coordinates (via matrix inverse).
    pub fn to_fractional(&self, cart: &Vec3) -> Vec3 {
        let inv = self.inverse();
        [
            cart[0] * inv[0][0] + cart[1] * inv[1][0] + cart[2] * inv[2][0],
            cart[0] * inv[0][1] + cart[1] * inv[1][1] + cart[2] * inv[2][1],
            cart[0] * inv[0][2] + cart[1] * inv[1][2] + cart[2] * inv[2][2],
        ]
    }

    /// Inverse of the row-vector matrix.
    pub fn inverse(&self) -> [Vec3; 3] {
        let m = &self.matrix;
        let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        let d = 1.0 / det;
        [
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * d,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * d,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * d,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * d,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * d,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * d,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * d,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * d,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * d,
            ],
        ]
    }

    /// Reciprocal lattice (with the 2π convention omitted — the
    /// crystallographic convention, so d = 1/|g|).
    pub fn reciprocal(&self) -> Lattice {
        let [a, b, c] = &self.matrix;
        let v = dot(a, &cross(b, c));
        let scale = 1.0 / v;
        let bc = cross(b, c);
        let ca = cross(c, a);
        let ab = cross(a, b);
        Lattice::new([
            [bc[0] * scale, bc[1] * scale, bc[2] * scale],
            [ca[0] * scale, ca[1] * scale, ca[2] * scale],
            [ab[0] * scale, ab[1] * scale, ab[2] * scale],
        ])
    }

    /// Interplanar spacing for Miller indices (hkl), in Å.
    pub fn d_spacing(&self, h: i32, k: i32, l: i32) -> f64 {
        let rec = self.reciprocal();
        let g = rec.to_cartesian(&[h as f64, k as f64, l as f64]);
        1.0 / norm(&g)
    }

    /// Shortest Cartesian distance between fractional points under
    /// periodic boundary conditions (minimum-image over ±1 cells).
    pub fn pbc_distance(&self, f1: &Vec3, f2: &Vec3) -> f64 {
        let mut best = f64::INFINITY;
        for di in -1..=1 {
            for dj in -1..=1 {
                for dk in -1..=1 {
                    let df = [
                        f2[0] - f1[0] + di as f64,
                        f2[1] - f1[1] + dj as f64,
                        f2[2] - f1[2] + dk as f64,
                    ];
                    let cart = self.to_cartesian(&df);
                    best = best.min(norm(&cart));
                }
            }
        }
        best
    }

    /// Uniformly scale the lattice so its volume becomes `new_volume`.
    pub fn scaled_to_volume(&self, new_volume: f64) -> Lattice {
        let s = (new_volume / self.volume()).cbrt();
        let mut m = self.matrix;
        for row in &mut m {
            for x in row {
                *x *= s;
            }
        }
        Lattice::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn cubic_basics() {
        let l = Lattice::cubic(4.0);
        assert_eq!(l.lengths(), [4.0, 4.0, 4.0]);
        assert_eq!(l.angles(), [90.0, 90.0, 90.0]);
        assert!(approx(l.volume(), 64.0, 1e-9));
    }

    #[test]
    fn from_parameters_roundtrip() {
        let l = Lattice::from_parameters(3.0, 4.0, 5.0, 80.0, 95.0, 110.0);
        let [a, b, c] = l.lengths();
        assert!(approx(a, 3.0, 1e-9) && approx(b, 4.0, 1e-9) && approx(c, 5.0, 1e-9));
        let [al, be, ga] = l.angles();
        assert!(approx(al, 80.0, 1e-6), "alpha {al}");
        assert!(approx(be, 95.0, 1e-6), "beta {be}");
        assert!(approx(ga, 110.0, 1e-6), "gamma {ga}");
    }

    #[test]
    fn hexagonal_volume() {
        // V = a²c·sin(120°)
        let l = Lattice::hexagonal(3.0, 5.0);
        assert!(approx(
            l.volume(),
            9.0 * 5.0 * (120f64).to_radians().sin(),
            1e-9
        ));
    }

    #[test]
    fn cart_frac_roundtrip() {
        let l = Lattice::from_parameters(3.1, 4.2, 5.3, 85.0, 92.0, 105.0);
        let f = [0.25, 0.5, 0.75];
        let cart = l.to_cartesian(&f);
        let back = l.to_fractional(&cart);
        for i in 0..3 {
            assert!(approx(back[i], f[i], 1e-10));
        }
    }

    #[test]
    fn reciprocal_of_cubic() {
        let l = Lattice::cubic(4.0);
        let r = l.reciprocal();
        assert!(approx(r.lengths()[0], 0.25, 1e-12));
    }

    #[test]
    fn d_spacing_cubic() {
        // d_hkl = a / sqrt(h²+k²+l²) for cubic.
        let l = Lattice::cubic(4.0);
        assert!(approx(l.d_spacing(1, 0, 0), 4.0, 1e-9));
        assert!(approx(l.d_spacing(1, 1, 0), 4.0 / 2f64.sqrt(), 1e-9));
        assert!(approx(l.d_spacing(1, 1, 1), 4.0 / 3f64.sqrt(), 1e-9));
    }

    #[test]
    fn pbc_distance_wraps() {
        let l = Lattice::cubic(10.0);
        // Points at 0.05 and 0.95 along x are 1 Å apart through the wall.
        let d = l.pbc_distance(&[0.05, 0.0, 0.0], &[0.95, 0.0, 0.0]);
        assert!(approx(d, 1.0, 1e-9));
    }

    #[test]
    fn scaled_to_volume() {
        let l = Lattice::cubic(2.0).scaled_to_volume(64.0);
        assert!(approx(l.volume(), 64.0, 1e-9));
        assert!(approx(l.lengths()[0], 4.0, 1e-9));
    }

    #[test]
    fn serde_roundtrip() {
        let l = Lattice::hexagonal(3.0, 5.0);
        let s = serde_json::to_string(&l).unwrap();
        let back: Lattice = serde_json::from_str(&s).unwrap();
        assert_eq!(back, l);
    }
}
