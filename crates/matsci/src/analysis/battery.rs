//! Battery electrode analysis: voltages and capacities.
//!
//! Figure 1 of the paper plots screened battery materials as predicted
//! voltage vs. gravimetric capacity. Both quantities derive from computed
//! total energies:
//!
//! * **voltage** of an intercalation step between alkali contents
//!   `x1 < x2` of a host H:
//!   `V = -[E(A_x2 H) - E(A_x1 H) - (x2-x1)·E(A)] / (x2-x1)` (eV per ion
//!   = volts for a singly-charged ion);
//! * **gravimetric capacity**: `C = n_ion · F / (3.6 · M_discharged)`
//!   in mAh/g with F = 96485 C/mol.

use crate::composition::Composition;
use crate::element::Element;
use serde::{Deserialize, Serialize};

/// Faraday constant (C/mol).
pub const FARADAY: f64 = 96_485.332;

/// One lithiation state of an electrode: `x` ions per framework formula
/// unit with total energy `energy` (eV per framework formula unit,
/// including the ions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LithiationPoint {
    /// Working ions per framework formula unit.
    pub x: f64,
    /// Total energy (eV / framework f.u.).
    pub energy: f64,
}

/// A voltage plateau between two adjacent stable lithiation states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageStep {
    /// Ion content at the charged end.
    pub x_from: f64,
    /// Ion content at the discharged end.
    pub x_to: f64,
    /// Step voltage (V).
    pub voltage: f64,
}

/// An analyzed insertion electrode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertionElectrode {
    /// Host framework composition (per formula unit, no working ions).
    pub framework: Composition,
    /// The working ion.
    pub working_ion: Element,
    /// Reference energy of the working-ion metal (eV/atom).
    pub ion_reference_energy: f64,
    /// Voltage profile, ordered by increasing x.
    pub steps: Vec<VoltageStep>,
}

impl InsertionElectrode {
    /// Build from lithiation points. Points not on the lower convex hull
    /// of (x, E) are dropped — they are not thermodynamically visited on
    /// (dis)charge; the resulting voltage profile is monotonically
    /// non-increasing, as physics requires.
    pub fn new(
        framework: Composition,
        working_ion: Element,
        ion_reference_energy: f64,
        mut points: Vec<LithiationPoint>,
    ) -> Result<InsertionElectrode, String> {
        if points.len() < 2 {
            return Err("need at least two lithiation states".into());
        }
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite x"));
        if points.windows(2).any(|w| (w[1].x - w[0].x).abs() < 1e-12) {
            return Err("duplicate lithiation states".into());
        }
        // Lower convex hull in (x, E) by monotone-chain.
        let mut hull: Vec<LithiationPoint> = Vec::with_capacity(points.len());
        for p in points {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                let cross =
                    (b.x - a.x) * (p.energy - a.energy) - (b.energy - a.energy) * (p.x - a.x);
                if cross <= 0.0 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        let steps: Vec<VoltageStep> = hull
            .windows(2)
            .map(|w| {
                let dx = w[1].x - w[0].x;
                let de = w[1].energy - w[0].energy;
                VoltageStep {
                    x_from: w[0].x,
                    x_to: w[1].x,
                    voltage: -(de / dx - ion_reference_energy),
                }
            })
            .collect();
        Ok(InsertionElectrode {
            framework,
            working_ion,
            ion_reference_energy,
            steps,
        })
    }

    /// Total ion range (x_max - x_min).
    pub fn delta_x(&self) -> f64 {
        match (self.steps.first(), self.steps.last()) {
            (Some(f), Some(l)) => l.x_to - f.x_from,
            _ => 0.0,
        }
    }

    /// Capacity-weighted average voltage (V).
    pub fn average_voltage(&self) -> f64 {
        let dx = self.delta_x();
        if dx == 0.0 {
            return 0.0;
        }
        self.steps
            .iter()
            .map(|s| s.voltage * (s.x_to - s.x_from))
            .sum::<f64>()
            / dx
    }

    /// Maximum and minimum step voltage.
    pub fn voltage_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.steps {
            lo = lo.min(s.voltage);
            hi = hi.max(s.voltage);
        }
        (lo, hi)
    }

    /// Gravimetric capacity (mAh/g) against the fully discharged mass.
    pub fn gravimetric_capacity(&self) -> f64 {
        let dx = self.delta_x();
        let x_max = self.steps.last().map(|s| s.x_to).unwrap_or(0.0);
        let m_discharged = self.framework.weight() + x_max * self.working_ion.mass();
        if m_discharged <= 0.0 {
            return 0.0;
        }
        dx * FARADAY / (3.6 * m_discharged)
    }

    /// Specific energy (Wh/kg) = average voltage × capacity.
    pub fn specific_energy(&self) -> f64 {
        self.average_voltage() * self.gravimetric_capacity()
    }

    /// Is the voltage profile physically valid (monotone non-increasing,
    /// all steps positive)?
    pub fn is_valid_profile(&self) -> bool {
        self.steps
            .windows(2)
            .all(|w| w[0].voltage >= w[1].voltage - 1e-9)
            && self.steps.iter().all(|s| s.voltage.is_finite())
    }

    /// Serialize to a datastore document for the `batteries` collection.
    pub fn to_doc(&self, battery_id: &str) -> serde_json::Value {
        serde_json::json!({
            "_id": battery_id,
            "battery_id": battery_id,
            "type": "intercalation",
            "framework": self.framework.reduced_formula(),
            "working_ion": self.working_ion.symbol(),
            "average_voltage": self.average_voltage(),
            "max_voltage": self.voltage_range().1,
            "min_voltage": self.voltage_range().0,
            "capacity_grav": self.gravimetric_capacity(),
            "specific_energy": self.specific_energy(),
            "nsteps": self.steps.len(),
            "steps": self.steps.iter().map(|s| serde_json::json!({
                "x_from": s.x_from, "x_to": s.x_to, "voltage": s.voltage
            })).collect::<Vec<_>>(),
        })
    }
}

/// A conversion-battery analysis: the reactant converts entirely to new
/// phases on reaction with the working ion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionElectrode {
    /// Reactant composition.
    pub reactant: Composition,
    /// The working ion.
    pub working_ion: Element,
    /// Ions consumed per reactant formula unit.
    pub x_ions: f64,
    /// Reaction voltage (V).
    pub voltage: f64,
}

impl ConversionElectrode {
    /// From the reaction energy: `reactant + x·A → products`,
    /// `ΔE = E_products - E_reactant - x·E_A` (eV per reactant f.u.).
    pub fn from_reaction_energy(
        reactant: Composition,
        working_ion: Element,
        x_ions: f64,
        reaction_energy: f64,
    ) -> ConversionElectrode {
        ConversionElectrode {
            reactant,
            working_ion,
            x_ions,
            voltage: if x_ions > 0.0 {
                -reaction_energy / x_ions
            } else {
                0.0
            },
        }
    }

    /// Gravimetric capacity (mAh/g), against the lithiated product mass.
    pub fn gravimetric_capacity(&self) -> f64 {
        let m = self.reactant.weight() + self.x_ions * self.working_ion.mass();
        if m <= 0.0 {
            return 0.0;
        }
        self.x_ions * FARADAY / (3.6 * m)
    }

    /// Serialize to a datastore document.
    pub fn to_doc(&self, battery_id: &str) -> serde_json::Value {
        serde_json::json!({
            "_id": battery_id,
            "battery_id": battery_id,
            "type": "conversion",
            "reactant": self.reactant.reduced_formula(),
            "working_ion": self.working_ion.symbol(),
            "x_ions": self.x_ions,
            "average_voltage": self.voltage,
            "capacity_grav": self.gravimetric_capacity(),
            "specific_energy": self.voltage * self.gravimetric_capacity(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li() -> Element {
        Element::from_symbol("Li").unwrap()
    }

    fn coo2() -> Composition {
        Composition::parse("CoO2").unwrap()
    }

    #[test]
    fn two_point_voltage() {
        // E(CoO2) = -20, E(LiCoO2) = -24, E(Li) = 0 → V = 4.0 V.
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(e.steps.len(), 1);
        assert!((e.average_voltage() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ion_reference_shifts_voltage() {
        // With E(Li metal) = -1.9: V = -( -4 - (-1.9) ) = 2.1.
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            -1.9,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        assert!((e.average_voltage() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn metastable_point_dropped() {
        // A high-energy intermediate above the hull must not create steps.
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 0.5,
                    energy: -18.0,
                }, // above tieline
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(e.steps.len(), 1);
        assert!(e.is_valid_profile());
    }

    #[test]
    fn stable_intermediate_creates_two_plateaus() {
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 0.5,
                    energy: -22.5,
                }, // below tieline
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(e.steps.len(), 2);
        // First step: -(-2.5/0.5) = 5.0; second: -(-1.5/0.5) = 3.0.
        assert!((e.steps[0].voltage - 5.0).abs() < 1e-9);
        assert!((e.steps[1].voltage - 3.0).abs() < 1e-9);
        assert!(e.is_valid_profile());
        // Average = (5·0.5 + 3·0.5)/1 = 4.
        assert!((e.average_voltage() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn licoo2_capacity_is_realistic() {
        // Known: LiCoO2 theoretical capacity ≈ 274 mAh/g for x ∈ [0,1].
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        let c = e.gravimetric_capacity();
        assert!((c - 274.0).abs() < 3.0, "capacity {c}");
    }

    #[test]
    fn specific_energy() {
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        let se = e.specific_energy();
        assert!((se - 4.0 * e.gravimetric_capacity()).abs() < 1e-9);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(InsertionElectrode::new(coo2(), li(), 0.0, vec![]).is_err());
        assert!(InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.5,
                    energy: -1.0
                },
                LithiationPoint {
                    x: 0.5,
                    energy: -2.0
                },
            ]
        )
        .is_err());
    }

    #[test]
    fn conversion_voltage_and_capacity() {
        // Fe2O3 + 6 Li → 2 Fe + 3 Li2O, ΔE = -12 eV → V = 2 V.
        let c = ConversionElectrode::from_reaction_energy(
            Composition::parse("Fe2O3").unwrap(),
            li(),
            6.0,
            -12.0,
        );
        assert!((c.voltage - 2.0).abs() < 1e-9);
        // Conversion capacities are large (>600 mAh/g here).
        let cap = c.gravimetric_capacity();
        assert!(cap > 600.0 && cap < 1200.0, "capacity {cap}");
    }

    #[test]
    fn docs_have_screening_fields() {
        let e = InsertionElectrode::new(
            coo2(),
            li(),
            0.0,
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: -20.0,
                },
                LithiationPoint {
                    x: 1.0,
                    energy: -24.0,
                },
            ],
        )
        .unwrap();
        let d = e.to_doc("bat-1");
        assert_eq!(d["working_ion"], "Li");
        assert!(d["average_voltage"].as_f64().unwrap() > 0.0);
        assert!(d["capacity_grav"].as_f64().unwrap() > 0.0);
    }
}
