//! Analysis tools: the "open analytics platform" of §III-D3.
//!
//! The pymatgen-equivalent analyses the paper names: phase diagrams
//! (stability), battery electrodes (voltage/capacity), x-ray diffraction
//! patterns, and band structures — plus the small LP solver the convex
//! hull is built on.

pub mod bandstructure;
pub mod battery;
pub mod diffusion;
pub mod phase_diagram;
pub mod simplex;
pub mod xrd;
