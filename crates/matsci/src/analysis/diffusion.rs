//! Ion-migration screening.
//!
//! The paper's battery story continues past voltage and capacity:
//! "further computations can be used to screen promising candidates for
//! other important properties such as Li diffusivity (related to power
//! delivered by the cell)". This module implements the standard cheap
//! geometric screen: the migration **bottleneck radius** along the
//! straight path between neighboring working-ion sites, an empirical
//! barrier from it, and an Arrhenius diffusivity.

use crate::element::Element;
use crate::lattice::norm;
use crate::structure::Structure;
use serde::{Deserialize, Serialize};

/// Boltzmann constant (eV/K).
pub const K_B: f64 = 8.617_333e-5;

/// Result of the geometric migration analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPath {
    /// Hop length between the two ion sites (Å).
    pub hop_length: f64,
    /// Bottleneck radius: the largest sphere that can pass (Å).
    pub bottleneck_radius: f64,
    /// Empirical migration barrier (eV).
    pub barrier_ev: f64,
}

/// Shortest distance from point `p` to segment `a`–`b` (all Cartesian).
fn point_segment_distance(p: [f64; 3], a: [f64; 3], b: [f64; 3]) -> f64 {
    let ab = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let ap = [p[0] - a[0], p[1] - a[1], p[2] - a[2]];
    let len2 = ab[0] * ab[0] + ab[1] * ab[1] + ab[2] * ab[2];
    if len2 == 0.0 {
        return norm(&ap);
    }
    let t = ((ap[0] * ab[0] + ap[1] * ab[1] + ap[2] * ab[2]) / len2).clamp(0.0, 1.0);
    let c = [a[0] + t * ab[0], a[1] + t * ab[1], a[2] + t * ab[2]];
    norm(&[p[0] - c[0], p[1] - c[1], p[2] - c[2]])
}

/// Analyze the easiest migration path of `ion` in `structure`: for each
/// pair of nearest ion sites, walk the straight path and find the
/// framework atom that pinches it most; return the best (widest) path.
///
/// Returns `None` when the structure has fewer than two ion sites (no
/// hop to analyze).
pub fn easiest_path(structure: &Structure, ion: Element) -> Option<MigrationPath> {
    let ion_sites: Vec<usize> = (0..structure.num_sites())
        .filter(|&i| structure.sites[i].element == ion)
        .collect();
    if ion_sites.len() < 2 {
        return None;
    }
    let lattice = &structure.lattice;
    let mut best: Option<MigrationPath> = None;
    for (ii, &i) in ion_sites.iter().enumerate() {
        // Hop to the nearest ion neighbor (across images).
        let fi = structure.sites[i].frac;
        let a = lattice.to_cartesian(&fi);
        for &j in ion_sites.iter().skip(ii + 1) {
            // Find the nearest image of j.
            let fj = structure.sites[j].frac;
            let mut best_img = [0.0; 3];
            let mut best_d = f64::INFINITY;
            for di in -1i32..=1 {
                for dj in -1i32..=1 {
                    for dk in -1i32..=1 {
                        let img = [fj[0] + di as f64, fj[1] + dj as f64, fj[2] + dk as f64];
                        let c = lattice.to_cartesian(&img);
                        let d = norm(&[c[0] - a[0], c[1] - a[1], c[2] - a[2]]);
                        if d < best_d {
                            best_d = d;
                            best_img = img;
                        }
                    }
                }
            }
            if best_d > 6.0 {
                continue; // Not a plausible single hop.
            }
            let b = lattice.to_cartesian(&best_img);
            // Bottleneck: the framework atom (non-ion) closest to the
            // path, minus its radius, over all nearby images.
            let mut bottleneck = f64::INFINITY;
            for (k, site) in structure.sites.iter().enumerate() {
                if site.element == ion && (k == i || k == j) {
                    continue;
                }
                for di in -1i32..=1 {
                    for dj in -1i32..=1 {
                        for dk in -1i32..=1 {
                            let img = [
                                site.frac[0] + di as f64,
                                site.frac[1] + dj as f64,
                                site.frac[2] + dk as f64,
                            ];
                            let p = lattice.to_cartesian(&img);
                            let d = point_segment_distance(p, a, b);
                            bottleneck = bottleneck.min(d - site.element.radius());
                        }
                    }
                }
            }
            if !bottleneck.is_finite() {
                continue;
            }
            let path = MigrationPath {
                hop_length: best_d,
                bottleneck_radius: bottleneck,
                barrier_ev: barrier_from_bottleneck(bottleneck, best_d),
            };
            match &best {
                Some(p) if p.barrier_ev <= path.barrier_ev => {}
                _ => best = Some(path),
            }
        }
    }
    best
}

/// Empirical barrier model: wide bottlenecks and short hops migrate
/// easily. Calibrated so good conductors land at 0.2–0.4 eV and blocked
/// channels above 1 eV (the screening thresholds used in practice).
pub fn barrier_from_bottleneck(bottleneck_radius: f64, hop_length: f64) -> f64 {
    let squeeze = (0.9 - bottleneck_radius).max(0.0); // Å of pinch vs a roomy channel
    let stretch = (hop_length - 2.2).max(0.0); // long hops cost extra
    (0.18 + 1.4 * squeeze + 0.12 * stretch).min(3.0)
}

/// Arrhenius diffusivity (cm²/s) at temperature `t_k` for a barrier.
pub fn diffusivity(barrier_ev: f64, t_k: f64) -> f64 {
    const D0: f64 = 1e-3; // attempt prefactor, cm²/s
    D0 * (-barrier_ev / (K_B * t_k)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prototypes;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn needs_two_ion_sites() {
        let s = prototypes::perovskite(el("Sr"), el("Ti"), el("O"));
        assert!(easiest_path(&s, el("Li")).is_none());
        // One Li site only:
        let s = prototypes::layered_amo2(el("Li"), el("Co"), el("O"));
        assert!(easiest_path(&s, el("Li")).is_none());
    }

    #[test]
    fn supercell_exposes_hops() {
        let s = prototypes::layered_amo2(el("Li"), el("Co"), el("O")).supercell(2, 2, 1);
        let path = easiest_path(&s, el("Li")).unwrap();
        assert!(path.hop_length > 1.5 && path.hop_length < 6.0, "{path:?}");
        assert!(path.barrier_ev > 0.0 && path.barrier_ev <= 3.0);
    }

    #[test]
    fn layered_conducts_better_than_close_packed() {
        // In-plane Li hops in a layered oxide see a wider channel than
        // Li squeezed through a rocksalt cage.
        let layered = prototypes::layered_amo2(el("Li"), el("Co"), el("O")).supercell(2, 2, 1);
        let rocksalt = prototypes::rocksalt(el("Li"), el("O"));
        let p_lay = easiest_path(&layered, el("Li")).unwrap();
        let p_rs = easiest_path(&rocksalt, el("Li")).unwrap();
        assert!(
            p_lay.barrier_ev < p_rs.barrier_ev,
            "layered {p_lay:?} vs rocksalt {p_rs:?}"
        );
    }

    #[test]
    fn barrier_monotone_in_bottleneck() {
        let wide = barrier_from_bottleneck(1.2, 3.0);
        let narrow = barrier_from_bottleneck(0.2, 3.0);
        assert!(wide < narrow);
        let short = barrier_from_bottleneck(0.5, 2.0);
        let long = barrier_from_bottleneck(0.5, 5.0);
        assert!(short < long);
    }

    #[test]
    fn diffusivity_arrhenius() {
        let d_room = diffusivity(0.3, 300.0);
        let d_hot = diffusivity(0.3, 600.0);
        assert!(d_hot > d_room);
        let d_blocked = diffusivity(1.5, 300.0);
        assert!(d_blocked < d_room * 1e-10);
        // Good-conductor ballpark: 1e-9..1e-6 cm²/s at 300 K for ~0.3 eV.
        assert!(d_room > 1e-10 && d_room < 1e-4, "{d_room}");
    }

    #[test]
    fn point_segment_geometry() {
        let d = point_segment_distance([0.0, 1.0, 0.0], [-1.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        assert!((d - 1.0).abs() < 1e-12);
        // Beyond the endpoint, distance is to the endpoint.
        let d = point_segment_distance([3.0, 0.0, 0.0], [-1.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-12);
        // Degenerate segment.
        let d = point_segment_distance([0.0, 0.0, 2.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }
}
