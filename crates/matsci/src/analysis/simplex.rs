//! A small dense two-phase simplex solver for equality-constrained LPs:
//!
//! minimize `c·x`  subject to  `A x = b`, `x ≥ 0`.
//!
//! Phase-diagram construction needs exactly this: the energy of the
//! convex hull at a composition is the minimum energy of any
//! non-negative mixture of known phases with that composition. Problem
//! sizes are tiny (constraints = number of elements + 1, variables =
//! number of candidate phases), so a dense tableau with Bland's
//! anti-cycling rule is the right tool.

#![allow(clippy::needless_range_loop)]

/// Result of a successful solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal variable assignment.
    pub x: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Solve `min c·x  s.t.  A x = b, x ≥ 0`.
///
/// Returns `None` when infeasible. The problem must be bounded (phase
/// diagram LPs always are, because Σλ = 1 is among the constraints).
// mp-flow: allow(R002) — dense tableau algebra; every index ranges over dimensions fixed at tableau construction (m rows, n + m + 1 cols), asserted on entry
pub fn solve_min(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Option<LpSolution> {
    let m = a.len();
    let n = c.len();
    debug_assert!(a.iter().all(|row| row.len() == n));
    debug_assert_eq!(b.len(), m);

    // Tableau: columns = n structural + m artificial + 1 rhs.
    let cols = n + m + 1;
    let mut t = vec![vec![0.0f64; cols]; m];
    for i in 0..m {
        let flip = if b[i] < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = flip * a[i][j];
        }
        t[i][n + i] = 1.0;
        t[i][cols - 1] = flip * b[i];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Phase 1: minimize the sum of artificials. The reduced-cost row is
    // c' − Σ rows with c' = [0…0, 1…1], so artificial (basic) columns
    // start at exactly zero.
    let mut obj = vec![0.0f64; cols];
    for i in 0..m {
        for j in 0..cols {
            obj[j] -= t[i][j];
        }
    }
    for i in 0..m {
        obj[n + i] += 1.0;
    }
    pivot_until_optimal(&mut t, &mut obj, &mut basis, n + m)?;
    let phase1 = -obj[cols - 1];
    if phase1 > 1e-7 {
        return None; // Infeasible.
    }
    // Drive any artificial still in the basis out (degenerate cases).
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut vec![0.0; cols], i, j, &mut basis);
            }
        }
    }

    // Phase 2: original objective expressed in the current basis.
    let mut obj = vec![0.0f64; cols];
    obj[..n].copy_from_slice(c);
    for i in 0..m {
        let bj = basis[i];
        if bj < n && obj[bj].abs() > 0.0 {
            let coef = obj[bj];
            for j in 0..cols {
                obj[j] -= coef * t[i][j];
            }
        }
    }
    pivot_until_optimal(&mut t, &mut obj, &mut basis, n)?;

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][cols - 1];
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Some(LpSolution { objective, x })
}

/// Run simplex iterations (Bland's rule) until no negative reduced cost
/// among the first `allowed_cols` columns. Returns `None` if unbounded.
// mp-flow: allow(R002) — row/column loops range over `t.len()` and `obj.len()`; tableau shape is invariant across pivots
fn pivot_until_optimal(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    allowed_cols: usize,
) -> Option<()> {
    let m = t.len();
    let cols = obj.len();
    for _ in 0..10_000 {
        // Entering column: smallest index with negative reduced cost.
        let enter = (0..allowed_cols).find(|&j| obj[j] < -EPS);
        let Some(enter) = enter else {
            return Some(());
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols - 1] / t[i][enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let leave = leave?; // None → unbounded.
        pivot(t, obj, leave, enter, basis);
    }
    None // Iteration cap: treat as failure rather than looping forever.
}

// mp-flow: allow(R002) — callers pass `row < t.len()` and `col < cols` from the ratio test; every row of `t` has `cols` entries by construction
fn pivot(t: &mut [Vec<f64>], obj: &mut [f64], row: usize, col: usize, basis: &mut [usize]) {
    let cols = t[row].len();
    let p = t[row][col];
    for j in 0..cols {
        t[row][j] /= p;
    }
    for i in 0..t.len() {
        if i != row && t[i][col].abs() > EPS {
            let f = t[i][col];
            for j in 0..cols {
                t[i][j] -= f * t[row][j];
            }
        }
    }
    if obj[col].abs() > EPS {
        let f = obj[col];
        for j in 0..cols {
            obj[j] -= f * t[row][j];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_single_variable() {
        // min 3x s.t. x = 2 → 6.
        let sol = solve_min(&[3.0], &[vec![1.0]], &[2.0]).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_picks_cheapest() {
        // min c·λ s.t. λ1 + λ2 = 1: picks the cheaper endpoint.
        let sol = solve_min(&[5.0, 2.0], &[vec![1.0, 1.0]], &[1.0]).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composition_constrained_mixture() {
        // Phases: A (x=0, E=0), B (x=1, E=0), AB (x=0.5, E=-1).
        // Target x = 0.25 → 0.5·A + 0.5·AB → E = -0.5.
        let c = vec![0.0, 0.0, -1.0];
        let a = vec![
            vec![0.0, 1.0, 0.5], // composition coordinate
            vec![1.0, 1.0, 1.0], // normalization
        ];
        let sol = solve_min(&c, &a, &[0.25, 1.0]).unwrap();
        assert!((sol.objective + 0.5).abs() < 1e-9, "{}", sol.objective);
    }

    #[test]
    fn infeasible_detected() {
        // x = 1 and x = 2 simultaneously.
        assert!(solve_min(&[1.0], &[vec![1.0], vec![1.0]], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. -x = -3 → x = 3.
        let sol = solve_min(&[1.0], &[vec![-1.0]], &[-3.0]).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_redundant_constraint() {
        // Two identical constraints.
        let sol = solve_min(&[1.0, 1.0], &[vec![1.0, 1.0], vec![1.0, 1.0]], &[1.0, 1.0]).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_random_feasibility() {
        // min Σ xi over a stochastic-matrix-like system stays bounded.
        let a = vec![vec![0.2, 0.5, 0.1, 0.9], vec![1.0, 1.0, 1.0, 1.0]];
        let sol = solve_min(&[1.0, 1.0, 1.0, 1.0], &a, &[0.4, 1.0]).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-6);
        // Solution satisfies constraints.
        let x = &sol.x;
        let c0: f64 = a[0].iter().zip(x).map(|(ai, xi)| ai * xi).sum();
        assert!((c0 - 0.4).abs() < 1e-7);
    }
}
