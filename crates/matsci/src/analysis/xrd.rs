//! Powder X-ray diffraction patterns.
//!
//! The web UI visualizes "diffraction patterns" (§III-D1) and the
//! datastore keeps a collection of them (§III-B3). Patterns are computed
//! the textbook way: enumerate Miller indices, Bragg's law for 2θ from
//! the d-spacing, kinematic structure factor with atomic scattering
//! amplitude approximated by Z, and a Lorentz-polarization correction.

use crate::structure::Structure;
use serde::{Deserialize, Serialize};

/// Cu Kα wavelength (Å), the standard lab source.
pub const CU_KA: f64 = 1.54056;

/// One diffraction peak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Scattering angle 2θ (degrees).
    pub two_theta: f64,
    /// Interplanar spacing (Å).
    pub d: f64,
    /// Relative intensity, normalized to 100 for the strongest peak.
    pub intensity: f64,
    /// A representative (hkl) for the peak.
    pub hkl: (i32, i32, i32),
}

/// A full powder pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XrdPattern {
    /// Wavelength used (Å).
    pub wavelength: f64,
    /// Peaks ordered by 2θ.
    pub peaks: Vec<Peak>,
}

/// Compute the powder pattern of `s` for wavelength `lambda` up to
/// `two_theta_max` degrees.
pub fn compute_pattern(s: &Structure, lambda: f64, two_theta_max: f64) -> XrdPattern {
    let rec = s.lattice.reciprocal();
    let d_min = lambda / (2.0 * (two_theta_max.to_radians() / 2.0).sin());
    // Conservative index bound from the shortest reciprocal vector.
    let max_idx = {
        let ls = s.lattice.lengths();
        let longest = ls.iter().cloned().fold(0.0f64, f64::max);
        ((longest / d_min).ceil() as i32).clamp(1, 12)
    };

    // Accumulate peaks, merging reflections at the same 2θ (powder rings).
    // (two_theta, d, intensity, hkl)
    type RawPeak = (f64, f64, f64, (i32, i32, i32));
    let mut raw: Vec<RawPeak> = Vec::new();
    for h in -max_idx..=max_idx {
        for k in -max_idx..=max_idx {
            for l in -max_idx..=max_idx {
                if h == 0 && k == 0 && l == 0 {
                    continue;
                }
                let g = rec.to_cartesian(&[h as f64, k as f64, l as f64]);
                let gn = crate::lattice::norm(&g);
                let d = 1.0 / gn;
                if d < d_min {
                    continue;
                }
                let sin_theta = lambda / (2.0 * d);
                if sin_theta > 1.0 {
                    continue;
                }
                let theta = sin_theta.asin();
                let two_theta = 2.0 * theta.to_degrees();
                // Structure factor F = Σ f_j exp(2πi (h·r_j)).
                let (mut re, mut im) = (0.0f64, 0.0f64);
                for site in &s.sites {
                    let phase = 2.0
                        * std::f64::consts::PI
                        * (h as f64 * site.frac[0]
                            + k as f64 * site.frac[1]
                            + l as f64 * site.frac[2]);
                    // Angle-dependent form factor: f ≈ Z·exp(-B s²) with
                    // s = sinθ/λ and a universal B, a standard
                    // approximation for relative intensities.
                    let sf = site.element.z() as f64 * (-1.5 * (sin_theta / lambda).powi(2)).exp();
                    re += sf * phase.cos();
                    im += sf * phase.sin();
                }
                let f2 = re * re + im * im;
                if f2 < 1e-8 {
                    continue;
                }
                // Lorentz-polarization factor.
                let lp =
                    (1.0 + (2.0 * theta).cos().powi(2)) / ((theta).sin().powi(2) * (theta).cos());
                raw.push((two_theta, d, f2 * lp, (h, k, l)));
            }
        }
    }
    raw.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite angles"));
    let mut peaks: Vec<Peak> = Vec::new();
    for (tt, d, i, hkl) in raw {
        match peaks.last_mut() {
            Some(p) if (p.two_theta - tt).abs() < 0.05 => {
                p.intensity += i;
            }
            _ => peaks.push(Peak {
                two_theta: tt,
                d,
                intensity: i,
                hkl,
            }),
        }
    }
    let max_i = peaks.iter().map(|p| p.intensity).fold(0.0f64, f64::max);
    if max_i > 0.0 {
        for p in &mut peaks {
            p.intensity = 100.0 * p.intensity / max_i;
        }
    }
    // Drop numerical dust.
    peaks.retain(|p| p.intensity > 0.1);
    XrdPattern {
        wavelength: lambda,
        peaks,
    }
}

impl XrdPattern {
    /// The strongest peak.
    pub fn strongest(&self) -> Option<&Peak> {
        self.peaks
            .iter()
            .max_by(|a, b| a.intensity.partial_cmp(&b.intensity).expect("finite"))
    }

    /// Serialize to a datastore document.
    pub fn to_doc(&self, material_id: &str) -> serde_json::Value {
        serde_json::json!({
            "material_id": material_id,
            "wavelength": self.wavelength,
            "npeaks": self.peaks.len(),
            "peaks": self.peaks.iter().map(|p| serde_json::json!({
                "two_theta": p.two_theta,
                "d": p.d,
                "intensity": p.intensity,
                "hkl": [p.hkl.0, p.hkl.1, p.hkl.2],
            })).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::prototypes;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn nacl_peak_positions() {
        // NaCl a = 5.64 Å: (111) at 2θ ≈ 27.4°, (200) ≈ 31.7°, (220) ≈ 45.5°.
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let s = Structure {
            lattice: crate::lattice::Lattice::cubic(5.64),
            sites: s.sites,
        };
        let pat = compute_pattern(&s, CU_KA, 60.0);
        assert!(!pat.peaks.is_empty());
        let has_peak_near = |tt: f64| pat.peaks.iter().any(|p| (p.two_theta - tt).abs() < 0.3);
        assert!(
            has_peak_near(31.7),
            "missing (200): {:?}",
            pat.peaks.iter().map(|p| p.two_theta).collect::<Vec<_>>()
        );
        assert!(has_peak_near(45.5), "missing (220)");
    }

    #[test]
    fn fcc_extinction_rules() {
        // FCC: reflections with mixed-parity hkl are extinct; for rocksalt
        // with near-equal Z this strongly suppresses (100).
        let s = prototypes::fcc(el("Cu"));
        let pat = compute_pattern(&s, CU_KA, 90.0);
        let a = s.lattice.lengths()[0];
        // (100) would be at d = a.
        let d100 = a;
        let tt100 = 2.0 * (CU_KA / (2.0 * d100)).asin().to_degrees();
        assert!(
            !pat.peaks.iter().any(|p| (p.two_theta - tt100).abs() < 0.2),
            "(100) should be extinct for FCC"
        );
    }

    #[test]
    fn intensities_normalized() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let pat = compute_pattern(&s, CU_KA, 80.0);
        let max = pat.strongest().unwrap().intensity;
        assert!((max - 100.0).abs() < 1e-9);
        assert!(pat.peaks.iter().all(|p| p.intensity <= 100.0 + 1e-9));
    }

    #[test]
    fn peaks_sorted_by_angle() {
        let s = prototypes::perovskite(el("Sr"), el("Ti"), el("O"));
        let pat = compute_pattern(&s, CU_KA, 90.0);
        assert!(pat
            .peaks
            .windows(2)
            .all(|w| w[0].two_theta <= w[1].two_theta));
    }

    #[test]
    fn different_structures_different_patterns() {
        let p1 = compute_pattern(&prototypes::rocksalt(el("Na"), el("Cl")), CU_KA, 60.0);
        let p2 = compute_pattern(&prototypes::zincblende(el("Zn"), el("S")), CU_KA, 60.0);
        let a1: Vec<i64> = p1
            .peaks
            .iter()
            .map(|p| (p.two_theta * 10.0) as i64)
            .collect();
        let a2: Vec<i64> = p2
            .peaks
            .iter()
            .map(|p| (p.two_theta * 10.0) as i64)
            .collect();
        assert_ne!(a1, a2);
    }

    #[test]
    fn doc_export() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let d = compute_pattern(&s, CU_KA, 60.0).to_doc("mp-1");
        assert_eq!(d["material_id"], "mp-1");
        assert!(d["npeaks"].as_u64().unwrap() > 0);
    }
}
