//! Phase diagrams: convex-hull stability analysis over a chemical system.
//!
//! Given computed total energies for a set of phases, the phase diagram
//! answers the screening questions of §III-B3: which phases are
//! thermodynamically stable, how far above the hull is each metastable
//! phase (`e_above_hull`), and what does an unstable phase decompose
//! into. The hull is evaluated exactly with a small LP (see
//! [`super::simplex`]), valid in any number of components.

use crate::analysis::simplex::solve_min;
use crate::composition::Composition;
use crate::element::Element;
use serde::{Deserialize, Serialize};

/// One phase entry: a composition with a computed energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdEntry {
    /// Identifier (usually the task or material id).
    pub id: String,
    /// Phase composition.
    pub composition: Composition,
    /// Total energy per atom (eV/atom).
    pub energy_per_atom: f64,
}

impl PdEntry {
    /// Construct an entry.
    pub fn new(id: impl Into<String>, composition: Composition, energy_per_atom: f64) -> Self {
        PdEntry {
            id: id.into(),
            composition,
            energy_per_atom,
        }
    }
}

/// A constructed phase diagram over a fixed element set.
#[derive(Debug, Clone)]
pub struct PhaseDiagram {
    /// Elements spanning the diagram, in atomic-number order.
    pub elements: Vec<Element>,
    /// All entries.
    pub entries: Vec<PdEntry>,
    /// Elemental reference energies (eV/atom) by element.
    refs: Vec<(Element, f64)>,
}

/// Result of a decomposition query.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Energy above hull (eV/atom); 0 for stable phases.
    pub e_above_hull: f64,
    /// Decomposition products as (entry id, mixing fraction by atom).
    pub products: Vec<(String, f64)>,
}

impl PhaseDiagram {
    /// Build a diagram from entries. The element set is the union of all
    /// entry compositions; every element must have at least one
    /// single-element entry to act as its reference.
    pub fn new(entries: Vec<PdEntry>) -> Result<PhaseDiagram, String> {
        let mut elements: Vec<Element> = Vec::new();
        for e in &entries {
            for el in e.composition.elements() {
                if !elements.contains(&el) {
                    elements.push(el);
                }
            }
        }
        elements.sort();
        let mut refs = Vec::with_capacity(elements.len());
        for &el in &elements {
            let best = entries
                .iter()
                .filter(|e| e.composition.num_elements() == 1 && e.composition.amount(el) > 0.0)
                .map(|e| e.energy_per_atom)
                .fold(f64::INFINITY, f64::min);
            if best.is_infinite() {
                return Err(format!("no elemental reference entry for {}", el.symbol()));
            }
            refs.push((el, best));
        }
        Ok(PhaseDiagram {
            elements,
            entries,
            refs,
        })
    }

    /// Formation energy per atom of a composition+energy relative to the
    /// elemental references (eV/atom).
    pub fn formation_energy_per_atom(&self, comp: &Composition, energy_per_atom: f64) -> f64 {
        let n = comp.num_atoms();
        if n == 0.0 {
            return 0.0;
        }
        let ref_energy: f64 = self
            .refs
            .iter()
            .map(|(el, e)| comp.amount(*el) * e)
            .sum::<f64>()
            / n;
        energy_per_atom - ref_energy
    }

    /// Hull energy (eV/atom) at `comp`: the lowest energy attainable by
    /// any mixture of entries with that composition. `exclude` removes
    /// one entry id from the candidate set (used for `e_above_hull` of a
    /// hull member itself).
    pub fn hull_energy(&self, comp: &Composition, exclude: Option<&str>) -> Option<f64> {
        let candidates: Vec<&PdEntry> = self
            .entries
            .iter()
            .filter(|e| Some(e.id.as_str()) != exclude)
            .filter(|e| {
                e.composition
                    .elements()
                    .iter()
                    .all(|el| self.elements.contains(el))
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Variables: per-candidate atom fraction λi of the mixture.
        // Constraints: for each element, Σ λi · x_i(el) = x(el); Σ λi = 1.
        let n = candidates.len();
        let c: Vec<f64> = candidates.iter().map(|e| e.energy_per_atom).collect();
        let mut a: Vec<Vec<f64>> = Vec::with_capacity(self.elements.len() + 1);
        let mut b: Vec<f64> = Vec::with_capacity(self.elements.len() + 1);
        for &el in &self.elements {
            a.push(
                candidates
                    .iter()
                    .map(|e| e.composition.fraction(el))
                    .collect(),
            );
            b.push(comp.fraction(el));
        }
        a.push(vec![1.0; n]);
        b.push(1.0);
        solve_min(&c, &a, &b).map(|s| s.objective)
    }

    /// Energy above hull for entry `idx` (eV/atom). Stable phases → ~0;
    /// out-of-range ids → 0.
    pub fn e_above_hull(&self, idx: usize) -> f64 {
        let Some(e) = self.entries.get(idx) else {
            return 0.0;
        };
        // Hull without this entry (so stable entries get their distance to
        // the *rest* — 0 only if degenerate); Materials Project convention
        // instead keeps the entry in and reports max(E - hull, 0).
        match self.hull_energy(&e.composition, None) {
            Some(h) => (e.energy_per_atom - h).max(0.0),
            None => 0.0,
        }
    }

    /// Ids of the stable entries (on the hull within `tol` eV/atom).
    pub fn stable_entries(&self, tol: f64) -> Vec<&PdEntry> {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.e_above_hull(i) <= tol)
            .map(|(_, e)| e)
            .collect()
    }

    /// Decomposition of entry `idx`: hull distance plus the phases it
    /// decomposes into (itself, if stable).
    pub fn decomposition(&self, idx: usize) -> Decomposition {
        let e = &self.entries[idx];
        let candidates: Vec<&PdEntry> = self.entries.iter().collect();
        let n = candidates.len();
        let c: Vec<f64> = candidates.iter().map(|x| x.energy_per_atom).collect();
        let mut a = Vec::with_capacity(self.elements.len() + 1);
        let mut b = Vec::with_capacity(self.elements.len() + 1);
        for &el in &self.elements {
            a.push(
                candidates
                    .iter()
                    .map(|x| x.composition.fraction(el))
                    .collect::<Vec<f64>>(),
            );
            b.push(e.composition.fraction(el));
        }
        a.push(vec![1.0; n]);
        b.push(1.0);
        match solve_min(&c, &a, &b) {
            Some(sol) => {
                let products: Vec<(String, f64)> = sol
                    .x
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l > 1e-6)
                    .map(|(i, &l)| (candidates[i].id.clone(), l))
                    .collect();
                Decomposition {
                    e_above_hull: (e.energy_per_atom - sol.objective).max(0.0),
                    products,
                }
            }
            None => Decomposition {
                e_above_hull: 0.0,
                products: vec![(e.id.clone(), 1.0)],
            },
        }
    }

    /// Grand-potential-style hull energy at a composition when one
    /// element's chemical potential is fixed — the quantity battery
    /// voltage calculations need. Returns energy per atom *of the frame*
    /// (the non-`open_el` atoms).
    pub fn hull_energy_open(&self, comp: &Composition, open_el: Element, mu: f64) -> Option<f64> {
        let h = self.hull_energy(comp, None)?;
        let n = comp.num_atoms();
        let n_open = comp.amount(open_el);
        let n_frame = n - n_open;
        if n_frame <= 0.0 {
            return None;
        }
        Some((h * n - mu * n_open) / n_frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(f: &str) -> Composition {
        Composition::parse(f).unwrap()
    }

    /// A hand-constructed Li-O system:
    /// Li (0.0), O (0.0), Li2O (-2.0 eV/atom), LiO2 metastable (-0.5).
    fn li_o_entries() -> Vec<PdEntry> {
        vec![
            PdEntry::new("Li", comp("Li"), 0.0),
            PdEntry::new("O", comp("O"), 0.0),
            PdEntry::new("Li2O", comp("Li2O"), -2.0),
            PdEntry::new("LiO2", comp("LiO2"), -0.5),
        ]
    }

    #[test]
    fn references_required() {
        let err = PhaseDiagram::new(vec![PdEntry::new("Li2O", comp("Li2O"), -2.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn stable_set() {
        let pd = PhaseDiagram::new(li_o_entries()).unwrap();
        let stable: Vec<&str> = pd
            .stable_entries(1e-8)
            .iter()
            .map(|e| e.id.as_str())
            .collect();
        assert!(stable.contains(&"Li"));
        assert!(stable.contains(&"O"));
        assert!(stable.contains(&"Li2O"));
        assert!(!stable.contains(&"LiO2"));
    }

    #[test]
    fn e_above_hull_values() {
        let pd = PhaseDiagram::new(li_o_entries()).unwrap();
        // Li2O on hull.
        let i_li2o = 2;
        assert!(pd.e_above_hull(i_li2o) < 1e-9);
        // LiO2 at x_O = 2/3: hull is the Li2O—O tieline.
        // Li2O at x_O = 1/3 E=-2; O at x_O=1 E=0 → at 2/3: -2 * (1-2/3)/(2/3)... compute:
        // linear interp on x_O: E(x) = -2 + (x - 1/3) * (0 - (-2))/(1 - 1/3)
        //                    = -2 + (2/3 - 1/3) * 3 = -1.
        let i_lio2 = 3;
        let eah = pd.e_above_hull(i_lio2);
        assert!((eah - 0.5).abs() < 1e-6, "{eah}");
    }

    #[test]
    fn formation_energy() {
        let pd = PhaseDiagram::new(li_o_entries()).unwrap();
        let ef = pd.formation_energy_per_atom(&comp("Li2O"), -2.0);
        assert!((ef + 2.0).abs() < 1e-9);
        // With non-zero references.
        let entries = vec![
            PdEntry::new("Li", comp("Li"), -1.0),
            PdEntry::new("O", comp("O"), -4.0),
            PdEntry::new("Li2O", comp("Li2O"), -5.0),
        ];
        let pd = PhaseDiagram::new(entries).unwrap();
        // ref at Li2O = (2·(-1) + 1·(-4))/3 = -2 → Ef = -3.
        let ef = pd.formation_energy_per_atom(&comp("Li2O"), -5.0);
        assert!((ef + 3.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_of_metastable() {
        let pd = PhaseDiagram::new(li_o_entries()).unwrap();
        let d = pd.decomposition(3); // LiO2
        assert!((d.e_above_hull - 0.5).abs() < 1e-6);
        let ids: Vec<&str> = d.products.iter().map(|(id, _)| id.as_str()).collect();
        assert!(ids.contains(&"Li2O"));
        assert!(ids.contains(&"O"));
        let total: f64 = d.products.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn decomposition_of_stable_is_itself() {
        let pd = PhaseDiagram::new(li_o_entries()).unwrap();
        let d = pd.decomposition(2); // Li2O
        assert!(d.e_above_hull < 1e-9);
        // The LP may return the phase itself or a degenerate equal-energy
        // mixture; the energy criterion is the invariant.
    }

    #[test]
    fn ternary_system() {
        // Li-Fe-O with one ternary stable phase.
        let entries = vec![
            PdEntry::new("Li", comp("Li"), 0.0),
            PdEntry::new("Fe", comp("Fe"), 0.0),
            PdEntry::new("O", comp("O"), 0.0),
            PdEntry::new("Li2O", comp("Li2O"), -2.0),
            PdEntry::new("Fe2O3", comp("Fe2O3"), -1.7),
            PdEntry::new("LiFeO2", comp("LiFeO2"), -2.1),
            PdEntry::new("bad", comp("Li2FeO3"), -1.0),
        ];
        let pd = PhaseDiagram::new(entries).unwrap();
        let stable: Vec<&str> = pd
            .stable_entries(1e-8)
            .iter()
            .map(|e| e.id.as_str())
            .collect();
        assert!(stable.contains(&"LiFeO2"), "{stable:?}");
        assert!(!stable.contains(&"bad"));
        let d = pd.decomposition(6);
        assert!(d.e_above_hull > 0.1, "{}", d.e_above_hull);
    }

    #[test]
    fn hull_at_arbitrary_composition() {
        let pd = PhaseDiagram::new(li_o_entries()).unwrap();
        // Midpoint Li—Li2O on the hull: x_O = 1/6 → E = -1.
        let h = pd.hull_energy(&comp("Li4O"), None).unwrap();
        let expected = -2.0 * (1.0 / 5.0) / (1.0 / 3.0); // fraction along the tieline
        assert!((h - expected).abs() < 1e-6, "h={h} expected={expected}");
    }
}
