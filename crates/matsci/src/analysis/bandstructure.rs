//! Electronic band structures (synthetic model).
//!
//! The paper's datastore holds "3,000 bandstructures" that the web UI
//! renders interactively. Real band structures come from the DFT code;
//! our substitute generates physically-shaped bands from a deterministic
//! tight-binding-flavoured model whose band gap follows the classic
//! electronegativity-difference correlation (more ionic → wider gap),
//! so metals, semiconductors and insulators appear in sensible places.

use crate::composition::Composition;
use crate::structure::Structure;
use serde::{Deserialize, Serialize};

/// A labelled point on the k-path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KPoint {
    /// Symmetry label (Γ, X, M, R...).
    pub label: String,
    /// Fractional reciprocal coordinates.
    pub frac: [f64; 3],
}

/// A computed band structure along a k-path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandStructure {
    /// Path vertices.
    pub kpath: Vec<KPoint>,
    /// Sample count between consecutive vertices.
    pub samples_per_segment: usize,
    /// `bands[b][k]` = energy of band `b` at sample `k` (eV, E_F = 0).
    pub bands: Vec<Vec<f64>>,
    /// Band gap (eV); 0 for metals.
    pub band_gap: f64,
    /// Gap is direct?
    pub is_direct: bool,
}

/// The standard cubic k-path Γ–X–M–Γ–R.
pub fn cubic_kpath() -> Vec<KPoint> {
    vec![
        KPoint {
            label: "Γ".into(),
            frac: [0.0, 0.0, 0.0],
        },
        KPoint {
            label: "X".into(),
            frac: [0.5, 0.0, 0.0],
        },
        KPoint {
            label: "M".into(),
            frac: [0.5, 0.5, 0.0],
        },
        KPoint {
            label: "Γ".into(),
            frac: [0.0, 0.0, 0.0],
        },
        KPoint {
            label: "R".into(),
            frac: [0.5, 0.5, 0.5],
        },
    ]
}

/// Estimate a band gap (eV) from composition chemistry: ionic compounds
/// (large electronegativity spread) get wide gaps; metallic compositions
/// get zero.
pub fn estimate_band_gap(comp: &Composition) -> f64 {
    let els = comp.elements();
    if els.is_empty() {
        return 0.0;
    }
    let chis: Vec<f64> = els.iter().map(|e| e.electronegativity()).collect();
    let max = chis.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = chis.iter().cloned().fold(f64::INFINITY, f64::min);
    let spread = max - min;
    // Pure metals / intermetallics: gap 0. Ionic: up to ~9 eV (LiF-like).
    if spread < 0.9 {
        return 0.0;
    }
    // Quadratic rise with spread, modulated by anion presence.
    let anionic = els.iter().any(|e| e.is_anion_former());
    let base = 1.1 * (spread - 0.9).powi(2) + 0.4 * (spread - 0.9);
    if anionic {
        (base * 2.2).min(9.5)
    } else {
        (base * 0.8).min(4.0)
    }
}

/// Deterministic per-structure phase offset so different compounds get
/// visibly different (but reproducible) band shapes.
fn structure_seed(s: &Structure) -> f64 {
    let mut h = 0u64;
    for b in s.formula().bytes() {
        h = h.wrapping_mul(31).wrapping_add(b as u64);
    }
    h = h.wrapping_add((s.lattice.volume() * 100.0) as u64);
    (h % 1000) as f64 / 1000.0
}

/// Compute a synthetic band structure for `s` with `nbands` bands and
/// `samples_per_segment` k-samples per path segment.
pub fn compute_bands(s: &Structure, nbands: usize, samples_per_segment: usize) -> BandStructure {
    let comp = s.composition();
    let gap = estimate_band_gap(&comp);
    let kpath = cubic_kpath();
    let phase = structure_seed(s) * std::f64::consts::PI;
    let nseg = kpath.len() - 1;
    let nk = nseg * samples_per_segment;
    let width = 2.0 + 4.0 / (1.0 + s.volume_per_atom() / 10.0); // bandwidth narrows with volume

    let nval = nbands / 2;
    let mut bands = Vec::with_capacity(nbands);
    for b in 0..nbands {
        let mut band = Vec::with_capacity(nk);
        let is_valence = b < nval;
        // Band centers: insulators stack away from E_F on both sides of
        // the gap; metals overlap the Fermi level (partially filled
        // bands cross E = 0).
        let offset = if gap == 0.0 {
            (b as f64 - (nbands as f64 - 1.0) / 2.0) * 0.5
        } else if is_valence {
            -(gap / 2.0) - (nval - b) as f64 * 0.9
        } else {
            (gap / 2.0) + (b - nval) as f64 * 0.9
        };
        for (seg, w) in kpath.windows(2).enumerate() {
            for i in 0..samples_per_segment {
                let t = i as f64 / samples_per_segment as f64;
                let k = [
                    w[0].frac[0] + t * (w[1].frac[0] - w[0].frac[0]),
                    w[0].frac[1] + t * (w[1].frac[1] - w[0].frac[1]),
                    w[0].frac[2] + t * (w[1].frac[2] - w[0].frac[2]),
                ];
                // Tight-binding cosine dispersion with a per-band phase.
                let disp = (2.0 * std::f64::consts::PI * k[0] + phase + b as f64).cos()
                    + (2.0 * std::f64::consts::PI * k[1] + 0.7 * phase).cos()
                    + (2.0 * std::f64::consts::PI * k[2] + 1.3 * phase + seg as f64 * 0.1).cos();
                // Dispersion amplitude shrinks near the gap edges so the
                // gap estimate is respected; metals disperse through E_F.
                let amp = width / 6.0;
                let e = if gap == 0.0 {
                    offset + amp * disp / 2.0
                } else if is_valence {
                    offset - amp * (disp + 3.0) / 2.0
                } else {
                    offset + amp * (disp + 3.0) / 2.0
                };
                band.push(e);
            }
        }
        bands.push(band);
    }

    // Measure the actual gap between highest valence and lowest conduction.
    let vbm_band = &bands[nval.saturating_sub(1)];
    let cbm_band = &bands[nval.min(nbands - 1)];
    let (mut vbm, mut vbm_k) = (f64::NEG_INFINITY, 0usize);
    let (mut cbm, mut cbm_k) = (f64::INFINITY, 0usize);
    for (i, &e) in vbm_band.iter().enumerate() {
        if e > vbm {
            vbm = e;
            vbm_k = i;
        }
    }
    for (i, &e) in cbm_band.iter().enumerate() {
        if e < cbm {
            cbm = e;
            cbm_k = i;
        }
    }
    let measured_gap = (cbm - vbm).max(0.0);
    BandStructure {
        kpath,
        samples_per_segment,
        bands,
        band_gap: if gap == 0.0 { 0.0 } else { measured_gap },
        is_direct: vbm_k == cbm_k,
    }
}

impl BandStructure {
    /// Is this a metal (zero gap)?
    pub fn is_metal(&self) -> bool {
        self.band_gap <= 1e-9
    }

    /// Serialize to a datastore document (band data included, which makes
    /// these the *large* documents of the `bandstructures` collection).
    pub fn to_doc(&self, material_id: &str) -> serde_json::Value {
        serde_json::json!({
            "material_id": material_id,
            "band_gap": self.band_gap,
            "is_direct": self.is_direct,
            "is_metal": self.is_metal(),
            "nbands": self.bands.len(),
            "kpath": self.kpath.iter().map(|k| serde_json::json!({
                "label": k.label, "frac": k.frac,
            })).collect::<Vec<_>>(),
            "bands": self.bands,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::prototypes;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn metals_have_zero_gap() {
        let cu = prototypes::fcc(el("Cu"));
        let bs = compute_bands(&cu, 8, 20);
        assert!(bs.is_metal());
    }

    #[test]
    fn ionic_compounds_have_gaps() {
        let nacl = prototypes::rocksalt(el("Na"), el("Cl"));
        let bs = compute_bands(&nacl, 8, 20);
        assert!(bs.band_gap > 1.0, "NaCl gap {}", bs.band_gap);

        let lif = prototypes::rocksalt(el("Li"), el("F"));
        let bs_lif = compute_bands(&lif, 8, 20);
        // LiF is more ionic than NaCl... both large; LiF among the largest.
        assert!(bs_lif.band_gap > 3.0, "LiF gap {}", bs_lif.band_gap);
    }

    #[test]
    fn gap_estimate_monotone_in_ionicity() {
        let g_metal = estimate_band_gap(&Composition::parse("FeNi").unwrap());
        let g_semi = estimate_band_gap(&Composition::parse("GaAs").unwrap());
        let g_ionic = estimate_band_gap(&Composition::parse("LiF").unwrap());
        assert_eq!(g_metal, 0.0);
        assert!(g_semi < g_ionic);
    }

    #[test]
    fn band_count_and_length() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let bs = compute_bands(&s, 10, 15);
        assert_eq!(bs.bands.len(), 10);
        let nk = (bs.kpath.len() - 1) * bs.samples_per_segment;
        assert!(bs.bands.iter().all(|b| b.len() == nk));
    }

    #[test]
    fn deterministic() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let a = compute_bands(&s, 8, 10);
        let b = compute_bands(&s, 8, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn valence_below_conduction() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let bs = compute_bands(&s, 8, 10);
        let vmax = bs.bands[3]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let cmin = bs.bands[4].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(vmax <= cmin + 1e-9);
    }

    #[test]
    fn doc_export() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let d = compute_bands(&s, 8, 10).to_doc("mp-7");
        assert_eq!(d["material_id"], "mp-7");
        assert!(d["bands"].as_array().unwrap().len() == 8);
    }
}

/// A density of states: energies and per-energy state density, computed
/// from the band energies with Gaussian smearing — the other spectrum
/// the web UI plots alongside the band structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityOfStates {
    /// Energy grid (eV, E_F = 0).
    pub energies: Vec<f64>,
    /// States per eV per cell at each grid energy.
    pub densities: Vec<f64>,
    /// Smearing width used (eV).
    pub sigma: f64,
}

impl BandStructure {
    /// Compute the DOS on `npoints` energies spanning the band range,
    /// with Gaussian smearing `sigma` (eV).
    pub fn dos(&self, npoints: usize, sigma: f64) -> DensityOfStates {
        let npoints = npoints.max(2);
        let mut emin = f64::INFINITY;
        let mut emax = f64::NEG_INFINITY;
        for band in &self.bands {
            for &e in band {
                emin = emin.min(e);
                emax = emax.max(e);
            }
        }
        if !emin.is_finite() {
            return DensityOfStates {
                energies: vec![],
                densities: vec![],
                sigma,
            };
        }
        let (emin, emax) = (emin - 4.0 * sigma, emax + 4.0 * sigma);
        let de = (emax - emin) / (npoints - 1) as f64;
        let energies: Vec<f64> = (0..npoints).map(|i| emin + de * i as f64).collect();
        let norm = 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
        let nk: f64 = self.bands.first().map(|b| b.len() as f64).unwrap_or(1.0);
        let mut densities = vec![0.0f64; npoints];
        for band in &self.bands {
            for &ek in band {
                // Only grid points within 5σ contribute measurably.
                let lo = (((ek - 5.0 * sigma) - emin) / de).floor().max(0.0) as usize;
                let hi = ((((ek + 5.0 * sigma) - emin) / de).ceil() as usize).min(npoints - 1);
                for i in lo..=hi {
                    let x = (energies[i] - ek) / sigma;
                    densities[i] += norm * (-0.5 * x * x).exp() / nk;
                }
            }
        }
        DensityOfStates {
            energies,
            densities,
            sigma,
        }
    }
}

impl DensityOfStates {
    /// Integrated states over the whole grid (≈ number of bands).
    pub fn integrated(&self) -> f64 {
        if self.energies.len() < 2 {
            return 0.0;
        }
        let de = self.energies[1] - self.energies[0];
        self.densities.iter().sum::<f64>() * de
    }

    /// DOS at the Fermi level (E = 0); ~0 for insulators.
    pub fn at_fermi(&self) -> f64 {
        let mut best = f64::INFINITY;
        let mut val = 0.0;
        for (e, d) in self.energies.iter().zip(&self.densities) {
            if e.abs() < best {
                best = e.abs();
                val = *d;
            }
        }
        val
    }

    /// Serialize to a datastore document.
    pub fn to_doc(&self, material_id: &str) -> serde_json::Value {
        serde_json::json!({
            "material_id": material_id,
            "sigma": self.sigma,
            "npoints": self.energies.len(),
            "energies": self.energies,
            "densities": self.densities,
        })
    }
}

#[cfg(test)]
mod dos_tests {
    use super::*;
    use crate::element::Element;
    use crate::prototypes;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn integrated_dos_counts_bands() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let bs = compute_bands(&s, 8, 20);
        let dos = bs.dos(400, 0.1);
        // ∫DOS dE = number of bands (each band contributes 1 state/cell).
        assert!((dos.integrated() - 8.0).abs() < 0.2, "{}", dos.integrated());
    }

    #[test]
    fn insulator_has_gap_in_dos() {
        let s = prototypes::rocksalt(el("Li"), el("F"));
        let bs = compute_bands(&s, 8, 20);
        assert!(!bs.is_metal());
        let dos = bs.dos(500, 0.05);
        assert!(dos.at_fermi() < 0.05, "DOS at E_F = {}", dos.at_fermi());
    }

    #[test]
    fn metal_has_states_at_fermi() {
        let s = prototypes::fcc(el("Cu"));
        let bs = compute_bands(&s, 8, 20);
        assert!(bs.is_metal());
        let dos = bs.dos(500, 0.1);
        assert!(dos.at_fermi() > 0.05, "DOS at E_F = {}", dos.at_fermi());
    }

    #[test]
    fn empty_bands_degenerate() {
        let bs = BandStructure {
            kpath: cubic_kpath(),
            samples_per_segment: 0,
            bands: vec![],
            band_gap: 0.0,
            is_direct: false,
        };
        let dos = bs.dos(100, 0.1);
        assert!(dos.energies.is_empty());
        assert_eq!(dos.integrated(), 0.0);
    }

    #[test]
    fn doc_export() {
        let s = prototypes::rocksalt(el("Na"), el("Cl"));
        let dos = compute_bands(&s, 6, 10).dos(50, 0.2);
        let d = dos.to_doc("mp-9");
        assert_eq!(d["npoints"], 50);
        assert_eq!(d["material_id"], "mp-9");
    }
}
