//! Property-based tests for the materials-science invariants.

use mp_matsci::analysis::phase_diagram::{PdEntry, PhaseDiagram};
use mp_matsci::{Composition, Element, Lattice, Structure};
use proptest::prelude::*;

fn element() -> impl Strategy<Value = Element> {
    (1u8..=94).prop_map(Element)
}

fn small_formula() -> impl Strategy<Value = Composition> {
    prop::collection::btree_map(element(), 1u8..9, 1..4)
        .prop_map(|m| Composition::from_pairs(m.into_iter().map(|(e, n)| (e, n as f64))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Formula string → parse → same composition.
    #[test]
    fn formula_roundtrip(comp in small_formula()) {
        let formula = comp.reduced_formula();
        let parsed = Composition::parse(&formula).unwrap();
        let (ra, _) = comp.reduced_amounts();
        let (rb, _) = parsed.reduced_amounts();
        prop_assert_eq!(ra, rb, "formula {}", formula);
    }

    /// Atomic fractions always sum to 1.
    #[test]
    fn fractions_sum_to_one(comp in small_formula()) {
        let total: f64 = comp.elements().iter().map(|&e| comp.fraction(e)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Weight and electron count are positive and scale-invariant under
    /// reduction.
    #[test]
    fn weight_positive(comp in small_formula()) {
        prop_assert!(comp.weight() > 0.0);
        prop_assert!(comp.num_electrons() > 0.0);
    }

    /// Lattice from parameters reproduces its own parameters.
    #[test]
    fn lattice_parameter_roundtrip(
        a in 2.0f64..15.0, b in 2.0f64..15.0, c in 2.0f64..15.0,
        al in 50.0f64..130.0, be in 50.0f64..130.0, ga in 50.0f64..130.0,
    ) {
        // Skip geometrically impossible angle triples.
        let sum_ok = al + be + ga < 355.0
            && al + be - ga > 5.0 && al - be + ga > 5.0 && -al + be + ga > 5.0;
        prop_assume!(sum_ok);
        let l = Lattice::from_parameters(a, b, c, al, be, ga);
        prop_assume!(l.volume() > 1.0);
        let [la, lb, lc] = l.lengths();
        prop_assert!((la - a).abs() < 1e-6);
        prop_assert!((lb - b).abs() < 1e-6);
        prop_assert!((lc - c).abs() < 1e-6);
        let [ra, rb, rc] = l.angles();
        prop_assert!((ra - al).abs() < 1e-4, "alpha {ra} vs {al}");
        prop_assert!((rb - be).abs() < 1e-4);
        prop_assert!((rc - ga).abs() < 1e-4);
    }

    /// Cartesian ↔ fractional conversion is a bijection.
    #[test]
    fn coordinate_roundtrip(
        a in 2.0f64..12.0, c in 2.0f64..12.0,
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, fz in 0.0f64..1.0,
    ) {
        let l = Lattice::hexagonal(a, c);
        let cart = l.to_cartesian(&[fx, fy, fz]);
        let back = l.to_fractional(&cart);
        prop_assert!((back[0] - fx).abs() < 1e-9);
        prop_assert!((back[1] - fy).abs() < 1e-9);
        prop_assert!((back[2] - fz).abs() < 1e-9);
    }

    /// PBC distance is symmetric and bounded by half the cell diagonal.
    #[test]
    fn pbc_distance_symmetric(
        a in 3.0f64..12.0,
        p in prop::array::uniform3(0.0f64..1.0),
        q in prop::array::uniform3(0.0f64..1.0),
    ) {
        let l = Lattice::cubic(a);
        let d1 = l.pbc_distance(&p, &q);
        let d2 = l.pbc_distance(&q, &p);
        prop_assert!((d1 - d2).abs() < 1e-9);
        // Minimum image in a cube: each component ≤ a/2.
        prop_assert!(d1 <= a * 3f64.sqrt() / 2.0 + 1e-9);
    }

    /// Supercells preserve density and multiply site counts.
    #[test]
    fn supercell_invariants(na in 1usize..3, nb in 1usize..3, nc in 1usize..3) {
        let s = mp_matsci::prototypes::rocksalt(
            Element::from_symbol("Na").unwrap(),
            Element::from_symbol("Cl").unwrap(),
        );
        let sc = s.supercell(na, nb, nc);
        prop_assert_eq!(sc.num_sites(), s.num_sites() * na * nb * nc);
        prop_assert!((sc.density() - s.density()).abs() < 1e-9);
        prop_assert_eq!(sc.formula(), s.formula());
    }

    /// Structure JSON round-trip.
    #[test]
    fn structure_serde_roundtrip(seed in 0u64..500) {
        let mut gen = mp_matsci::IcsdGenerator::new(seed);
        let s = gen.next_structure();
        let j = serde_json::to_string(&s).unwrap();
        let back: Structure = serde_json::from_str(&j).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Hull energy at any entry's composition is ≤ that entry's energy
    /// (the hull is a lower bound), and e_above_hull is never negative.
    #[test]
    fn hull_lower_bounds_entries(energies in prop::collection::vec(-5.0f64..0.0, 3..10)) {
        let li = Element::from_symbol("Li").unwrap();
        let o = Element::from_symbol("O").unwrap();
        let mut entries = vec![
            PdEntry::new("Li", Composition::from_pairs([(li, 1.0)]), 0.0),
            PdEntry::new("O", Composition::from_pairs([(o, 1.0)]), 0.0),
        ];
        for (i, e) in energies.iter().enumerate() {
            let x = (i + 1) as f64;
            entries.push(PdEntry::new(
                format!("c{i}"),
                Composition::from_pairs([(li, x), (o, 2.0)]),
                *e,
            ));
        }
        let pd = PhaseDiagram::new(entries).unwrap();
        for i in 0..pd.entries.len() {
            let e = &pd.entries[i];
            let hull = pd.hull_energy(&e.composition, None).unwrap();
            prop_assert!(hull <= e.energy_per_atom + 1e-7,
                "hull {hull} above entry {}", e.energy_per_atom);
            prop_assert!(pd.e_above_hull(i) >= -1e-9);
        }
    }

}
