//! The web portal (§III-D1).
//!
//! "We have built a rich, interactive web portal focusing on the
//! scientist as the end-user. Our interface uses technologies like
//! HTML5 and AJAX to allow users to search and browse MP data and pan
//! and zoom real-time visualizations of bandstructures, diffraction
//! patterns, and other properties."
//!
//! This module is the server side of that portal: HTML pages for search
//! and material detail, inline SVG renderings of band structures and
//! powder XRD patterns, and an aggregation-backed statistics dashboard.
//! (The pan/zoom JS is the browser's job; the paper's contribution we
//! reproduce is serving the data-driven views from the datastore.)

use crate::queryengine::QueryEngine;
use mp_docstore::Result;
use serde_json::{json, Value};

/// Escape text for HTML interpolation.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>{} — Materials Project</title></head>\n\
         <body>\n<header><h1>Materials Project</h1></header>\n{}\n\
         <footer>Data computed by high-throughput DFT; see the Materials API \
         at /rest/v1/.</footer>\n</body></html>",
        esc(title),
        body
    )
}

/// The portal renderer.
pub struct WebUi<'a> {
    qe: &'a QueryEngine,
}

impl<'a> WebUi<'a> {
    /// Portal over a query engine (all reads are sanitized/aliased).
    pub fn new(qe: &'a QueryEngine) -> Self {
        WebUi { qe }
    }

    /// Search results page for a (sanitized) criteria document.
    pub fn search_page(&self, criteria: &Value, limit: usize) -> Result<String> {
        let hits = self.qe.query("materials", criteria, &[], Some(limit))?;
        let mut rows = String::new();
        for m in &hits {
            rows.push_str(&format!(
                "<tr><td><a href=\"/materials/{id}\">{id}</a></td>\
                 <td>{formula}</td><td>{sys}</td><td>{gap:.2}</td><td>{epa:.3}</td></tr>\n",
                id = esc(m["_id"].as_str().unwrap_or("?")),
                formula = esc(m["formula"].as_str().unwrap_or("?")),
                sys = esc(m["chemsys"].as_str().unwrap_or("?")),
                gap = m["output"]["band_gap"].as_f64().unwrap_or(0.0),
                epa = m["output"]["energy_per_atom"].as_f64().unwrap_or(0.0),
            ));
        }
        let body = format!(
            "<h2>Search results ({n})</h2>\n\
             <table><thead><tr><th>id</th><th>formula</th><th>system</th>\
             <th>gap (eV)</th><th>E/atom (eV)</th></tr></thead>\n\
             <tbody>\n{rows}</tbody></table>",
            n = hits.len(),
        );
        Ok(page("Search", &body))
    }

    /// Material detail page with inline property visualizations.
    pub fn material_page(&self, material_id: &str) -> Result<Option<String>> {
        let found = self
            .qe
            .query("materials", &json!({"_id": material_id}), &[], Some(1))?;
        let Some(m) = found.first() else {
            return Ok(None);
        };
        let mut body = format!(
            "<h2>{formula} <small>({id})</small></h2>\n<dl>\
             <dt>Chemical system</dt><dd>{sys}</dd>\
             <dt>Energy per atom</dt><dd>{epa:.4} eV</dd>\
             <dt>Band gap</dt><dd>{gap:.2} eV</dd>\
             <dt>Formation energy</dt><dd>{ef:.4} eV/atom</dd>\
             <dt>E above hull</dt><dd>{hull:.4} eV/atom</dd>\
             <dt>Stable</dt><dd>{stable}</dd></dl>\n",
            formula = esc(m["formula"].as_str().unwrap_or("?")),
            id = esc(material_id),
            sys = esc(m["chemsys"].as_str().unwrap_or("?")),
            epa = m["output"]["energy_per_atom"].as_f64().unwrap_or(0.0),
            gap = m["output"]["band_gap"].as_f64().unwrap_or(0.0),
            ef = m["stability"]["formation_energy_per_atom"]
                .as_f64()
                .unwrap_or(0.0),
            hull = m["stability"]["e_above_hull"].as_f64().unwrap_or(0.0),
            stable = m["stability"]["is_stable"].as_bool().unwrap_or(false),
        );

        // Band structure panel.
        let bs = self.qe.query(
            "bandstructures",
            &json!({"material_id": material_id}),
            &[],
            Some(1),
        )?;
        if let Some(b) = bs.first() {
            body.push_str("<h3>Band structure</h3>\n");
            body.push_str(&render_bands_svg(b, 480, 240));
        }

        // DOS panel.
        let dos = self
            .qe
            .query("dos", &json!({"material_id": material_id}), &[], Some(1))?;
        if let Some(d) = dos.first() {
            body.push_str("<h3>Density of states</h3>\n");
            body.push_str(&render_dos_svg(d, 480, 140));
        }

        // XRD panel.
        let xrd = self.qe.query(
            "xrd_patterns",
            &json!({"material_id": material_id}),
            &[],
            Some(1),
        )?;
        if let Some(p) = xrd.first() {
            body.push_str("<h3>Powder XRD (Cu Kα)</h3>\n");
            body.push_str(&render_xrd_svg(p, 480, 180));
        }

        Ok(Some(page(
            m["formula"].as_str().unwrap_or("material"),
            &body,
        )))
    }

    /// Statistics dashboard: element prevalence, gap distribution, and
    /// stability counts, computed with aggregation pipelines.
    pub fn stats_page(&self) -> Result<String> {
        // All three pipelines go through the QueryEngine so the $match
        // stage (and any future user-tunable one) crosses the sanitizer
        // rather than reaching the collection directly.
        let by_element = self.qe.aggregate(
            "materials",
            &json!([
                {"$unwind": "$elements"},
                {"$group": {"_id": "$elements", "n": {"$sum": 1}}},
                {"$sort": {"n": -1, "_id": 1}},
                {"$limit": 12},
            ]),
        )?;
        let stable = self.qe.aggregate(
            "materials",
            &json!([
                {"$match": {"stability.is_stable": true}},
                {"$count": "n"},
            ]),
        )?;
        let n_stable = stable.first().and_then(|v| v["n"].as_u64()).unwrap_or(0);
        let gap_stats = self.qe.aggregate(
            "materials",
            &json!([
                {"$group": {"_id": null,
                             "metals": {"$sum": 1},
                             "avg_gap": {"$avg": "$output.band_gap"},
                             "max_gap": {"$max": "$output.band_gap"}}},
            ]),
        )?;

        let mut bars = String::new();
        let max_n = by_element
            .first()
            .and_then(|r| r["n"].as_u64())
            .unwrap_or(1)
            .max(1);
        for row in &by_element {
            let n = row["n"].as_u64().unwrap_or(0);
            let w = (n * 300 / max_n).max(2);
            bars.push_str(&format!(
                "<div>{el}: <svg width=\"310\" height=\"12\">\
                 <rect width=\"{w}\" height=\"12\" fill=\"#4682b4\"/></svg> {n}</div>\n",
                el = esc(row["_id"].as_str().unwrap_or("?")),
            ));
        }
        let body = format!(
            "<h2>Database statistics</h2>\
             <p>{total} materials; {n_stable} thermodynamically stable; \
             mean band gap {avg:.2} eV (max {max:.2}).</p>\
             <h3>Most common elements</h3>\n{bars}",
            total = self.qe.count("materials", &json!({}))?,
            avg = gap_stats
                .first()
                .and_then(|g| g["avg_gap"].as_f64())
                .unwrap_or(0.0),
            max = gap_stats
                .first()
                .and_then(|g| g["max_gap"].as_f64())
                .unwrap_or(0.0),
        );
        Ok(page("Statistics", &body))
    }
}

/// Render a band-structure document as an inline SVG: one polyline per
/// band along the k-path, the Fermi level dashed at E = 0.
pub fn render_bands_svg(bs_doc: &Value, width: u32, height: u32) -> String {
    let Some(bands) = bs_doc["bands"].as_array() else {
        return String::new();
    };
    // Energy window.
    let mut emin = f64::INFINITY;
    let mut emax = f64::NEG_INFINITY;
    for band in bands {
        for e in band.as_array().into_iter().flatten() {
            if let Some(x) = e.as_f64() {
                emin = emin.min(x);
                emax = emax.max(x);
            }
        }
    }
    if !emin.is_finite() || emax <= emin {
        return String::new();
    }
    let pad = 0.5;
    let (emin, emax) = (emin - pad, emax + pad);
    let y_of = |e: f64| height as f64 * (1.0 - (e - emin) / (emax - emin));

    let mut svg = format!(
        "<svg class=\"bands\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n"
    );
    // Fermi level.
    let yf = y_of(0.0);
    svg.push_str(&format!(
        "<line x1=\"0\" y1=\"{yf:.1}\" x2=\"{width}\" y2=\"{yf:.1}\" \
         stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n"
    ));
    for band in bands {
        let Some(es) = band.as_array() else { continue };
        if es.len() < 2 {
            continue;
        }
        let mut points = String::new();
        for (i, e) in es.iter().enumerate() {
            let x = width as f64 * i as f64 / (es.len() - 1) as f64;
            let y = y_of(e.as_f64().unwrap_or(0.0));
            points.push_str(&format!("{x:.1},{y:.1} "));
        }
        svg.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"#b22222\" stroke-width=\"1\" \
             points=\"{}\"/>\n",
            points.trim_end()
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Render a density-of-states document as a filled SVG curve with the
/// Fermi level marked.
pub fn render_dos_svg(dos_doc: &Value, width: u32, height: u32) -> String {
    let (Some(energies), Some(densities)) = (
        dos_doc["energies"].as_array(),
        dos_doc["densities"].as_array(),
    ) else {
        return String::new();
    };
    if energies.len() < 2 || energies.len() != densities.len() {
        return String::new();
    }
    let es: Vec<f64> = energies.iter().filter_map(Value::as_f64).collect();
    let ds: Vec<f64> = densities.iter().filter_map(Value::as_f64).collect();
    // `filter_map` drops non-numeric entries, so the length checks on
    // the raw arrays do not carry over to `es`/`ds`.
    if es.len() < 2 || es.len() != ds.len() {
        return String::new();
    }
    let (Some(&emin), Some(&emax)) = (es.first(), es.last()) else {
        return String::new();
    };
    if emax <= emin {
        return String::new();
    }
    let dmax = ds.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    let px = |e: f64| (e - emin) / (emax - emin) * width as f64;
    let py = |d: f64| height as f64 * (1.0 - d / dmax);
    let mut pts = format!("{:.1},{} ", px(emin), height);
    for (e, d) in es.iter().zip(&ds) {
        pts.push_str(&format!("{:.1},{:.1} ", px(*e), py(*d)));
    }
    pts.push_str(&format!("{:.1},{}", px(emax), height));
    let xf = px(0.0);
    format!(
        "<svg class=\"dos\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n\
         <polygon fill=\"#c9dcf0\" stroke=\"#4682b4\" points=\"{pts}\"/>\n\
         <line x1=\"{xf:.1}\" y1=\"0\" x2=\"{xf:.1}\" y2=\"{height}\" \
         stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n</svg>\n"
    )
}

/// Render a powder-XRD document as an inline SVG stick pattern.
pub fn render_xrd_svg(xrd_doc: &Value, width: u32, height: u32) -> String {
    let Some(peaks) = xrd_doc["peaks"].as_array() else {
        return String::new();
    };
    let tt_max = 90.0;
    let mut svg = format!(
        "<svg class=\"xrd\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n\
         <line x1=\"0\" y1=\"{h}\" x2=\"{width}\" y2=\"{h}\" stroke=\"#333\"/>\n",
        h = height - 1
    );
    for p in peaks {
        let tt = p["two_theta"].as_f64().unwrap_or(0.0);
        let inten = p["intensity"].as_f64().unwrap_or(0.0);
        let x = width as f64 * tt / tt_max;
        let y_top = height as f64 * (1.0 - inten / 100.0);
        svg.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{y_top:.1}\" \
             stroke=\"#1f6f43\" stroke-width=\"1.5\"/>\n",
            height as f64 - 1.0
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_docstore::Database;

    fn engine() -> QueryEngine {
        let db = Database::new();
        db.collection("materials")
            .insert_many(vec![
                json!({"_id": "mp-1", "formula": "LiCoO2", "chemsys": "Co-Li-O",
                       "elements": ["Li", "Co", "O"],
                       "output": {"band_gap": 2.7, "energy_per_atom": -5.7},
                       "stability": {"is_stable": true, "e_above_hull": 0.0,
                                      "formation_energy_per_atom": -1.9}}),
                json!({"_id": "mp-2", "formula": "Fe2O3", "chemsys": "Fe-O",
                       "elements": ["Fe", "O"],
                       "output": {"band_gap": 2.0, "energy_per_atom": -6.7},
                       "stability": {"is_stable": false, "e_above_hull": 0.02,
                                      "formation_energy_per_atom": -1.2}}),
            ])
            .unwrap();
        db.collection("bandstructures")
            .insert_one(json!({"material_id": "mp-1",
                                "bands": [[-3.0, -2.5, -2.8], [1.2, 1.6, 1.4]]}))
            .unwrap();
        db.collection("xrd_patterns")
            .insert_one(json!({"material_id": "mp-1",
                                "peaks": [{"two_theta": 19.0, "intensity": 100.0},
                                           {"two_theta": 45.2, "intensity": 40.0}]}))
            .unwrap();
        QueryEngine::new(db)
    }

    #[test]
    fn search_page_lists_hits() {
        let qe = engine();
        let ui = WebUi::new(&qe);
        let html = ui.search_page(&json!({"elements": "O"}), 50).unwrap();
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(html.contains("LiCoO2"));
        assert!(html.contains("Fe2O3"));
        assert!(html.contains("Search results (2)"));
    }

    #[test]
    fn search_uses_sanitizer() {
        let qe = engine();
        let ui = WebUi::new(&qe);
        assert!(ui.search_page(&json!({"$where": "x"}), 10).is_err());
    }

    #[test]
    fn material_page_embeds_visualizations() {
        let qe = engine();
        let ui = WebUi::new(&qe);
        let html = ui.material_page("mp-1").unwrap().unwrap();
        assert!(html.contains("LiCoO2"));
        assert!(html.contains("Band structure"));
        assert!(html.contains("class=\"bands\""));
        assert!(html.contains("polyline"));
        assert!(html.contains("Powder XRD"));
        assert!(html.contains("class=\"xrd\""));
        // Stability panel.
        assert!(html.contains("E above hull"));
    }

    #[test]
    fn missing_material_is_none() {
        let qe = engine();
        let ui = WebUi::new(&qe);
        assert!(ui.material_page("mp-404").unwrap().is_none());
    }

    #[test]
    fn material_without_spectra_renders_without_panels() {
        let qe = engine();
        let ui = WebUi::new(&qe);
        let html = ui.material_page("mp-2").unwrap().unwrap();
        assert!(html.contains("Fe2O3"));
        assert!(!html.contains("class=\"bands\""));
    }

    #[test]
    fn stats_page_aggregates() {
        let qe = engine();
        let ui = WebUi::new(&qe);
        let html = ui.stats_page().unwrap();
        assert!(html.contains("2 materials"));
        assert!(html.contains("1 thermodynamically stable"));
        assert!(html.contains("O:"), "element bars present");
    }

    #[test]
    fn dos_svg_renders_curve_and_fermi() {
        let svg = render_dos_svg(
            &json!({"energies": [-2.0, -1.0, 0.0, 1.0, 2.0],
                     "densities": [1.0, 2.0, 0.0, 0.5, 1.5]}),
            200,
            100,
        );
        assert!(svg.contains("polygon"));
        assert!(svg.contains("stroke-dasharray"), "Fermi line present");
        // Fermi level at E=0 is the midpoint of [-2, 2].
        assert!(svg.contains("x1=\"100.0\""));
    }

    #[test]
    fn dos_svg_degenerate() {
        assert_eq!(render_dos_svg(&json!({}), 100, 50), "");
        assert_eq!(
            render_dos_svg(&json!({"energies": [1.0], "densities": [1.0]}), 100, 50),
            ""
        );
    }

    #[test]
    fn html_escaping() {
        assert_eq!(
            esc("<Fe2O3 & \"friends\">"),
            "&lt;Fe2O3 &amp; &quot;friends&quot;&gt;"
        );
    }

    #[test]
    fn bands_svg_handles_degenerate_input() {
        assert_eq!(render_bands_svg(&json!({}), 100, 100), "");
        assert_eq!(render_bands_svg(&json!({"bands": []}), 100, 100), "");
    }

    #[test]
    fn xrd_svg_scales_peaks() {
        let svg = render_xrd_svg(
            &json!({"peaks": [{"two_theta": 45.0, "intensity": 100.0}]}),
            200,
            100,
        );
        // A full-intensity peak reaches the top of the plot.
        assert!(svg.contains("y2=\"0.0\""));
        assert!(svg.contains("x1=\"100.0\""));
    }
}

/// Render a binary phase diagram as SVG: formation energy per atom vs
/// composition fraction, stable entries joined by the hull line — the
/// third interactive visualization of the §III-D1 portal.
pub fn render_binary_hull_svg(
    pd: &mp_matsci::PhaseDiagram,
    width: u32,
    height: u32,
) -> Option<String> {
    let (base_el, x_el) = match pd.elements[..] {
        [a, b] => (a, b),
        _ => return None,
    };
    // (x fraction of second element, formation energy, stable?, label)
    let mut points: Vec<(f64, f64, bool, String)> = Vec::new();
    for (i, e) in pd.entries.iter().enumerate() {
        let x = e.composition.fraction(x_el);
        let ef = pd.formation_energy_per_atom(&e.composition, e.energy_per_atom);
        let stable = pd.e_above_hull(i) < 1e-6;
        points.push((x, ef, stable, e.composition.reduced_formula()));
    }
    let emin = points.iter().map(|p| p.1).fold(0.0f64, f64::min);
    let e_lo = emin.min(-0.1) * 1.15;
    let e_hi = 0.25f64;
    let px = |x: f64| 40.0 + x * (width as f64 - 60.0);
    let py = |e: f64| (e - e_hi) / (e_lo - e_hi) * (height as f64 - 30.0) + 10.0;

    let mut svg = format!(
        "<svg class=\"hull\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\n\
         <line x1=\"{x0}\" y1=\"{y0:.1}\" x2=\"{x1}\" y2=\"{y0:.1}\" stroke=\"#999\"/>\n",
        x0 = px(0.0),
        x1 = px(1.0),
        y0 = py(0.0),
    );
    // Hull line through the stable points, in x order.
    let mut stable: Vec<&(f64, f64, bool, String)> = points.iter().filter(|p| p.2).collect();
    stable.sort_by(|a, b| a.0.total_cmp(&b.0));
    let path: Vec<String> = stable
        .iter()
        .map(|p| format!("{:.1},{:.1}", px(p.0), py(p.1)))
        .collect();
    if path.len() >= 2 {
        svg.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"#1f6f43\" stroke-width=\"1.5\" points=\"{}\"/>\n",
            path.join(" ")
        ));
    }
    for (x, ef, is_stable, label) in &points {
        let (fill, r) = if *is_stable {
            ("#1f6f43", 4.0)
        } else {
            ("#b22222", 3.0)
        };
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{r}\" fill=\"{fill}\">\
             <title>{}</title></circle>\n",
            px(*x),
            py(*ef),
            esc(label),
        ));
    }
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n\
         <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n</svg>\n",
        px(0.0) - 10.0,
        height - 2,
        esc(base_el.symbol()),
        px(1.0) - 10.0,
        height - 2,
        esc(x_el.symbol()),
    ));
    Some(svg)
}

impl WebUi<'_> {
    /// Phase-diagram page for a binary chemical system: builds the
    /// diagram from the live `materials` collection (plus elemental
    /// references from the same collection) and renders the hull.
    pub fn phase_diagram_page(&self, chemsys: &str) -> Result<Option<String>> {
        let parts: Vec<&str> = chemsys.split('-').collect();
        if parts.len() != 2 {
            return Ok(None);
        }
        let docs = self.qe.query(
            "materials",
            &serde_json::json!({"nelements": {"$lte": 2}}),
            &["formula", "energy_per_atom", "elements"],
            None,
        )?;
        let mut entries = Vec::new();
        for d in &docs {
            let Some(formula) = d["formula"].as_str() else {
                continue;
            };
            let Ok(comp) = mp_matsci::Composition::parse(formula) else {
                continue;
            };
            let inside = comp.elements().iter().all(|e| parts.contains(&e.symbol()));
            if !inside {
                continue;
            }
            let Some(epa) = d["output"]["energy_per_atom"].as_f64() else {
                continue;
            };
            entries.push(mp_matsci::PdEntry::new(
                d["_id"].as_str().unwrap_or(formula),
                comp,
                epa,
            ));
        }
        let Ok(pd) = mp_matsci::PhaseDiagram::new(entries) else {
            return Ok(None);
        };
        let Some(svg) = render_binary_hull_svg(&pd, 520, 260) else {
            return Ok(None);
        };
        let stable: Vec<String> = pd
            .stable_entries(1e-6)
            .iter()
            .map(|e| e.composition.reduced_formula())
            .collect();
        let body = format!(
            "<h2>Phase diagram: {}</h2>\n{}\n<p>Stable phases: {}</p>",
            esc(chemsys),
            svg,
            esc(&stable.join(", "))
        );
        Ok(Some(page(&format!("{chemsys} phase diagram"), &body)))
    }
}

#[cfg(test)]
mod hull_tests {
    use super::*;
    use mp_docstore::Database;
    use serde_json::json;

    #[test]
    fn binary_hull_page_renders() {
        let db = Database::new();
        db.collection("materials")
            .insert_many(vec![
                json!({"_id": "m-li", "formula": "Li", "elements": ["Li"], "nelements": 1,
                       "output": {"energy_per_atom": -1.6}}),
                json!({"_id": "m-o", "formula": "O", "elements": ["O"], "nelements": 1,
                       "output": {"energy_per_atom": -2.6}}),
                json!({"_id": "m-li2o", "formula": "Li2O", "elements": ["Li", "O"], "nelements": 2,
                       "output": {"energy_per_atom": -4.5}}),
                json!({"_id": "m-lio2", "formula": "LiO2", "elements": ["Li", "O"], "nelements": 2,
                       "output": {"energy_per_atom": -2.4}}),
            ])
            .unwrap();
        let qe = QueryEngine::new(db);
        let ui = WebUi::new(&qe);
        let html = ui.phase_diagram_page("Li-O").unwrap().unwrap();
        assert!(html.contains("class=\"hull\""));
        assert!(html.contains("Stable phases"));
        assert!(html.contains("Li2O"));
        // Both endpoints labelled.
        assert!(html.contains(">Li</text>"));
        assert!(html.contains(">O</text>"));
    }

    #[test]
    fn ternary_system_declined() {
        let db = Database::new();
        let qe = QueryEngine::new(db);
        let ui = WebUi::new(&qe);
        assert!(ui.phase_diagram_page("Co-Li-O").unwrap().is_none());
        assert!(ui.phase_diagram_page("Li").unwrap().is_none());
    }

    #[test]
    fn hull_svg_marks_stability() {
        use mp_matsci::{Composition, Element, PdEntry, PhaseDiagram};
        let li = Element::from_symbol("Li").unwrap();
        let o = Element::from_symbol("O").unwrap();
        let pd = PhaseDiagram::new(vec![
            PdEntry::new("Li", Composition::from_pairs([(li, 1.0)]), 0.0),
            PdEntry::new("O", Composition::from_pairs([(o, 1.0)]), 0.0),
            PdEntry::new("Li2O", Composition::parse("Li2O").unwrap(), -2.0),
            PdEntry::new("LiO2", Composition::parse("LiO2").unwrap(), -0.4),
        ])
        .unwrap();
        let svg = render_binary_hull_svg(&pd, 400, 200).unwrap();
        // Stable (green) and unstable (red) markers both present.
        assert!(svg.contains("#1f6f43"));
        assert!(svg.contains("#b22222"));
        assert!(svg.contains("<title>Li2O</title>"));
    }
}
