//! User sandboxes (§III-A, Fig. 3 step (d)).
//!
//! "The resulting data can be uploaded to a user-controlled area called
//! a sandbox, which is only visible to the creator and selected
//! collaborators. ... At any point (e.g., after a publication or a
//! patent filing), the user can allow the data to become publicly
//! disseminated." The paper lists this as the envisioned next step; we
//! implement it as documents carrying `owner` / `collaborators` /
//! `is_public` fields filtered through [`crate::auth::visibility_filter`].

use crate::auth::visibility_filter;
use mp_docstore::{Database, Docs, Result, StoreError};
use serde_json::{json, Value};

/// Sandbox operations over the shared datastore.
pub struct Sandbox<'a> {
    db: &'a Database,
}

impl<'a> Sandbox<'a> {
    /// Wrap a database.
    pub fn new(db: &'a Database) -> Self {
        Sandbox { db }
    }

    /// Upload a record into the owner's sandbox (private by default).
    // mp-lint: allow(E002) — sandbox uploads are pre-publication scratch
    // space; publish() exports into the curated store, which is where the
    // journal-coverage contract applies.
    pub fn upload(&self, owner: &str, mut doc: Value) -> Result<Value> {
        let obj = doc
            .as_object_mut()
            .ok_or_else(|| StoreError::InvalidDocument("sandbox record must be object".into()))?;
        obj.insert("owner".into(), json!(owner));
        obj.insert("is_public".into(), json!(false));
        obj.entry("collaborators").or_insert(json!([]));
        self.db.collection("sandbox").insert_one(doc)
    }

    /// Reject non-scalar record ids before they are interpolated into a
    /// filter. Without this, a caller-supplied object like
    /// `{"$ne": null}` would become an operator inside the
    /// `{"_id": …, "owner": …}` filter and match *every* record the
    /// owner has — turning `share`/`publish` into bulk operations on
    /// documents the caller never named.
    pub fn scalar_only(record_id: &Value) -> Result<&Value> {
        match record_id {
            Value::String(_) | Value::Number(_) => Ok(record_id),
            other => Err(StoreError::BadQuery(format!(
                "record id must be a scalar, got {other}"
            ))),
        }
    }

    /// Share a record with a collaborator.
    // mp-lint: allow(E002) — sandbox ACL edits stay in pre-publication
    // scratch space (same contract as upload); publish() exports into the
    // curated store, which is where journal coverage applies.
    pub fn share(&self, owner: &str, record_id: &Value, collaborator: &str) -> Result<bool> {
        let id = Self::scalar_only(record_id)?;
        let r = self.db.collection("sandbox").update_one(
            &json!({"_id": id, "owner": owner}),
            &json!({"$addToSet": {"collaborators": collaborator}}),
        )?;
        Ok(r.matched == 1)
    }

    /// Publish: flip the record public (Fig. 3 step (f)). Only the
    /// owner may do this.
    // mp-lint: allow(E002) — the public/private flip mutates only the
    // sandbox record's visibility flag, still scratch-space state; losing
    // it on crash re-hides the record, never loses curated data.
    pub fn publish(&self, owner: &str, record_id: &Value) -> Result<bool> {
        let id = Self::scalar_only(record_id)?;
        let r = self.db.collection("sandbox").update_one(
            &json!({"_id": id, "owner": owner}),
            &json!({"$set": {"is_public": true}}),
        )?;
        Ok(r.matched == 1)
    }

    /// Everything `viewer` may see (None = anonymous public view).
    pub fn visible_to(&self, viewer: Option<&str>) -> Result<Docs> {
        self.db
            .collection("sandbox")
            .find(&visibility_filter(viewer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_by_default() {
        let db = Database::new();
        let sb = Sandbox::new(&db);
        let id = sb.upload("alice@x", json!({"formula": "LiNiO2"})).unwrap();
        assert!(sb.visible_to(None).unwrap().is_empty());
        assert_eq!(sb.visible_to(Some("alice@x")).unwrap().len(), 1);
        assert!(sb.visible_to(Some("bob@x")).unwrap().is_empty());
        let _ = id;
    }

    #[test]
    fn share_grants_collaborator_access() {
        let db = Database::new();
        let sb = Sandbox::new(&db);
        let id = sb.upload("alice@x", json!({"formula": "LiNiO2"})).unwrap();
        assert!(sb.share("alice@x", &id, "bob@x").unwrap());
        assert_eq!(sb.visible_to(Some("bob@x")).unwrap().len(), 1);
        assert!(sb.visible_to(Some("carol@x")).unwrap().is_empty());
    }

    #[test]
    fn only_owner_can_share_or_publish() {
        let db = Database::new();
        let sb = Sandbox::new(&db);
        let id = sb.upload("alice@x", json!({"d": 1})).unwrap();
        assert!(!sb.share("mallory@x", &id, "mallory@x").unwrap());
        assert!(!sb.publish("mallory@x", &id).unwrap());
        assert!(sb.visible_to(None).unwrap().is_empty());
    }

    #[test]
    fn operator_injection_in_record_id_rejected() {
        let db = Database::new();
        let sb = Sandbox::new(&db);
        sb.upload("alice@x", json!({"d": 1})).unwrap();
        sb.upload("alice@x", json!({"d": 2})).unwrap();
        // `{"$ne": null}` as a record id would match every record the
        // owner has; it must be rejected before reaching the filter.
        let inj = json!({"$ne": null});
        assert!(sb.publish("alice@x", &inj).is_err());
        assert!(sb.share("alice@x", &inj, "mallory@x").is_err());
        assert!(sb.visible_to(None).unwrap().is_empty(), "nothing published");
        assert!(sb.visible_to(Some("mallory@x")).unwrap().is_empty());
    }

    #[test]
    fn publish_makes_public() {
        let db = Database::new();
        let sb = Sandbox::new(&db);
        let id = sb.upload("alice@x", json!({"d": 1})).unwrap();
        assert!(sb.publish("alice@x", &id).unwrap());
        assert_eq!(sb.visible_to(None).unwrap().len(), 1);
        assert_eq!(sb.visible_to(Some("anyone@x")).unwrap().len(), 1);
    }
}
