//! Per-user rate limiting (§IV-D1): "we also implement checks to limit
//! the number of queries from a given user to prevent denial-of-service
//! or data scraping attacks."
//!
//! Token-bucket per API key, driven by an explicit clock so tests and
//! simulations are deterministic.

use mp_sync::{LockRank, OrderedMutex};
use std::collections::HashMap;

/// Token-bucket configuration.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Bucket capacity (burst size).
    pub burst: f64,
    /// Refill rate, tokens per second.
    pub per_second: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        // Generous interactive use; hostile scraping throttled.
        RateLimitConfig {
            burst: 30.0,
            per_second: 5.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill: f64,
}

/// Deterministic-clock token-bucket limiter keyed by API key.
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: OrderedMutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// New limiter.
    pub fn new(config: RateLimitConfig) -> Self {
        RateLimiter {
            config,
            buckets: OrderedMutex::new(LockRank::RateLimit, HashMap::new()),
        }
    }

    /// Try to spend one token for `key` at time `now` (seconds).
    /// Returns true when the request is admitted.
    pub fn admit(&self, key: &str, now: f64) -> bool {
        let mut buckets = self.buckets.lock();
        let b = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: self.config.burst,
            last_refill: now,
        });
        let dt = (now - b.last_refill).max(0.0);
        b.tokens = (b.tokens + dt * self.config.per_second).min(self.config.burst);
        b.last_refill = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Remaining tokens for a key (for `X-RateLimit-Remaining` headers).
    pub fn remaining(&self, key: &str, now: f64) -> f64 {
        let mut buckets = self.buckets.lock();
        match buckets.get_mut(key) {
            None => self.config.burst,
            Some(b) => {
                let dt = (now - b.last_refill).max(0.0);
                (b.tokens + dt * self.config.per_second).min(self.config.burst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(burst: f64, rate: f64) -> RateLimiter {
        RateLimiter::new(RateLimitConfig {
            burst,
            per_second: rate,
        })
    }

    #[test]
    fn burst_then_throttle() {
        let rl = limiter(3.0, 1.0);
        assert!(rl.admit("k", 0.0));
        assert!(rl.admit("k", 0.0));
        assert!(rl.admit("k", 0.0));
        assert!(!rl.admit("k", 0.0), "burst exhausted");
    }

    #[test]
    fn refills_over_time() {
        let rl = limiter(2.0, 1.0);
        assert!(rl.admit("k", 0.0));
        assert!(rl.admit("k", 0.0));
        assert!(!rl.admit("k", 0.1));
        assert!(rl.admit("k", 1.2), "one token refilled after ~1 s");
    }

    #[test]
    fn keys_are_independent() {
        let rl = limiter(1.0, 0.1);
        assert!(rl.admit("a", 0.0));
        assert!(!rl.admit("a", 0.0));
        assert!(rl.admit("b", 0.0), "different key has its own bucket");
    }

    #[test]
    fn refill_caps_at_burst() {
        let rl = limiter(2.0, 100.0);
        assert!(rl.admit("k", 0.0));
        // Long idle: tokens cap at burst, not unbounded.
        assert!((rl.remaining("k", 1000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scraper_throughput_bounded() {
        // A scraper hammering every 10 ms gets ~rate requests/second.
        let rl = limiter(5.0, 2.0);
        let mut admitted = 0;
        let mut t = 0.0;
        while t < 60.0 {
            if rl.admit("scraper", t) {
                admitted += 1;
            }
            t += 0.01;
        }
        // 5 burst + 120 refill ≈ 125.
        assert!((120..=130).contains(&admitted), "{admitted}");
    }
}
