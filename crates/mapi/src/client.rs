//! The analytics client (§III-D3).
//!
//! "The pymatgen library can import and export data from a number of
//! existing formats, including fetching data via the Materials API.
//! This provides a natural and powerful interface for jointly analyzing
//! local and remote data." This module is that client: a typed wrapper
//! over [`crate::MaterialsApi`] that fetches structures, entries, and
//! spectra ready for the analysis tools — pymatgen's `MPRester`.

use crate::rest::{ApiRequest, MaterialsApi};
use mp_matsci::analysis::phase_diagram::PdEntry;
use mp_matsci::{Composition, Structure};
use serde_json::{json, Value};

/// Client-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Non-200 API response.
    Api {
        /// HTTP-style status.
        status: u16,
        /// Server-provided message.
        message: String,
    },
    /// Response payload didn't parse into the requested type.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Api { status, message } => write!(f, "API {status}: {message}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
        }
    }
}
impl std::error::Error for ClientError {}

/// A typed Materials API client (the `MPRester` analogue).
pub struct MpClient<'a> {
    api: &'a MaterialsApi,
    api_key: Option<String>,
    /// Simulated request clock; advances per call so rate limiting
    /// behaves as it would for a paced script.
    now: std::cell::Cell<f64>,
}

impl<'a> MpClient<'a> {
    /// Anonymous client.
    pub fn new(api: &'a MaterialsApi) -> Self {
        MpClient {
            api,
            api_key: None,
            now: std::cell::Cell::new(0.0),
        }
    }

    /// Authenticated client.
    pub fn with_key(api: &'a MaterialsApi, key: &str) -> Self {
        MpClient {
            api,
            api_key: Some(key.to_string()),
            now: std::cell::Cell::new(0.0),
        }
    }

    fn request(&self, path: &str) -> ApiRequest {
        let t = self.now.get() + 1.0;
        self.now.set(t);
        let mut r = ApiRequest::get(path).at(t);
        if let Some(k) = &self.api_key {
            r = r.with_key(k);
        }
        r
    }

    fn expect_ok(resp: crate::rest::ApiResponse) -> Result<Value, ClientError> {
        if resp.status != 200 {
            return Err(ClientError::Api {
                status: resp.status,
                message: resp.body["error"].as_str().unwrap_or("unknown").to_string(),
            });
        }
        Ok(resp.payload().clone())
    }

    /// Fetch the full materials documents for an identifier (mp-id,
    /// formula, or chemical system).
    pub fn get_materials(&self, identifier: &str) -> Result<Vec<Value>, ClientError> {
        let resp = self
            .api
            .handle(&self.request(&format!("/rest/v1/materials/{identifier}")));
        let payload = Self::expect_ok(resp)?;
        payload
            .as_array()
            .cloned()
            .ok_or_else(|| ClientError::Malformed("expected array payload".into()))
    }

    /// Fetch one material's structure, ready for local analysis.
    pub fn get_structure(&self, material_id: &str) -> Result<Structure, ClientError> {
        let docs = self.get_materials(material_id)?;
        let doc = docs
            .first()
            .ok_or_else(|| ClientError::Malformed("empty result".into()))?;
        serde_json::from_value(doc["structure"].clone())
            .map_err(|e| ClientError::Malformed(format!("structure: {e}")))
    }

    /// Fetch phase-diagram entries for a chemical system — what a
    /// pymatgen user feeds straight into `PhaseDiagram`. Subsystem
    /// materials (e.g. Fe2O3 inside Li-Fe-O) are included, as the real
    /// MPRester does.
    pub fn get_entries_in_chemsys(&self, elements: &[&str]) -> Result<Vec<PdEntry>, ClientError> {
        let criteria = json!({"elements": {"$nin": []}, "nelements": {"$lte": elements.len()}});
        let resp = self.api.structured_query(
            &self.request("/query/materials"),
            "materials",
            &criteria,
            &["formula", "energy_per_atom", "elements"],
        );
        let payload = Self::expect_ok(resp)?;
        let docs = payload
            .as_array()
            .ok_or_else(|| ClientError::Malformed("expected array".into()))?;
        let mut entries = Vec::new();
        for d in docs {
            let Some(formula) = d["formula"].as_str() else {
                continue;
            };
            let Ok(comp) = Composition::parse(formula) else {
                continue;
            };
            // Keep materials fully inside the requested system.
            let inside = comp
                .elements()
                .iter()
                .all(|e| elements.contains(&e.symbol()));
            if !inside {
                continue;
            }
            let Some(epa) = d["output"]["energy_per_atom"].as_f64() else {
                continue;
            };
            entries.push(PdEntry::new(
                d["_id"].as_str().unwrap_or(formula),
                comp,
                epa,
            ));
        }
        Ok(entries)
    }

    /// Run an arbitrary (sanitized) criteria/properties query — the
    /// pymatgen `MPRester.query` call.
    pub fn query(&self, criteria: &Value, properties: &[&str]) -> Result<Vec<Value>, ClientError> {
        let resp = self.api.structured_query(
            &self.request("/query/materials"),
            "materials",
            criteria,
            properties,
        );
        let payload = Self::expect_ok(resp)?;
        payload
            .as_array()
            .cloned()
            .ok_or_else(|| ClientError::Malformed("expected array".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthRegistry;
    use crate::queryengine::QueryEngine;
    use mp_docstore::Database;
    use mp_matsci::{prototypes, Element};

    fn api() -> MaterialsApi {
        let db = Database::new();
        let li = Element::from_symbol("Li").unwrap();
        let co = Element::from_symbol("Co").unwrap();
        let o = Element::from_symbol("O").unwrap();
        let mats = db.collection("materials");
        let s1 = prototypes::layered_amo2(li, co, o);
        mats.insert_many(vec![
            json!({"_id": "mp-1", "formula": "LiCoO2", "chemsys": "Co-Li-O",
                   "elements": ["Li", "Co", "O"], "nelements": 3,
                   "structure": serde_json::to_value(&s1).unwrap(),
                   "output": {"energy_per_atom": -4.9, "band_gap": 2.7}}),
            json!({"_id": "mp-2", "formula": "Li2O", "chemsys": "Li-O",
                   "elements": ["Li", "O"], "nelements": 2,
                   "output": {"energy_per_atom": -3.9, "band_gap": 5.0}}),
            json!({"_id": "mp-3", "formula": "Li", "chemsys": "Li",
                   "elements": ["Li"], "nelements": 1,
                   "output": {"energy_per_atom": -1.6, "band_gap": 0.0}}),
            json!({"_id": "mp-4", "formula": "O", "chemsys": "O",
                   "elements": ["O"], "nelements": 1,
                   "output": {"energy_per_atom": -2.6, "band_gap": 0.0}}),
            json!({"_id": "mp-5", "formula": "Fe2O3", "chemsys": "Fe-O",
                   "elements": ["Fe", "O"], "nelements": 2,
                   "output": {"energy_per_atom": -6.2, "band_gap": 2.0}}),
        ])
        .unwrap();
        MaterialsApi::new(QueryEngine::new(db), AuthRegistry::new())
    }

    #[test]
    fn get_materials_by_formula() {
        let api = api();
        let client = MpClient::new(&api);
        let docs = client.get_materials("LiCoO2").unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0]["_id"], "mp-1");
    }

    #[test]
    fn get_structure_roundtrips() {
        let api = api();
        let client = MpClient::new(&api);
        let s = client.get_structure("mp-1").unwrap();
        assert_eq!(s.formula(), "LiCoO2");
    }

    #[test]
    fn entries_feed_a_phase_diagram() {
        // The §III-D3 story: fetch remote entries, analyze locally.
        let api = api();
        let client = MpClient::new(&api);
        let entries = client.get_entries_in_chemsys(&["Li", "O"]).unwrap();
        // Li, O, Li2O in-system; LiCoO2 and Fe2O3 excluded.
        assert_eq!(entries.len(), 3, "{entries:?}");
        let pd = mp_matsci::PhaseDiagram::new(entries).unwrap();
        let stable: Vec<String> = pd
            .stable_entries(1e-8)
            .iter()
            .map(|e| e.composition.reduced_formula())
            .collect();
        assert!(stable.contains(&"Li2O".to_string()), "{stable:?}");
    }

    #[test]
    fn query_projects_properties() {
        let api = api();
        let client = MpClient::new(&api);
        let rows = client
            .query(&json!({"band_gap": {"$gt": 1.0}}), &["formula", "band_gap"])
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.get("structure").is_none()));
    }

    #[test]
    fn api_errors_surface() {
        let api = api();
        let client = MpClient::new(&api);
        let err = client.get_materials("Zr9N9").unwrap_err();
        assert!(matches!(err, ClientError::Api { status: 404, .. }));
        let err = client.query(&json!({"$where": "x"}), &[]).unwrap_err();
        assert!(matches!(err, ClientError::Api { status: 400, .. }));
    }

    #[test]
    fn missing_structure_is_malformed() {
        let api = api();
        let client = MpClient::new(&api);
        let err = client.get_structure("mp-2").unwrap_err();
        assert!(matches!(err, ClientError::Malformed(_)));
    }
}
