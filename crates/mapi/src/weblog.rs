//! Web-query logging: the data behind Fig. 5.
//!
//! Every Materials API request is recorded with its observed latency
//! (in-process work + the simulated remote deployment latency model)
//! and the number of records returned. The log exports the two views of
//! Fig. 5: a latency histogram and a time-series of individual queries.

use mp_docstore::RemoteLatencyModel;
use mp_sync::{LockRank, OrderedMutex};

/// One logged web query.
#[derive(Debug, Clone, PartialEq)]
pub struct WebQuery {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Simulated wall-clock of the request (s).
    pub time: f64,
    /// Observed latency (ms) under the deployment model.
    pub latency_ms: f64,
    /// Records returned.
    pub nrecords: usize,
    /// Request path.
    pub path: String,
}

/// Bounded log of web queries.
pub struct WebLog {
    model: RemoteLatencyModel,
    entries: OrderedMutex<Vec<WebQuery>>,
    capacity: usize,
}

impl WebLog {
    /// Log retaining up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self::with_model(capacity, RemoteLatencyModel::default())
    }

    /// Use a custom latency model.
    pub fn with_model(capacity: usize, model: RemoteLatencyModel) -> Self {
        WebLog {
            model,
            entries: OrderedMutex::new(LockRank::WebLog, Vec::new()),
            capacity,
        }
    }

    /// Record one request; returns the observed latency (ms).
    pub fn record(&self, time: f64, path: &str, local_micros: u64, nrecords: usize) -> f64 {
        let mut entries = self.entries.lock();
        let seq = entries.last().map(|e| e.seq + 1).unwrap_or(0);
        let observed = self.model.observed_micros(seq, local_micros, nrecords);
        let latency_ms = observed as f64 / 1000.0;
        if entries.len() == self.capacity {
            entries.remove(0);
        }
        entries.push(WebQuery {
            seq,
            time,
            latency_ms,
            nrecords,
            path: path.to_string(),
        });
        latency_ms
    }

    /// All retained entries.
    pub fn entries(&self) -> Vec<WebQuery> {
        self.entries.lock().clone()
    }

    /// Total records served across retained entries.
    pub fn total_records(&self) -> usize {
        self.entries.lock().iter().map(|e| e.nrecords).sum()
    }

    /// Histogram of latency (ms) with the given bucket edges
    /// (upper bounds); final overflow bucket appended — Fig. 5's main
    /// panel.
    pub fn histogram_ms(&self, edges: &[f64]) -> Vec<(String, usize)> {
        let entries = self.entries.lock();
        let mut counts = vec![0usize; edges.len() + 1];
        for e in entries.iter() {
            let idx = edges
                .iter()
                .position(|edge| e.latency_ms <= *edge)
                .unwrap_or(edges.len());
            if let Some(c) = counts.get_mut(idx) {
                *c += 1;
            }
        }
        let mut out = Vec::with_capacity(counts.len());
        let mut lo = 0.0;
        for (edge, n) in edges.iter().zip(&counts) {
            out.push((format!("{lo:.0}-{edge:.0}ms"), *n));
            lo = *edge;
        }
        out.push((format!(">{lo:.0}ms"), counts.last().copied().unwrap_or(0)));
        out
    }

    /// Time-series (time, latency ms) — Fig. 5's inset.
    pub fn time_series(&self) -> Vec<(f64, f64)> {
        self.entries
            .lock()
            .iter()
            .map(|e| (e.time, e.latency_ms))
            .collect()
    }

    /// Latency percentile over retained entries.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        let mut v: Vec<f64> = self.entries.lock().iter().map(|e| e.latency_ms).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v.get(rank.min(v.len() - 1)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let log = WebLog::new(100);
        log.record(0.0, "/rest/v1/materials/Fe2O3/vasp/energy", 300, 1);
        log.record(1.0, "/rest/v1/materials", 500, 40);
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.total_records(), 41);
    }

    #[test]
    fn latency_in_paper_regime() {
        // The default model puts typical queries at a few hundred ms.
        let log = WebLog::new(100);
        for i in 0..50 {
            log.record(i as f64, "/q", 400, 10);
        }
        let med = log.percentile_ms(50.0).unwrap();
        assert!(med > 150.0 && med < 500.0, "median {med} ms");
    }

    #[test]
    fn histogram_mode_and_tail() {
        let log = WebLog::new(10_000);
        for i in 0..500 {
            log.record(i as f64, "/q", 300, 5);
        }
        let hist = log.histogram_ms(&[100.0, 250.0, 500.0, 1000.0, 2000.0]);
        // Mode in the few-hundred-ms bucket; small multi-second tail
        // from the periodic fault penalty.
        let mode_idx = hist
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, c))| *c)
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            mode_idx == 1 || mode_idx == 2,
            "mode bucket {mode_idx}: {hist:?}"
        );
        let tail: usize = hist[4..].iter().map(|(_, c)| c).sum();
        assert!(tail > 0 && tail < 25, "tail {tail}");
    }

    #[test]
    fn ring_buffer_capacity() {
        let log = WebLog::new(3);
        for i in 0..10 {
            log.record(i as f64, "/q", 100, 1);
        }
        assert_eq!(log.entries().len(), 3);
    }

    #[test]
    fn time_series_ordering() {
        let log = WebLog::new(100);
        for i in 0..10 {
            log.record(i as f64 * 2.0, "/q", 100, 1);
        }
        let ts = log.time_series();
        assert_eq!(ts.len(), 10);
        assert!(ts.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
