//! Derived-view builders (§III-B3).
//!
//! "There may be multiple results in tasks corresponding to the same MPS
//! input. We wish to present only one result to the user, so we run a
//! MapReduce operation on the tasks to group them by the MPS identifier
//! and pick a single 'best' result." The `materials` collection this
//! produces is the view the Web UI and Materials API serve.

use mp_docstore::{Database, MapReduce, Result};
use serde_json::{json, Value};

/// Build (or rebuild) the `materials` collection by grouping converged
/// `tasks` by `mps_id` and keeping the lowest-energy result per
/// material. Returns the number of materials written.
// mp-lint: allow(E002) — the materials collection is a derived view,
// rebuilt deterministically from the tasks collection; durability is the
// journaled tasks data, not this MapReduce output.
pub fn build_materials_view(db: &Database, engine: &dyn MapReduce) -> Result<usize> {
    let tasks = db.collection("tasks").dump();
    let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
        if doc["status"] == json!("converged") {
            if let Some(mps_id) = doc.get("mps_id").and_then(Value::as_str) {
                emit(json!(mps_id), doc.clone());
            }
        }
    };
    let reduce = |_key: &Value, values: &[Value]| -> Value {
        values
            .iter()
            .min_by(|a, b| {
                let ea = a["output"]["energy_per_atom"]
                    .as_f64()
                    .unwrap_or(f64::INFINITY);
                let eb = b["output"]["energy_per_atom"]
                    .as_f64()
                    .unwrap_or(f64::INFINITY);
                ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
            .unwrap_or(Value::Null)
    };
    let groups = engine.run(&tasks, &map, &reduce)?;

    let materials = db.collection("materials");
    materials.clear();
    let mut written = 0;
    for (mps_id, best) in groups {
        if best.is_null() {
            continue;
        }
        let mps_str = mps_id.as_str().unwrap_or("unknown");
        let material_id = format!("mp-{}", mps_str.trim_start_matches("mps-"));
        let nelements = best["elements"].as_array().map(Vec::len).unwrap_or(0);
        materials.insert_one(json!({
            "_id": material_id,
            "material_id": material_id,
            "mps_id": mps_id,
            "formula": best["formula"],
            "chemsys": best["chemsys"],
            "elements": best["elements"],
            "nelements": nelements,
            "nsites": best["nsites"],
            "nelectrons": best["nelectrons"],
            "output": best["output"],
            "provenance": {"task_id": best["_id"], "fw_id": best["fw_id"]},
        }))?;
        written += 1;
    }
    materials.create_index("formula", false)?;
    materials.create_index("chemsys", false)?;
    materials.create_index("elements", false)?;
    Ok(written)
}

/// A V&V check implemented as MapReduce (§IV-C2: "A logical language in
/// which to write the V&V of a database is MapReduce, with the Map
/// finding the items to compare and the Reduce performing the
/// comparisons.") — returns (check name, offending ids).
pub type VnvViolations = Vec<(String, Vec<String>)>;

/// Run the standard consistency checks over `materials` and `tasks`.
pub fn run_vnv_checks(db: &Database, engine: &dyn MapReduce) -> Result<VnvViolations> {
    let mut violations: VnvViolations = Vec::new();

    // Check 1: every material's energy_per_atom must be negative and
    // physically bounded.
    let materials = db.collection("materials").dump();
    let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
        let e = doc["output"]["energy_per_atom"].as_f64().unwrap_or(0.0);
        if !(-50.0..0.0).contains(&e) {
            emit(json!("bad_energy"), doc["_id"].clone());
        }
    };
    let collect = |_k: &Value, vs: &[Value]| -> Value { json!(vs) };
    let out = engine.run(&materials, &map, &collect)?;
    violations.push(("energy_in_physical_range".into(), flatten_ids(&out)));

    // Check 2: one material per mps_id (the view builder's contract).
    let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
        emit(doc["mps_id"].clone(), doc["_id"].clone());
    };
    let dups = |_k: &Value, vs: &[Value]| -> Value { json!(vs) };
    let out = engine.run(&materials, &map, &dups)?;
    let mut dup_ids = Vec::new();
    for (_, v) in &out {
        if let Some(arr) = v.as_array() {
            if arr.len() > 1 {
                dup_ids.extend(arr.iter().filter_map(Value::as_str).map(String::from));
            }
        }
    }
    violations.push(("unique_material_per_mps".into(), dup_ids));

    // Check 3: every material's provenance task exists and converged.
    let tasks = db.collection("tasks");
    let mut orphan_ids = Vec::new();
    for m in &materials {
        let task_id = m["provenance"]["task_id"].clone();
        let found = tasks.find_one(&json!({"_id": task_id, "status": "converged"}))?;
        if found.is_none() {
            if let Some(id) = m["_id"].as_str() {
                orphan_ids.push(id.to_string());
            }
        }
    }
    violations.push(("provenance_task_exists".into(), orphan_ids));

    Ok(violations)
}

fn flatten_ids(groups: &[(Value, Value)]) -> Vec<String> {
    let mut out = Vec::new();
    for (_, v) in groups {
        match v {
            Value::Array(a) => out.extend(a.iter().filter_map(Value::as_str).map(String::from)),
            Value::String(s) => out.push(s.clone()),
            _ => {}
        }
    }
    out
}

/// Did all checks pass?
pub fn vnv_clean(violations: &VnvViolations) -> bool {
    violations.iter().all(|(_, ids)| ids.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_docstore::BuiltinEngine;

    fn task(id: &str, mps: &str, energy: f64, status: &str) -> Value {
        json!({
            "_id": id, "fw_id": format!("fw-{id}"), "mps_id": mps,
            "status": status,
            "formula": "Fe2O3", "chemsys": "Fe-O", "elements": ["Fe", "O"],
            "nsites": 10, "nelectrons": 76.0,
            "output": {"energy_per_atom": energy, "energy": energy * 10.0, "band_gap": 2.0},
        })
    }

    #[test]
    fn builds_best_result_per_mps() {
        let db = Database::new();
        let tasks = db.collection("tasks");
        tasks
            .insert_many(vec![
                task("t1", "mps-1", -6.0, "converged"),
                task("t2", "mps-1", -6.9, "converged"), // better
                task("t3", "mps-2", -5.0, "converged"),
                task("t4", "mps-3", -4.0, "unconverged"), // excluded
            ])
            .unwrap();
        let n = build_materials_view(&db, &BuiltinEngine::default()).unwrap();
        assert_eq!(n, 2);
        let m1 = db
            .collection("materials")
            .find_one(&json!({"mps_id": "mps-1"}))
            .unwrap()
            .unwrap();
        assert_eq!(m1["output"]["energy_per_atom"], json!(-6.9));
        assert_eq!(m1["provenance"]["task_id"], "t2");
        assert_eq!(m1["_id"], "mp-1");
    }

    #[test]
    fn rebuild_replaces_view() {
        let db = Database::new();
        db.collection("tasks")
            .insert_one(task("t1", "mps-1", -6.0, "converged"))
            .unwrap();
        build_materials_view(&db, &BuiltinEngine::default()).unwrap();
        assert_eq!(db.collection("materials").len(), 1);
        // New better task arrives; rebuild updates the view.
        db.collection("tasks")
            .insert_one(task("t9", "mps-1", -7.5, "converged"))
            .unwrap();
        build_materials_view(&db, &BuiltinEngine::default()).unwrap();
        assert_eq!(db.collection("materials").len(), 1);
        let m = db
            .collection("materials")
            .find_one(&json!({"mps_id": "mps-1"}))
            .unwrap()
            .unwrap();
        assert_eq!(m["output"]["energy_per_atom"], json!(-7.5));
    }

    #[test]
    fn vnv_passes_on_clean_data() {
        let db = Database::new();
        db.collection("tasks")
            .insert_many(vec![
                task("t1", "mps-1", -6.0, "converged"),
                task("t2", "mps-2", -5.0, "converged"),
            ])
            .unwrap();
        build_materials_view(&db, &BuiltinEngine::default()).unwrap();
        let v = run_vnv_checks(&db, &BuiltinEngine::default()).unwrap();
        assert!(vnv_clean(&v), "{v:?}");
    }

    #[test]
    fn vnv_catches_bad_energy() {
        let db = Database::new();
        db.collection("materials")
            .insert_one(json!({
                "_id": "mp-bad", "mps_id": "mps-9",
                "output": {"energy_per_atom": 3.0},
                "provenance": {"task_id": "t-none"},
            }))
            .unwrap();
        let v = run_vnv_checks(&db, &BuiltinEngine::default()).unwrap();
        assert!(!vnv_clean(&v));
        let bad = v
            .iter()
            .find(|(n, _)| n == "energy_in_physical_range")
            .unwrap();
        assert_eq!(bad.1, vec!["mp-bad".to_string()]);
        // Provenance check also fires.
        let orphan = v
            .iter()
            .find(|(n, _)| n == "provenance_task_exists")
            .unwrap();
        assert_eq!(orphan.1, vec!["mp-bad".to_string()]);
    }

    #[test]
    fn vnv_catches_duplicate_materials() {
        let db = Database::new();
        db.collection("materials")
            .insert_many(vec![
                json!({"_id": "mp-a", "mps_id": "mps-1",
                       "output": {"energy_per_atom": -1.0}, "provenance": {"task_id": "t"}}),
                json!({"_id": "mp-b", "mps_id": "mps-1",
                       "output": {"energy_per_atom": -1.0}, "provenance": {"task_id": "t"}}),
            ])
            .unwrap();
        let v = run_vnv_checks(&db, &BuiltinEngine::default()).unwrap();
        let dups = v
            .iter()
            .find(|(n, _)| n == "unique_material_per_mps")
            .unwrap();
        assert_eq!(dups.1.len(), 2);
    }
}
