//! Typed request-path errors for the Materials API.
//!
//! Route handlers return `Result<ApiResponse, ApiError>`; the
//! dispatcher converts an error into the response envelope exactly
//! once. Every failure on the request path — bad query, unknown key,
//! exhausted rate bucket, missing record — has a variant here, so
//! nothing between the router and the datastore needs to panic or
//! hand-roll a status code. The mp-flow `R0xx` gate keeps it that way:
//! a new `unwrap()` reachable from the public surface fails CI.

use mp_docstore::StoreError;
use std::fmt;

/// A request-path failure with its HTTP-style status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// 400 — malformed request, rejected filter, or bad pipeline.
    BadRequest(String),
    /// 401 — missing or unknown API key.
    Unauthorized,
    /// 403 — authenticated but the resource is not served.
    Forbidden(String),
    /// 404 — no such route, datatype, or record.
    NotFound(String),
    /// 429 — the caller's rate bucket is empty.
    RateLimited,
}

impl ApiError {
    /// The HTTP-style status code for the envelope.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::Unauthorized => 401,
            ApiError::Forbidden(_) => 403,
            ApiError::NotFound(_) => 404,
            ApiError::RateLimited => 429,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::BadRequest(m) => f.write_str(m),
            ApiError::Unauthorized => f.write_str("unknown API key"),
            ApiError::Forbidden(m) => f.write_str(m),
            ApiError::NotFound(m) => f.write_str(m),
            ApiError::RateLimited => f.write_str("rate limit exceeded"),
        }
    }
}

impl std::error::Error for ApiError {}

/// Datastore failures surface as 400s: by the time a filter reaches
/// the store it has passed sanitization, so a `StoreError` means the
/// request itself was unservable, not that the server broke.
impl From<StoreError> for ApiError {
    fn from(e: StoreError) -> Self {
        ApiError::BadRequest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_variants() {
        assert_eq!(ApiError::BadRequest("x".into()).status(), 400);
        assert_eq!(ApiError::Unauthorized.status(), 401);
        assert_eq!(ApiError::Forbidden("x".into()).status(), 403);
        assert_eq!(ApiError::NotFound("x".into()).status(), 404);
        assert_eq!(ApiError::RateLimited.status(), 429);
    }

    #[test]
    fn store_errors_become_bad_requests() {
        let e: ApiError = StoreError::BadQuery("operator $where not permitted".into()).into();
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("$where"));
    }
}
