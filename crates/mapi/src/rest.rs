//! The Materials API: REST-shaped programmatic access (§III-D2).
//!
//! URIs follow Fig. 4 of the paper:
//!
//! ```text
//! https://www.materialsproject.org/rest/v1/materials/Fe2O3/vasp/energy
//!         preamble              version  datatype  id    code property
//! ```
//!
//! Responses are a JSON envelope `{valid_response, response, ...}`. The
//! router is in-process (the substitution documented in DESIGN.md): a
//! request is a method + path + key, a response is a status + JSON body.

use crate::auth::AuthRegistry;
use crate::error::ApiError;
use crate::queryengine::QueryEngine;
use crate::ratelimit::{RateLimitConfig, RateLimiter};
use crate::weblog::WebLog;
use serde_json::{json, Value};
use std::time::Instant;

/// Materialize shared result rows into an owned JSON array for the
/// response envelope. This is the serialization boundary: the one place
/// on the read path where documents are deep-copied, because the HTTP
/// body must own its bytes.
fn rows_to_json(docs: &[std::sync::Arc<Value>]) -> Value {
    Value::Array(docs.iter().map(|d| (**d).clone()).collect()) // mp-lint: allow(P002)
}

/// An API request.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Path, e.g. `/rest/v1/materials/Fe2O3/vasp/energy`.
    pub path: String,
    /// API key (None = anonymous, public data only, shared rate bucket).
    pub api_key: Option<String>,
    /// Simulated wall-clock (s) — drives rate limiting and the log.
    pub now: f64,
}

impl ApiRequest {
    /// Anonymous request at t=0.
    pub fn get(path: &str) -> Self {
        ApiRequest {
            path: path.into(),
            api_key: None,
            now: 0.0,
        }
    }

    /// Builder: set key.
    pub fn with_key(mut self, key: &str) -> Self {
        self.api_key = Some(key.into());
        self
    }

    /// Builder: set time.
    pub fn at(mut self, now: f64) -> Self {
        self.now = now;
        self
    }
}

/// An API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP-style status code.
    pub status: u16,
    /// JSON body (the envelope).
    pub body: Value,
    /// Response headers, e.g. `X-Cache: HIT`.
    pub headers: Vec<(String, String)>,
}

impl ApiResponse {
    fn ok(response: Value) -> Self {
        ApiResponse {
            status: 200,
            body: json!({
                "valid_response": true,
                "version": {"api": "v1", "db": "2012.08"},
                "response": response,
            }),
            headers: Vec::new(),
        }
    }

    /// Attach a response header.
    fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// First value of header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attach advisory lint findings (unindexed scans, unknown fields) to
    /// the envelope; the `warnings` key only appears when there are any.
    fn with_warnings(mut self, warnings: &[mp_lint::Diagnostic]) -> Self {
        if !warnings.is_empty() {
            let rendered: Vec<Value> = warnings
                .iter()
                .map(|d| Value::String(d.to_string()))
                .collect();
            self.body["warnings"] = Value::Array(rendered);
        }
        self
    }

    fn error(status: u16, msg: &str) -> Self {
        ApiResponse {
            status,
            body: json!({
                "valid_response": false,
                "error": msg,
            }),
            headers: Vec::new(),
        }
    }

    /// The `response` payload (empty array on error).
    pub fn payload(&self) -> &Value {
        self.body.get("response").unwrap_or(&Value::Null)
    }
}

impl From<ApiError> for ApiResponse {
    fn from(e: ApiError) -> Self {
        ApiResponse::error(e.status(), &e.to_string())
    }
}

/// The server: QueryEngine + auth + rate limiting + logging.
pub struct MaterialsApi {
    qe: QueryEngine,
    auth: AuthRegistry,
    limiter: RateLimiter,
    log: WebLog,
}

/// Properties servable under `/materials/{id}/vasp/...`.
const VASP_PROPERTIES: &[&str] = &[
    "energy",
    "energy_per_atom",
    "band_gap",
    "formula",
    "nsites",
    "density",
    "e_above_hull",
];

impl MaterialsApi {
    /// Build over a query engine.
    pub fn new(qe: QueryEngine, auth: AuthRegistry) -> Self {
        MaterialsApi {
            qe,
            auth,
            limiter: RateLimiter::new(RateLimitConfig::default()),
            log: WebLog::new(65_536),
        }
    }

    /// The web-query log (Fig. 5 data).
    pub fn weblog(&self) -> &WebLog {
        &self.log
    }

    /// The auth registry (for registration flows).
    pub fn auth(&self) -> &AuthRegistry {
        &self.auth
    }

    /// The underlying query engine.
    pub fn query_engine(&self) -> &QueryEngine {
        &self.qe
    }

    /// Authenticate (anonymous allowed) and rate limit. Auth failures
    /// degrade to 401 and exhausted buckets to 429 — never a panic.
    fn admit(&self, req: &ApiRequest) -> Result<(), ApiError> {
        let bucket_key = match &req.api_key {
            Some(k) => {
                self.auth
                    .authenticate(k)
                    .map_err(|_| ApiError::Unauthorized)?
                    .api_key
            }
            None => "anonymous".to_string(),
        };
        if !self.limiter.admit(&bucket_key, req.now) {
            return Err(ApiError::RateLimited);
        }
        Ok(())
    }

    /// Handle one request.
    pub fn handle(&self, req: &ApiRequest) -> ApiResponse {
        let started = Instant::now();
        if let Err(e) = self.admit(req) {
            return e.into();
        }

        let resp = self.route(&req.path).unwrap_or_else(ApiResponse::from);
        let nrecords = match resp.payload() {
            Value::Array(a) => a.len(),
            Value::Null => 0,
            _ => 1,
        };
        let local_micros = started.elapsed().as_micros() as u64;
        self.log.record(req.now, &req.path, local_micros, nrecords);
        resp
    }

    fn route(&self, path: &str) -> Result<ApiResponse, ApiError> {
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        // Expect ["rest", "v1", datatype, ...].
        match parts.as_slice() {
            ["rest", "v1", "materials", tail @ ..] => self.route_materials(tail),
            ["rest", "v1", "battery", tail @ ..] => self.route_battery(tail),
            ["rest", "v1", "tasks", tail @ ..] => self.route_tasks(tail),
            ["rest", "v1", other, ..] => {
                Err(ApiError::NotFound(format!("unknown datatype '{other}'")))
            }
            ["rest", version, _, ..] if *version != "v1" => {
                Err(ApiError::BadRequest("unsupported API version".into()))
            }
            _ => Err(ApiError::NotFound("not found".into())),
        }
    }

    /// Identifier → criteria: an `mp-` / `mps-` id, a chemical system
    /// (`Fe-Li-O-P`), or a formula (`Fe2O3`).
    fn identifier_criteria(ident: &str) -> Value {
        if ident.starts_with("mp-") || ident.starts_with("mps-") {
            json!({"_id": ident})
        } else if ident.contains('-') {
            json!({"chemsys": ident})
        } else {
            json!({"formula": ident})
        }
    }

    fn route_materials(&self, rest: &[&str]) -> Result<ApiResponse, ApiError> {
        match rest {
            [] => Err(ApiError::BadRequest("missing identifier".into())),
            [ident] => self.fetch("materials", ident, None),
            [ident, "vasp"] => self.fetch("materials", ident, None),
            [ident, "vasp", prop] => {
                if !VASP_PROPERTIES.contains(prop) {
                    return Err(ApiError::BadRequest(format!("unknown property '{prop}'")));
                }
                self.fetch("materials", ident, Some(prop))
            }
            _ => Err(ApiError::NotFound("not found".into())),
        }
    }

    fn route_battery(&self, rest: &[&str]) -> Result<ApiResponse, ApiError> {
        match rest {
            [] => Err(ApiError::BadRequest("missing identifier".into())),
            [ident] => {
                let criteria = if ident.starts_with("bat-") {
                    json!({"_id": ident})
                } else {
                    json!({"framework": ident})
                };
                let docs = self.qe.query("batteries", &criteria, &[], Some(100))?;
                Ok(ApiResponse::ok(json!(docs)))
            }
            _ => Err(ApiError::NotFound("not found".into())),
        }
    }

    fn route_tasks(&self, rest: &[&str]) -> Result<ApiResponse, ApiError> {
        // Tasks are internal: only counts are exposed.
        match rest {
            ["count"] => {
                let n = self.qe.count("tasks", &json!({}))?;
                Ok(ApiResponse::ok(json!({ "count": n })))
            }
            _ => Err(ApiError::Forbidden("tasks are not public".into())),
        }
    }

    fn fetch(
        &self,
        collection: &str,
        ident: &str,
        prop: Option<&str>,
    ) -> Result<ApiResponse, ApiError> {
        let criteria = Self::identifier_criteria(ident);
        let props: Vec<&str> = match prop {
            Some(p) => vec![p],
            None => vec![],
        };
        let (docs, cached) = self
            .qe
            .query_cached(collection, &criteria, &props, Some(500))?;
        if docs.is_empty() {
            return Err(ApiError::NotFound(format!(
                "no {collection} match '{ident}'"
            )));
        }
        Ok(ApiResponse::ok(rows_to_json(&docs))
            .with_header("X-Cache", if cached { "HIT" } else { "MISS" }))
    }

    /// POST-style structured query: sanitized criteria + properties
    /// (what pymatgen's `MPRester.query` calls).
    pub fn structured_query(
        &self,
        req: &ApiRequest,
        collection: &str,
        criteria: &Value,
        properties: &[&str],
    ) -> ApiResponse {
        let started = Instant::now();
        if let Err(e) = self.admit(req) {
            return e.into();
        }
        // Schema-aware lint: Error findings become a 400 whose body carries
        // the rendered diagnostics; Warnings ride along in the envelope.
        let warnings: Vec<mp_lint::Diagnostic> = match self.qe.lint_for(collection, criteria) {
            Ok(diags) if mp_lint::has_errors(&diags) => {
                let resp = ApiResponse::error(400, &mp_lint::render(&diags));
                self.log.record(
                    req.now,
                    &format!("POST /query/{collection}"),
                    started.elapsed().as_micros() as u64,
                    0,
                );
                return resp;
            }
            Ok(diags) => diags,
            Err(_) => Vec::new(), // sanitize-level failures reported below
        };
        let resp = match self
            .qe
            .query_cached(collection, criteria, properties, Some(10_000))
        {
            Ok((docs, cached)) => ApiResponse::ok(rows_to_json(&docs))
                .with_warnings(&warnings)
                .with_header("X-Cache", if cached { "HIT" } else { "MISS" }),
            Err(e) => ApiResponse::error(400, &e.to_string()),
        };
        let nrecords = match resp.payload() {
            Value::Array(a) => a.len(),
            _ => 0,
        };
        self.log.record(
            req.now,
            &format!("POST /query/{collection}"),
            started.elapsed().as_micros() as u64,
            nrecords,
        );
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_docstore::Database;

    fn api() -> MaterialsApi {
        let db = Database::new();
        db.collection("materials")
            .insert_many(vec![
                json!({"_id": "mp-1", "formula": "Fe2O3", "chemsys": "Fe-O",
                       "elements": ["Fe", "O"], "nsites": 10, "density": 5.2,
                       "output": {"energy": -67.5, "energy_per_atom": -6.75, "band_gap": 2.0}}),
                json!({"_id": "mp-2", "formula": "LiCoO2", "chemsys": "Co-Li-O",
                       "elements": ["Li", "Co", "O"], "nsites": 4, "density": 4.9,
                       "output": {"energy": -22.9, "energy_per_atom": -5.7, "band_gap": 2.7}}),
            ])
            .unwrap();
        db.collection("batteries")
            .insert_one(
                json!({"_id": "bat-1", "framework": "CoO2", "working_ion": "Li",
                               "average_voltage": 3.9, "capacity_grav": 274.0}),
            )
            .unwrap();
        MaterialsApi::new(QueryEngine::new(db), AuthRegistry::new())
    }

    #[test]
    fn fig4_uri_returns_energy() {
        // The exact example from Fig. 4 of the paper.
        let api = api();
        let resp = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3/vasp/energy"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body["valid_response"], true);
        let docs = resp.payload().as_array().unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0]["output"]["energy"], json!(-67.5));
    }

    #[test]
    fn lookup_by_mp_id_and_chemsys() {
        let api = api();
        let by_id = api.handle(&ApiRequest::get("/rest/v1/materials/mp-2"));
        assert_eq!(by_id.status, 200);
        assert_eq!(by_id.payload()[0]["formula"], "LiCoO2");

        let by_sys = api.handle(&ApiRequest::get("/rest/v1/materials/Co-Li-O"));
        assert_eq!(by_sys.status, 200);
        assert_eq!(by_sys.payload()[0]["_id"], "mp-2");
    }

    #[test]
    fn unknown_material_404() {
        let api = api();
        let resp = api.handle(&ApiRequest::get("/rest/v1/materials/Zr3N4/vasp/energy"));
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body["valid_response"], false);
    }

    #[test]
    fn unknown_property_400() {
        let api = api();
        let resp = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3/vasp/secrets"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn bad_version_and_path() {
        let api = api();
        assert_eq!(
            api.handle(&ApiRequest::get("/rest/v9/materials/Fe2O3"))
                .status,
            400
        );
        assert_eq!(api.handle(&ApiRequest::get("/nope")).status, 404);
        assert_eq!(
            api.handle(&ApiRequest::get("/rest/v1/genomes/x")).status,
            404
        );
    }

    #[test]
    fn battery_route() {
        let api = api();
        let resp = api.handle(&ApiRequest::get("/rest/v1/battery/CoO2"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.payload()[0]["average_voltage"], json!(3.9));
        let by_id = api.handle(&ApiRequest::get("/rest/v1/battery/bat-1"));
        assert_eq!(by_id.status, 200);
    }

    #[test]
    fn tasks_not_public() {
        let api = api();
        assert_eq!(
            api.handle(&ApiRequest::get("/rest/v1/tasks/task-1")).status,
            403
        );
        assert_eq!(
            api.handle(&ApiRequest::get("/rest/v1/tasks/count")).status,
            200
        );
    }

    #[test]
    fn unknown_key_401() {
        let api = api();
        let resp = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3").with_key("mpk-fake"));
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn registered_key_works() {
        let api = api();
        let acct = api
            .auth()
            .register(&crate::auth::ProviderAssertion {
                provider: crate::auth::Provider::Google,
                email: "sci@example.com".into(),
                signature: crate::auth::sign("sci@example.com"),
            })
            .unwrap();
        let resp = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3").with_key(&acct.api_key));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn anonymous_rate_limited() {
        let api = api();
        let mut throttled = false;
        for _ in 0..100 {
            let resp = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3").at(0.0));
            if resp.status == 429 {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "anonymous burst should hit the limiter");
    }

    #[test]
    fn structured_query_sanitizes() {
        let api = api();
        let ok = api.structured_query(
            &ApiRequest::get("/query"),
            "materials",
            &json!({"band_gap": {"$gt": 2.5}}),
            &["formula"],
        );
        assert_eq!(ok.status, 200);
        assert_eq!(ok.payload().as_array().unwrap().len(), 1);

        let evil = api.structured_query(
            &ApiRequest::get("/query").at(1.0),
            "materials",
            &json!({"$where": "drop()"}),
            &[],
        );
        assert_eq!(evil.status, 400);
    }

    #[test]
    fn structured_query_surfaces_lint_diagnostics() {
        let api = api();
        // A provably-always-false filter is rejected with the diagnostic
        // rendered into the error body.
        let resp = api.structured_query(
            &ApiRequest::get("/query"),
            "materials",
            &json!({"band_gap": {"$gt": 5, "$lt": 3}}),
            &[],
        );
        assert_eq!(resp.status, 400);
        assert!(
            resp.body["error"].as_str().unwrap().contains("Q002"),
            "{:?}",
            resp.body
        );

        // An unindexed scan succeeds but carries a warning in the envelope.
        let ok = api.structured_query(
            &ApiRequest::get("/query").at(1.0),
            "materials",
            &json!({"band_gap": {"$gt": 2.5}}),
            &[],
        );
        assert_eq!(ok.status, 200);
        let warnings = ok.body["warnings"].as_array().expect("warnings surfaced");
        assert!(
            warnings
                .iter()
                .any(|w| w.as_str().unwrap_or("").contains("Q004")),
            "{warnings:?}"
        );
    }

    #[test]
    fn x_cache_header_reports_hit_miss_and_invalidation() {
        let api = api();
        let r1 = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3"));
        assert_eq!(r1.header("X-Cache"), Some("MISS"));
        let r2 = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3").at(10.0));
        assert_eq!(r2.header("X-Cache"), Some("HIT"));
        assert_eq!(r1.payload(), r2.payload(), "hit serves identical rows");
        // A write bumps the collection version: the entry is stale.
        api.query_engine()
            .database()
            .collection("materials")
            .insert_one(json!({"_id": "mp-9", "formula": "TiO2"}))
            .unwrap();
        let r3 = api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3").at(20.0));
        assert_eq!(r3.header("X-Cache"), Some("MISS"));
    }

    #[test]
    fn weblog_captures_queries() {
        let api = api();
        for i in 0..5 {
            api.handle(&ApiRequest::get("/rest/v1/materials/Fe2O3").at(i as f64 * 10.0));
        }
        assert_eq!(api.weblog().entries().len(), 5);
        assert!(api.weblog().total_records() >= 5);
    }
}
