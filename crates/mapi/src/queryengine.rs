//! The QueryEngine abstraction layer (§III-B4, §IV-D1).
//!
//! "We have implemented an abstraction layer for queries and updates to
//! our main collections ... This layer allows us to install convenient
//! aliases for deeply nested fields or change the names of collections
//! in a single central place. ... Because all queries go through the
//! QueryEngine abstraction layer, all queries are sanitized and cannot
//! access the database directly."

use mp_docstore::{Database, FindOptions, Result, StoreError};
use mp_lint::{CollectionSchema, Diagnostic};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// How many documents schema inference samples per collection.
const SCHEMA_SAMPLE: usize = 256;

/// Central query gateway with aliasing and sanitization.
pub struct QueryEngine {
    db: Database,
    /// alias → real dotted path.
    field_aliases: BTreeMap<String, String>,
    /// logical name → real collection name.
    collection_aliases: BTreeMap<String, String>,
    /// Operators permitted in sanitized queries.
    allowed_operators: Vec<&'static str>,
    /// Maximum filter nesting depth.
    max_depth: usize,
}

impl QueryEngine {
    /// Wrap a database with the Materials-Project default aliases.
    pub fn new(db: Database) -> Self {
        let mut field_aliases = BTreeMap::new();
        // The conveniences the production system installs.
        for (alias, real) in [
            ("energy", "output.energy"),
            ("energy_per_atom", "output.energy_per_atom"),
            ("band_gap", "output.band_gap"),
            ("formula", "formula"),
            ("nelements", "nelements"),
            ("elements", "elements"),
            ("chemsys", "chemsys"),
            ("e_above_hull", "stability.e_above_hull"),
            ("voltage", "average_voltage"),
            ("capacity", "capacity_grav"),
        ] {
            field_aliases.insert(alias.to_string(), real.to_string());
        }
        QueryEngine {
            db,
            field_aliases,
            collection_aliases: BTreeMap::new(),
            allowed_operators: vec![
                "$eq",
                "$ne",
                "$gt",
                "$gte",
                "$lt",
                "$lte",
                "$in",
                "$nin",
                "$all",
                "$size",
                "$exists",
                "$and",
                "$or",
                "$nor",
                "$not",
                "$elemMatch",
                "$regex",
                "$contains",
                "$mod",
                "$type",
            ],
            max_depth: 8,
        }
    }

    /// Install or change a field alias.
    pub fn alias_field(&mut self, alias: &str, real: &str) {
        self.field_aliases.insert(alias.into(), real.into());
    }

    /// Install or change a collection alias.
    pub fn alias_collection(&mut self, alias: &str, real: &str) {
        self.collection_aliases.insert(alias.into(), real.into());
    }

    /// The underlying database (for trusted internal callers).
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn resolve_collection<'a>(&'a self, name: &'a str) -> &'a str {
        self.collection_aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name)
    }

    fn resolve_field<'a>(&'a self, name: &'a str) -> &'a str {
        self.field_aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name)
    }

    /// Sanitize and alias-translate a raw (user-supplied) filter.
    ///
    /// Rejected: unknown `$` operators (`$where` most importantly),
    /// nesting beyond `max_depth`, non-object roots, and filters the
    /// static analyzer proves can never match (`mp-lint` Error-severity
    /// diagnostics: contradictory bounds, empty `$in`, …). Field names
    /// are passed through the alias table.
    pub fn sanitize(&self, raw: &Value) -> Result<Value> {
        let out = self.sanitize_level(raw, 0)?;
        let diags = mp_lint::analyze_query(&out);
        if mp_lint::has_errors(&diags) {
            return Err(StoreError::BadQuery(mp_lint::render(&diags)));
        }
        Ok(out)
    }

    /// Schema-aware lint of a raw filter against `collection`'s inferred
    /// schema: everything `sanitize` checks plus type mismatches, unknown
    /// fields with did-you-mean, and unindexed-scan warnings.
    pub fn lint_for(&self, collection: &str, raw: &Value) -> Result<Vec<Diagnostic>> {
        let real_coll = self.resolve_collection(collection).to_string();
        let filter = self.sanitize_level(raw, 0)?;
        let coll = self.db.collection(&real_coll);
        let schema = CollectionSchema::infer(&coll, SCHEMA_SAMPLE);
        Ok(mp_lint::analyze_query_with_schema(
            &filter,
            &schema,
            &self.field_aliases,
        ))
    }

    fn sanitize_level(&self, raw: &Value, depth: usize) -> Result<Value> {
        if depth > self.max_depth {
            return Err(StoreError::BadQuery(format!(
                "query nesting exceeds {}",
                self.max_depth
            )));
        }
        let obj = raw
            .as_object()
            .ok_or_else(|| StoreError::BadQuery("filter must be an object".into()))?;
        let mut out = Map::new();
        for (k, v) in obj {
            if k.starts_with('$') {
                if !self.allowed_operators.contains(&k.as_str()) {
                    return Err(StoreError::BadQuery(format!("operator {k} not permitted")));
                }
                // Logical operators take arrays of sub-filters.
                let sv = match v {
                    Value::Array(items) if matches!(k.as_str(), "$and" | "$or" | "$nor") => {
                        let subs: Result<Vec<Value>> = items
                            .iter()
                            .map(|i| self.sanitize_level(i, depth + 1))
                            .collect();
                        Value::Array(subs?)
                    }
                    Value::Object(_) if matches!(k.as_str(), "$not" | "$elemMatch") => {
                        self.sanitize_level(v, depth + 1)?
                    }
                    other => other.clone(),
                };
                out.insert(k.clone(), sv);
            } else {
                let real = self.resolve_field(k).to_string();
                let sv = if let Some(sub) = v.as_object() {
                    if sub.keys().any(|sk| sk.starts_with('$')) {
                        self.sanitize_level(v, depth + 1)?
                    } else {
                        v.clone()
                    }
                } else {
                    v.clone()
                };
                out.insert(real, sv);
            }
        }
        Ok(Value::Object(out))
    }

    /// Query a collection with criteria + requested properties, both in
    /// alias space — the pymatgen `MPRester.query(criteria, properties)`
    /// shape.
    pub fn query(
        &self,
        collection: &str,
        criteria: &Value,
        properties: &[&str],
        limit: Option<usize>,
    ) -> Result<Vec<Value>> {
        let real_coll = self.resolve_collection(collection).to_string();
        let filter = self.sanitize(criteria)?;
        let mut opts = FindOptions::all();
        if let Some(l) = limit {
            opts = opts.limit(l);
        }
        if !properties.is_empty() {
            let real_props: Vec<String> = properties
                .iter()
                .map(|p| self.resolve_field(p).to_string())
                .collect();
            let refs: Vec<&str> = real_props.iter().map(String::as_str).collect();
            opts = opts.project(&refs);
        }
        self.db.collection(&real_coll).find_with(&filter, &opts)
    }

    /// Count documents matching sanitized criteria.
    pub fn count(&self, collection: &str, criteria: &Value) -> Result<usize> {
        let real = self.resolve_collection(collection).to_string();
        let filter = self.sanitize(criteria)?;
        self.db.collection(&real).count(&filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn engine() -> QueryEngine {
        let db = Database::new();
        let mats = db.collection("materials");
        mats.insert_many(vec![
            json!({"_id": "mp-1", "formula": "Fe2O3", "elements": ["Fe", "O"],
                   "output": {"energy": -67.5, "energy_per_atom": -6.75, "band_gap": 2.0}}),
            json!({"_id": "mp-2", "formula": "LiFePO4", "elements": ["Li", "Fe", "P", "O"],
                   "output": {"energy": -191.0, "energy_per_atom": -6.8, "band_gap": 3.5}}),
        ])
        .unwrap();
        QueryEngine::new(db)
    }

    #[test]
    fn alias_translation_in_query() {
        let qe = engine();
        let hits = qe
            .query("materials", &json!({"band_gap": {"$gt": 3.0}}), &[], None)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0]["formula"], "LiFePO4");
    }

    #[test]
    fn property_projection_uses_aliases() {
        let qe = engine();
        let hits = qe
            .query("materials", &json!({"formula": "Fe2O3"}), &["energy"], None)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0]["output"]["energy"], json!(-67.5));
        assert!(hits[0].get("elements").is_none(), "projection drops others");
    }

    #[test]
    fn where_operator_rejected() {
        let qe = engine();
        let err = qe.query("materials", &json!({"$where": "evil()"}), &[], None);
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
        let err = qe.query("materials", &json!({"f": {"$where": "x"}}), &[], None);
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn deep_nesting_rejected() {
        let qe = engine();
        let mut q = json!({"a": 1});
        for _ in 0..12 {
            q = json!({ "$and": [q] });
        }
        assert!(qe.query("materials", &q, &[], None).is_err());
    }

    #[test]
    fn nested_logical_operators_sanitized_recursively() {
        let qe = engine();
        let q = json!({"$or": [{"band_gap": {"$gt": 3.0}}, {"formula": "Fe2O3"}]});
        let hits = qe.query("materials", &q, &[], None).unwrap();
        assert_eq!(hits.len(), 2);
        // And an evil operator hidden inside a $or is still caught.
        let evil = json!({"$or": [{"x": {"$where": "boom"}}]});
        assert!(qe.query("materials", &evil, &[], None).is_err());
    }

    #[test]
    fn collection_alias() {
        let mut qe = engine();
        qe.alias_collection("mats", "materials");
        assert_eq!(qe.count("mats", &json!({})).unwrap(), 2);
    }

    #[test]
    fn limit_respected() {
        let qe = engine();
        let hits = qe.query("materials", &json!({}), &[], Some(1)).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn non_object_filter_rejected() {
        let qe = engine();
        assert!(qe.query("materials", &json!([1, 2]), &[], None).is_err());
        assert!(qe.query("materials", &json!("str"), &[], None).is_err());
    }

    #[test]
    fn always_false_query_rejected_by_sanitize() {
        let qe = engine();
        let err = qe.query(
            "materials",
            &json!({"band_gap": {"$gt": 5, "$lt": 3}}),
            &[],
            None,
        );
        match err {
            Err(StoreError::BadQuery(msg)) => assert!(msg.contains("Q002"), "{msg}"),
            other => panic!("expected BadQuery(Q002), got {other:?}"),
        }
        let err = qe.query("materials", &json!({"formula": {"$in": []}}), &[], None);
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn lint_for_reports_schema_findings() {
        let qe = engine();
        // Typo'd field: warned with a did-you-mean against aliases/schema.
        let diags = qe
            .lint_for("materials", &json!({"band_gapp": 2.0}))
            .unwrap();
        assert!(diags.iter().any(|d| d.code == "Q003"), "{diags:?}");
        // Type mismatch against the inferred schema is an error.
        let diags = qe
            .lint_for("materials", &json!({"formula": {"$gt": 3}}))
            .unwrap();
        assert!(mp_lint::has_errors(&diags), "{diags:?}");
        // A clean aliased query lints clean apart from the unindexed scan.
        let diags = qe
            .lint_for("materials", &json!({"band_gap": {"$gt": 2.0}}))
            .unwrap();
        assert!(diags.iter().all(|d| d.code == "Q004"), "{diags:?}");
    }
}
