//! The QueryEngine abstraction layer (§III-B4, §IV-D1).
//!
//! "We have implemented an abstraction layer for queries and updates to
//! our main collections ... This layer allows us to install convenient
//! aliases for deeply nested fields or change the names of collections
//! in a single central place. ... Because all queries go through the
//! QueryEngine abstraction layer, all queries are sanitized and cannot
//! access the database directly."

use mp_docstore::{Database, Docs, FindOptions, Result, StoreError};
use mp_exec::{CacheStats, QueryCache};
use mp_lint::{CollectionSchema, Diagnostic};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How many documents schema inference samples per collection.
const SCHEMA_SAMPLE: usize = 256;

/// How many distinct query shapes the read-through cache retains.
const QUERY_CACHE_CAPACITY: usize = 256;

/// Serialize a JSON value with object keys sorted recursively, so that
/// `{"a":1,"b":2}` and `{"b":2,"a":1}` produce the same cache key (the
/// workspace `serde_json` preserves insertion order, which would
/// otherwise split identical filters into distinct keys).
fn canonical_json(v: &Value, out: &mut String) {
    match v {
        Value::Object(m) => {
            let mut pairs: Vec<(&String, &Value)> = m.iter().collect();
            pairs.sort_unstable_by_key(|(k, _)| *k);
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(k, out);
                out.push(':');
                canonical_json(v, out);
            }
            out.push('}');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canonical_json(item, out);
            }
            out.push(']');
        }
        other => {
            use std::fmt::Write as _;
            // serde_json's `Display` serializes straight into the
            // formatter — no intermediate `String` per leaf. This runs
            // on the cache-hit path, where a handful of cold small
            // allocations used to cost more than the probe itself.
            let _ = write!(out, "{other}");
        }
    }
}

/// JSON-escape `s` into `out` without allocating (key emission for
/// [`canonical_json`]; only self-consistency matters for a cache key,
/// but the escapes match serde_json's for readability in debug dumps).
fn push_json_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Central query gateway with aliasing and sanitization.
pub struct QueryEngine {
    db: Database,
    /// alias → real dotted path.
    field_aliases: BTreeMap<String, String>,
    /// logical name → real collection name.
    collection_aliases: BTreeMap<String, String>,
    /// Operators permitted in sanitized queries.
    allowed_operators: Vec<&'static str>,
    /// Maximum filter nesting depth.
    max_depth: usize,
    /// Read-through result cache, invalidated by collection version.
    /// Rows are shared `Arc<Document>` handles: a hit hands back the
    /// cached result set without copying a single document.
    cache: QueryCache<Arc<Docs>>,
}

impl QueryEngine {
    /// Wrap a database with the Materials-Project default aliases.
    pub fn new(db: Database) -> Self {
        let mut field_aliases = BTreeMap::new();
        // The conveniences the production system installs.
        for (alias, real) in [
            ("energy", "output.energy"),
            ("energy_per_atom", "output.energy_per_atom"),
            ("band_gap", "output.band_gap"),
            ("formula", "formula"),
            ("nelements", "nelements"),
            ("elements", "elements"),
            ("chemsys", "chemsys"),
            ("e_above_hull", "stability.e_above_hull"),
            ("voltage", "average_voltage"),
            ("capacity", "capacity_grav"),
        ] {
            field_aliases.insert(alias.to_string(), real.to_string());
        }
        QueryEngine {
            db,
            field_aliases,
            collection_aliases: BTreeMap::new(),
            allowed_operators: vec![
                "$eq",
                "$ne",
                "$gt",
                "$gte",
                "$lt",
                "$lte",
                "$in",
                "$nin",
                "$all",
                "$size",
                "$exists",
                "$and",
                "$or",
                "$nor",
                "$not",
                "$elemMatch",
                "$regex",
                "$contains",
                "$mod",
                "$type",
            ],
            max_depth: 8,
            cache: QueryCache::new(QUERY_CACHE_CAPACITY),
        }
    }

    /// Install or change a field alias.
    ///
    /// Clears the result cache: cached entries are keyed on the *raw*
    /// request (see [`query_cached`](Self::query_cached)), and an alias
    /// edit changes what a raw request means.
    pub fn alias_field(&mut self, alias: &str, real: &str) {
        self.field_aliases.insert(alias.into(), real.into());
        self.cache.clear();
    }

    /// Install or change a collection alias. Clears the result cache
    /// (see [`alias_field`](Self::alias_field)).
    pub fn alias_collection(&mut self, alias: &str, real: &str) {
        self.collection_aliases.insert(alias.into(), real.into());
        self.cache.clear();
    }

    /// The underlying database (for trusted internal callers).
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn resolve_collection<'a>(&'a self, name: &'a str) -> &'a str {
        self.collection_aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name)
    }

    fn resolve_field<'a>(&'a self, name: &'a str) -> &'a str {
        self.field_aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name)
    }

    /// Sanitize and alias-translate a raw (user-supplied) filter.
    ///
    /// Rejected: unknown `$` operators (`$where` most importantly),
    /// nesting beyond `max_depth`, non-object roots, and filters the
    /// static analyzer proves can never match (`mp-lint` Error-severity
    /// diagnostics: contradictory bounds, empty `$in`, …). Field names
    /// are passed through the alias table.
    pub fn sanitize(&self, raw: &Value) -> Result<Value> {
        let out = self.sanitize_level(raw, 0)?;
        let diags = mp_lint::analyze_query(&out);
        if mp_lint::has_errors(&diags) {
            return Err(StoreError::BadQuery(mp_lint::render(&diags)));
        }
        Ok(out)
    }

    /// Schema-aware lint of a raw filter against `collection`'s inferred
    /// schema: everything `sanitize` checks plus type mismatches, unknown
    /// fields with did-you-mean, unindexed-scan warnings, and forced-
    /// collection-scan shapes (`P001`) no index could ever serve.
    pub fn lint_for(&self, collection: &str, raw: &Value) -> Result<Vec<Diagnostic>> {
        let real_coll = self.resolve_collection(collection).to_string();
        let filter = self.sanitize_level(raw, 0)?;
        let coll = self.db.collection(&real_coll);
        let schema = CollectionSchema::infer(&coll, SCHEMA_SAMPLE);
        let mut diags = mp_lint::analyze_query_with_schema(&filter, &schema, &self.field_aliases);
        diags.extend(mp_lint::analyze_query_perf(&filter, &schema));
        Ok(diags)
    }

    fn sanitize_level(&self, raw: &Value, depth: usize) -> Result<Value> {
        if depth > self.max_depth {
            return Err(StoreError::BadQuery(format!(
                "query nesting exceeds {}",
                self.max_depth
            )));
        }
        let obj = raw
            .as_object()
            .ok_or_else(|| StoreError::BadQuery("filter must be an object".into()))?;
        let mut out = Map::new();
        for (k, v) in obj {
            if k.starts_with('$') {
                if !self.allowed_operators.contains(&k.as_str()) {
                    return Err(StoreError::BadQuery(format!("operator {k} not permitted")));
                }
                // Logical operators take arrays of sub-filters.
                let sv = match v {
                    Value::Array(items) if matches!(k.as_str(), "$and" | "$or" | "$nor") => {
                        let subs: Result<Vec<Value>> = items
                            .iter()
                            .map(|i| self.sanitize_level(i, depth + 1))
                            .collect();
                        Value::Array(subs?)
                    }
                    Value::Object(_) if matches!(k.as_str(), "$not" | "$elemMatch") => {
                        self.sanitize_level(v, depth + 1)?
                    }
                    other => other.clone(),
                };
                out.insert(k.clone(), sv);
            } else {
                let real = self.resolve_field(k).to_string();
                let sv = if let Some(sub) = v.as_object() {
                    if sub.keys().any(|sk| sk.starts_with('$')) {
                        self.sanitize_level(v, depth + 1)?
                    } else {
                        v.clone()
                    }
                } else {
                    v.clone()
                };
                out.insert(real, sv);
            }
        }
        Ok(Value::Object(out))
    }

    /// Query a collection with criteria + requested properties, both in
    /// alias space — the pymatgen `MPRester.query(criteria, properties)`
    /// shape.
    pub fn query(
        &self,
        collection: &str,
        criteria: &Value,
        properties: &[&str],
        limit: Option<usize>,
    ) -> Result<Docs> {
        let (rows, _cached) = self.query_cached(collection, criteria, properties, limit)?;
        // Cloning `Docs` copies Arc handles, not documents.
        Ok(rows.as_ref().clone())
    }

    /// Like [`query`](Self::query), but read-through the result cache:
    /// returns the (shared) result rows plus whether they were served
    /// from the cache. A cache hit is only possible while the backing
    /// collection's version counter is unchanged since the entry was
    /// stored — every write bumps it, so hits never serve pre-write
    /// data.
    ///
    /// The cache is keyed on the **raw** request — canonicalized
    /// criteria, property list, limit, collection name, all pre-alias,
    /// pre-sanitize — so the probe runs *before* sanitization. That is
    /// sound because an entry can only exist if an identical raw request
    /// previously passed sanitize and produced these rows (an alias edit
    /// changes what a raw request means, so alias installers clear the
    /// cache), and it is what makes hits O(1): sanitize rebuilds the
    /// filter object and walks it through the static analyzer on every
    /// call, allocation churn that used to scale a "hit" with the size
    /// of whatever scan ran before it. A hit now touches one small key
    /// buffer, one version load, and one cache probe — it clones `Arc`
    /// handles, never documents.
    pub fn query_cached(
        &self,
        collection: &str,
        criteria: &Value,
        properties: &[&str],
        limit: Option<usize>,
    ) -> Result<(Arc<Docs>, bool)> {
        use std::fmt::Write as _;
        let mut key = String::with_capacity(96);
        key.push_str(collection);
        key.push('|');
        if let Some(l) = limit {
            let _ = write!(key, "{l}");
        }
        key.push('|');
        for p in properties {
            key.push_str(p);
            key.push(',');
        }
        key.push('|');
        canonical_json(criteria, &mut key);
        let real_coll = self.resolve_collection(collection);
        let coll = self.db.collection(real_coll);
        // Snapshot the version *before* running the query: a write
        // racing the scan can only make this entry stale (dropped on
        // the next probe), never let a hit serve pre-write rows as
        // current.
        let generation = coll.version();
        if let Some(rows) = self.cache.get(&key, generation) {
            self.db.profiler().bump("cache.hit");
            return Ok((rows, true));
        }
        self.db.profiler().bump("cache.miss");
        let filter = self.sanitize(criteria)?;
        let real_props: Vec<&str> = properties.iter().map(|p| self.resolve_field(p)).collect();
        let mut opts = FindOptions::all();
        if let Some(l) = limit {
            opts = opts.limit(l);
        }
        if !real_props.is_empty() {
            opts = opts.project(&real_props);
        }
        let rows = Arc::new(coll.find_with(&filter, &opts)?);
        self.cache.put(key, generation, Arc::clone(&rows));
        Ok((rows, false))
    }

    /// Hit/miss/invalidation/eviction counters of the query cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Explain a query through the abstraction layer: alias-resolve and
    /// sanitize the criteria, then report the collection's chosen access
    /// path, its cost, the considered alternatives, and the executor's
    /// seq-vs-parallel verdict for the estimated candidate set (the
    /// `"exec"` object — see DESIGN §14), without running the scan.
    pub fn explain(&self, collection: &str, criteria: &Value) -> Result<Value> {
        let real = self.resolve_collection(collection).to_string();
        let filter = self.sanitize(criteria)?;
        self.db.collection(&real).explain(&filter)
    }

    /// Count documents matching sanitized criteria.
    pub fn count(&self, collection: &str, criteria: &Value) -> Result<usize> {
        let real = self.resolve_collection(collection).to_string();
        let filter = self.sanitize(criteria)?;
        self.db.collection(&real).count(&filter)
    }

    /// Sanitize a raw aggregation pipeline: every stage must be a
    /// single-operator object drawn from the stage whitelist, and every
    /// `$match` body passes the same [`sanitize`](Self::sanitize) gate
    /// as query filters (operator whitelist, depth bound, aliasing,
    /// static-analysis rejection) before it can reach `Filter::parse`.
    pub fn sanitize_pipeline(&self, raw: &Value) -> Result<Value> {
        const ALLOWED_STAGES: &[&str] = &[
            "$match", "$project", "$unwind", "$group", "$sort", "$limit", "$count",
        ];
        let arr = raw
            .as_array()
            .ok_or_else(|| StoreError::BadQuery("pipeline must be an array".into()))?;
        let mut out = Vec::with_capacity(arr.len());
        for st in arr {
            let obj = st
                .as_object()
                .ok_or_else(|| StoreError::BadQuery("stage must be an object".into()))?;
            if obj.len() != 1 {
                return Err(StoreError::BadQuery(
                    "each stage must have exactly one operator".into(),
                ));
            }
            let mut stage = Map::new();
            for (op, spec) in obj {
                if !ALLOWED_STAGES.contains(&op.as_str()) {
                    return Err(StoreError::BadQuery(format!("stage {op} not permitted")));
                }
                let spec = if op == "$match" {
                    self.sanitize(spec)?
                } else {
                    spec.clone()
                };
                stage.insert(op.clone(), spec);
            }
            out.push(Value::Object(stage));
        }
        Ok(Value::Array(out))
    }

    /// Run an aggregation pipeline through the abstraction layer. The
    /// collection name is alias-resolved and the pipeline passes
    /// [`sanitize_pipeline`](Self::sanitize_pipeline) — aggregation
    /// callers get the same "all queries go through the QueryEngine"
    /// guarantee as `query`/`count` instead of talking to the
    /// collection directly.
    pub fn aggregate(&self, collection: &str, pipeline: &Value) -> Result<Docs> {
        let real = self.resolve_collection(collection).to_string();
        let clean = self.sanitize_pipeline(pipeline)?;
        self.db.collection(&real).aggregate(&clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn engine() -> QueryEngine {
        let db = Database::new();
        let mats = db.collection("materials");
        mats.insert_many(vec![
            json!({"_id": "mp-1", "formula": "Fe2O3", "elements": ["Fe", "O"],
                   "output": {"energy": -67.5, "energy_per_atom": -6.75, "band_gap": 2.0}}),
            json!({"_id": "mp-2", "formula": "LiFePO4", "elements": ["Li", "Fe", "P", "O"],
                   "output": {"energy": -191.0, "energy_per_atom": -6.8, "band_gap": 3.5}}),
        ])
        .unwrap();
        QueryEngine::new(db)
    }

    #[test]
    fn aggregate_sanitizes_match_and_resolves_aliases() {
        let qe = engine();
        let out = qe
            .aggregate(
                "materials",
                &json!([
                    {"$match": {"band_gap": {"$gt": 1.0}}},
                    {"$group": {"_id": null, "n": {"$count": true}}},
                ]),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0]["n"], json!(2));
    }

    #[test]
    fn aggregate_rejects_where_inside_match() {
        let qe = engine();
        let err = qe.aggregate("materials", &json!([{"$match": {"$where": "evil()"}}]));
        assert!(matches!(err, Err(StoreError::BadQuery(_))), "{err:?}");
    }

    #[test]
    fn aggregate_rejects_unknown_stage() {
        let qe = engine();
        let err = qe.aggregate("materials", &json!([{"$merge": {"into": "other"}}]));
        assert!(matches!(err, Err(StoreError::BadQuery(_))), "{err:?}");
        let err = qe.aggregate("materials", &json!([{"$match": {}, "$limit": 1}]));
        assert!(matches!(err, Err(StoreError::BadQuery(_))), "two ops");
    }

    #[test]
    fn alias_translation_in_query() {
        let qe = engine();
        let hits = qe
            .query("materials", &json!({"band_gap": {"$gt": 3.0}}), &[], None)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0]["formula"], "LiFePO4");
    }

    #[test]
    fn property_projection_uses_aliases() {
        let qe = engine();
        let hits = qe
            .query("materials", &json!({"formula": "Fe2O3"}), &["energy"], None)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0]["output"]["energy"], json!(-67.5));
        assert!(hits[0].get("elements").is_none(), "projection drops others");
    }

    #[test]
    fn where_operator_rejected() {
        let qe = engine();
        let err = qe.query("materials", &json!({"$where": "evil()"}), &[], None);
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
        let err = qe.query("materials", &json!({"f": {"$where": "x"}}), &[], None);
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn deep_nesting_rejected() {
        let qe = engine();
        let mut q = json!({"a": 1});
        for _ in 0..12 {
            q = json!({ "$and": [q] });
        }
        assert!(qe.query("materials", &q, &[], None).is_err());
    }

    #[test]
    fn nested_logical_operators_sanitized_recursively() {
        let qe = engine();
        let q = json!({"$or": [{"band_gap": {"$gt": 3.0}}, {"formula": "Fe2O3"}]});
        let hits = qe.query("materials", &q, &[], None).unwrap();
        assert_eq!(hits.len(), 2);
        // And an evil operator hidden inside a $or is still caught.
        let evil = json!({"$or": [{"x": {"$where": "boom"}}]});
        assert!(qe.query("materials", &evil, &[], None).is_err());
    }

    #[test]
    fn collection_alias() {
        let mut qe = engine();
        qe.alias_collection("mats", "materials");
        assert_eq!(qe.count("mats", &json!({})).unwrap(), 2);
    }

    #[test]
    fn limit_respected() {
        let qe = engine();
        let hits = qe.query("materials", &json!({}), &[], Some(1)).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn non_object_filter_rejected() {
        let qe = engine();
        assert!(qe.query("materials", &json!([1, 2]), &[], None).is_err());
        assert!(qe.query("materials", &json!("str"), &[], None).is_err());
    }

    #[test]
    fn always_false_query_rejected_by_sanitize() {
        let qe = engine();
        let err = qe.query(
            "materials",
            &json!({"band_gap": {"$gt": 5, "$lt": 3}}),
            &[],
            None,
        );
        match err {
            Err(StoreError::BadQuery(msg)) => assert!(msg.contains("Q002"), "{msg}"),
            other => panic!("expected BadQuery(Q002), got {other:?}"),
        }
        let err = qe.query("materials", &json!({"formula": {"$in": []}}), &[], None);
        assert!(matches!(err, Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn query_cache_hits_and_write_invalidation() {
        let qe = engine();
        let crit = json!({"band_gap": {"$gt": 1.0}});
        let (rows1, hit1) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(!hit1, "first read is a miss");
        assert_eq!(rows1.len(), 2);
        let (rows2, hit2) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(hit2, "repeat read is a hit");
        assert!(Arc::ptr_eq(&rows1, &rows2), "hit shares the cached rows");
        assert_eq!(qe.database().profiler().counter("cache.hit"), 1);
        // A write to the collection bumps its version: the entry is
        // stale and the next read recomputes.
        qe.database()
            .collection("materials")
            .insert_one(json!({"formula": "NaCl", "output": {"band_gap": 5.0}}))
            .unwrap();
        let (rows3, hit3) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(!hit3, "write must invalidate the cached entry");
        assert_eq!(rows3.len(), 3);
        let st = qe.cache_stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.invalidations, 1);
    }

    #[test]
    fn drop_and_recreate_cannot_serve_stale_cached_rows() {
        let qe = engine();
        let crit = json!({"band_gap": {"$gt": 1.0}});
        let (rows1, _) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert_eq!(rows1.len(), 2);
        // Drop the whole collection and rebuild it with one different
        // document. The successor collection seeds its generation above
        // the dropped one's final version (the registry floor), so the
        // cached (key, generation) pair can never alias the rebuilt
        // collection — a hit here would serve two dropped documents.
        assert!(qe.database().drop_collection("materials"));
        qe.database()
            .collection("materials")
            .insert_one(json!({"_id": "mp-9", "formula": "LiCoO2",
                               "output": {"band_gap": 2.7}}))
            .unwrap();
        let (rows2, hit2) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(
            !hit2,
            "recreated collection must not serve the dropped collection's cached rows"
        );
        assert_eq!(rows2.len(), 1);
        assert_eq!(rows2[0]["formula"], json!("LiCoO2"));
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let qe = engine();
        let a = json!({"band_gap": {"$gt": 1.0}, "formula": "Fe2O3"});
        let b = json!({"formula": "Fe2O3", "band_gap": {"$gt": 1.0}});
        let (_, h1) = qe.query_cached("materials", &a, &[], None).unwrap();
        assert!(!h1);
        let (_, h2) = qe.query_cached("materials", &b, &[], None).unwrap();
        assert!(h2, "key-order permutations must share one cache slot");
        // Projection and limit are part of the key, though.
        let (_, h3) = qe.query_cached("materials", &a, &["energy"], None).unwrap();
        assert!(!h3, "projection changes the key");
        let (_, h4) = qe.query_cached("materials", &a, &[], Some(1)).unwrap();
        assert!(!h4, "limit changes the key");
    }

    #[test]
    fn alias_edit_invalidates_raw_keyed_cache() {
        let mut qe = engine();
        let crit = json!({"band_gap": {"$gt": 1.0}});
        let (rows1, h1) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(!h1);
        assert_eq!(rows1.len(), 2);
        let (_, h2) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(h2);
        // Repoint the alias: the same raw request now means a different
        // query, so the raw-keyed entry must not survive.
        qe.alias_field("band_gap", "no.such.path");
        let (rows3, h3) = qe.query_cached("materials", &crit, &[], None).unwrap();
        assert!(!h3, "alias edit must clear raw-keyed entries");
        assert!(rows3.is_empty(), "repointed alias matches nothing");
    }

    #[test]
    fn invalid_requests_are_never_cached_and_always_rejected() {
        let qe = engine();
        // A rejected query must be rejected again on the retry — the
        // probe-before-sanitize path can only hit entries stored by a
        // request that already passed sanitize.
        for _ in 0..2 {
            let err = qe.query_cached("materials", &json!({"$where": "evil()"}), &[], None);
            assert!(matches!(err, Err(StoreError::BadQuery(_))), "{err:?}");
        }
        assert_eq!(qe.cache_stats().hits, 0);
    }

    #[test]
    fn explain_reports_plan_and_exec_decision() {
        let qe = engine();
        let ex = qe
            .explain("materials", &json!({"band_gap": {"$gt": 1.0}}))
            .unwrap();
        assert_eq!(ex["plan"], json!("COLLSCAN"));
        // Aliases resolved before planning.
        let paths = ex["filter_paths"].to_string();
        assert!(paths.contains("output.band_gap"), "{paths}");
        let mode = ex["exec"]["mode"].as_str().unwrap();
        assert!(mode == "sequential" || mode == "parallel_morsels", "{mode}");
        assert!(ex["exec"]["slots"].as_u64().unwrap() >= 1);
        // And the sanitize gate still guards explain.
        assert!(qe.explain("materials", &json!({"$where": "x"})).is_err());
    }

    #[test]
    fn lint_for_reports_schema_findings() {
        let qe = engine();
        // Typo'd field: warned with a did-you-mean against aliases/schema.
        let diags = qe
            .lint_for("materials", &json!({"band_gapp": 2.0}))
            .unwrap();
        assert!(diags.iter().any(|d| d.code == "Q003"), "{diags:?}");
        // Type mismatch against the inferred schema is an error.
        let diags = qe
            .lint_for("materials", &json!({"formula": {"$gt": 3}}))
            .unwrap();
        assert!(mp_lint::has_errors(&diags), "{diags:?}");
        // A clean aliased query lints clean apart from the unindexed scan.
        let diags = qe
            .lint_for("materials", &json!({"band_gap": {"$gt": 2.0}}))
            .unwrap();
        assert!(diags.iter().all(|d| d.code == "Q004"), "{diags:?}");
    }

    #[test]
    fn lint_for_flags_forced_collscans() {
        let qe = engine();
        // No sargable predicate: no index could ever serve this.
        let diags = qe
            .lint_for("materials", &json!({"formula": {"$regex": "Fe"}}))
            .unwrap();
        assert!(diags.iter().any(|d| d.code == "P001"), "{diags:?}");
        // Sargable queries are Q004's territory at worst, never P001.
        let diags = qe
            .lint_for("materials", &json!({"formula": "Fe2O3"}))
            .unwrap();
        assert!(diags.iter().all(|d| d.code != "P001"), "{diags:?}");
    }
}
