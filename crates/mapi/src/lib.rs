//! # mp-mapi — data dissemination: QueryEngine, Materials API, auth,
//! rate limiting, sandboxes, and derived-view builders
//!
//! The paper's §III-D and §IV-D components:
//!
//! * [`queryengine`] — the sanitizing/aliasing abstraction layer every
//!   query passes through (§III-B4);
//! * [`rest`] — the Materials API router
//!   (`/rest/v1/materials/Fe2O3/vasp/energy`, Fig. 4);
//! * [`auth`] — third-party-delegated identity and API keys (§IV-D1);
//! * [`ratelimit`] — anti-scraping token buckets (§IV-D1);
//! * [`weblog`] — query-latency capture behind Fig. 5;
//! * [`builder`] — the tasks→materials MapReduce view builder (§III-B3)
//!   and MapReduce-based V&V checks (§IV-C2);
//! * [`sandbox`] — user-private data areas with publish flow (Fig. 3).

pub mod auth;
pub mod builder;
pub mod client;
pub mod error;
pub mod queryengine;
pub mod ratelimit;
pub mod rest;
pub mod sandbox;
pub mod weblog;
pub mod webui;

pub use auth::{visibility_filter, Account, AuthError, AuthRegistry, Provider, ProviderAssertion};
pub use builder::{build_materials_view, run_vnv_checks, vnv_clean, VnvViolations};
pub use client::{ClientError, MpClient};
pub use error::ApiError;
pub use queryengine::QueryEngine;
pub use ratelimit::{RateLimitConfig, RateLimiter};
pub use rest::{ApiRequest, ApiResponse, MaterialsApi};
pub use sandbox::Sandbox;
pub use weblog::{WebLog, WebQuery};
pub use webui::{render_bands_svg, render_binary_hull_svg, render_dos_svg, render_xrd_svg, WebUi};
