//! NUMA placement for datastore processes (§IV-A2).
//!
//! "Recent systems used in HPC systems provide a Non-Uniform Memory
//! Access (NUMA) architecture. ... Databases such as MongoDB, where a
//! single multi-threaded process uses most of the system's memory, are
//! atypical workloads for these systems. Using the numactl program, it
//! is possible to interleave the allocated memory with a minimal impact
//! to performance."
//!
//! This module models exactly that trade-off: a multi-socket node, a
//! big-memory single process, and the mean memory-access latency under
//! the default first-touch policy vs `numactl --interleave`.

use serde_json::json;
use serde_json::Value;

/// A multi-socket NUMA node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaNode {
    /// Number of sockets (NUMA domains).
    pub sockets: u32,
    /// Memory per socket (GB).
    pub mem_per_socket_gb: f64,
    /// Local-access latency (ns).
    pub local_ns: f64,
    /// Remote-access latency (ns).
    pub remote_ns: f64,
}

impl Default for NumaNode {
    fn default() -> Self {
        // A 2012-era four-socket box: ~100 ns local, ~1.6x remote.
        NumaNode {
            sockets: 4,
            mem_per_socket_gb: 16.0,
            local_ns: 100.0,
            remote_ns: 160.0,
        }
    }
}

/// Memory placement policy for the datastore process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPolicy {
    /// Default first-touch: allocations fill the process's home socket,
    /// then spill to the others in order.
    FirstTouch,
    /// `numactl --interleave=all`: pages round-robin across sockets.
    Interleave,
}

impl NumaNode {
    /// Mean memory-access latency (ns) for a single-threaded process
    /// with a resident working set of `working_set_gb`, assuming uniform
    /// access over its pages and the process pinned to socket 0.
    pub fn mean_latency_ns(&self, policy: MemPolicy, working_set_gb: f64) -> f64 {
        let total = self.mem_per_socket_gb * self.sockets as f64;
        let ws = working_set_gb.min(total).max(0.0);
        if ws == 0.0 {
            return self.local_ns;
        }
        match policy {
            MemPolicy::FirstTouch => {
                // Local fraction = what fits on the home socket.
                let local = ws.min(self.mem_per_socket_gb);
                let remote = ws - local;
                (local * self.local_ns + remote * self.remote_ns) / ws
            }
            MemPolicy::Interleave => {
                // 1/sockets of pages are local, the rest remote —
                // independent of working-set size.
                let f_local = 1.0 / self.sockets as f64;
                f_local * self.local_ns + (1.0 - f_local) * self.remote_ns
            }
        }
    }

    /// Relative throughput of a memory-bound datastore under a policy
    /// (1.0 = all-local ideal).
    pub fn relative_throughput(&self, policy: MemPolicy, working_set_gb: f64) -> f64 {
        self.local_ns / self.mean_latency_ns(policy, working_set_gb)
    }

    /// The experiment of §IV-A2 in one call: sweep the working set and
    /// report (ws_gb, first_touch_throughput, interleave_throughput).
    pub fn policy_sweep(&self, points: usize) -> Vec<(f64, f64, f64)> {
        let total = self.mem_per_socket_gb * self.sockets as f64;
        (1..=points)
            .map(|i| {
                let ws = total * i as f64 / points as f64;
                (
                    ws,
                    self.relative_throughput(MemPolicy::FirstTouch, ws),
                    self.relative_throughput(MemPolicy::Interleave, ws),
                )
            })
            .collect()
    }

    /// Summary document for experiment harnesses.
    pub fn to_doc(&self) -> Value {
        json!({
            "sockets": self.sockets,
            "mem_per_socket_gb": self.mem_per_socket_gb,
            "local_ns": self.local_ns,
            "remote_ns": self.remote_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_prefers_first_touch() {
        let node = NumaNode::default();
        // Fits on one socket: first-touch is all-local and beats
        // interleave.
        let ft = node.relative_throughput(MemPolicy::FirstTouch, 8.0);
        let il = node.relative_throughput(MemPolicy::Interleave, 8.0);
        assert!((ft - 1.0).abs() < 1e-12);
        assert!(il < ft);
    }

    #[test]
    fn big_working_set_prefers_interleave_consistency() {
        let node = NumaNode::default();
        // A DB using most of the machine (the paper's scenario): the
        // two policies converge, and interleave is never much worse —
        // "a minimal impact to performance".
        let full = node.mem_per_socket_gb * node.sockets as f64;
        let ft = node.relative_throughput(MemPolicy::FirstTouch, full);
        let il = node.relative_throughput(MemPolicy::Interleave, full);
        assert!((il - ft).abs() / ft < 0.05, "ft {ft} il {il}");
    }

    #[test]
    fn interleave_is_working_set_independent() {
        let node = NumaNode::default();
        let a = node.mean_latency_ns(MemPolicy::Interleave, 4.0);
        let b = node.mean_latency_ns(MemPolicy::Interleave, 60.0);
        assert!((a - b).abs() < 1e-12, "interleave latency must be flat");
    }

    #[test]
    fn first_touch_degrades_past_one_socket() {
        let node = NumaNode::default();
        let within = node.mean_latency_ns(MemPolicy::FirstTouch, 16.0);
        let spill = node.mean_latency_ns(MemPolicy::FirstTouch, 32.0);
        assert!(spill > within);
        assert_eq!(within, node.local_ns);
    }

    #[test]
    fn sweep_crosses_over() {
        // Somewhere past one socket's worth, interleave becomes the
        // better *predictable* choice: the gap to first-touch shrinks
        // monotonically.
        let node = NumaNode::default();
        let sweep = node.policy_sweep(8);
        assert_eq!(sweep.len(), 8);
        let gaps: Vec<f64> = sweep.iter().map(|(_, ft, il)| ft - il).collect();
        assert!(gaps.windows(2).all(|w| w[1] <= w[0] + 1e-12), "{gaps:?}");
        // At the high end the penalty is small.
        assert!(gaps.last().unwrap().abs() < 0.05);
    }

    #[test]
    fn empty_working_set_is_local() {
        let node = NumaNode::default();
        assert_eq!(
            node.mean_latency_ns(MemPolicy::FirstTouch, 0.0),
            node.local_ns
        );
        // Interleave of a zero working set is degenerate; we report the
        // steady-state interleave latency for consistency.
        assert!(node.mean_latency_ns(MemPolicy::Interleave, 0.0) >= node.local_ns);
    }
}
