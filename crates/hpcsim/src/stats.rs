//! Aggregate statistics over batch simulations.

use crate::batch::{JobEnd, JobRecord};
use serde::{Deserialize, Serialize};

/// Summary of one simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Total requests.
    pub total: usize,
    /// Completed cleanly.
    pub completed: usize,
    /// Killed at walltime.
    pub walltime_killed: usize,
    /// Killed for memory.
    pub memory_killed: usize,
    /// Rejected at the queue.
    pub rejected: usize,
    /// Mean queue wait of started jobs (s).
    pub mean_wait_s: f64,
    /// Max queue wait (s).
    pub max_wait_s: f64,
    /// Sum of consumed node-seconds.
    pub node_seconds: f64,
    /// Makespan: last end time (s).
    pub makespan_s: f64,
    /// Completed-job throughput (jobs/hour of makespan).
    pub throughput_per_hour: f64,
}

/// Compute stats from job records.
pub fn summarize(records: &[JobRecord]) -> CampaignStats {
    let total = records.len();
    let mut completed = 0;
    let mut walltime_killed = 0;
    let mut memory_killed = 0;
    let mut rejected = 0;
    let mut waits: Vec<f64> = Vec::new();
    let mut node_seconds = 0.0;
    let mut makespan: f64 = 0.0;
    for r in records {
        match r.outcome {
            JobEnd::Completed => completed += 1,
            JobEnd::WalltimeExceeded => walltime_killed += 1,
            JobEnd::MemoryExceeded => memory_killed += 1,
            JobEnd::QueueRejected => rejected += 1,
        }
        if let Some(start) = r.start_time {
            waits.push(r.wait_time());
            node_seconds += (r.end_time - start) * r.request.nodes as f64;
        }
        makespan = makespan.max(r.end_time);
    }
    let mean_wait_s = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let max_wait_s = waits.iter().cloned().fold(0.0f64, f64::max);
    CampaignStats {
        total,
        completed,
        walltime_killed,
        memory_killed,
        rejected,
        mean_wait_s,
        max_wait_s,
        node_seconds,
        makespan_s: makespan,
        throughput_per_hour: if makespan > 0.0 {
            completed as f64 / (makespan / 3600.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::JobRequest;

    fn rec(outcome: JobEnd, start: Option<f64>, end: f64) -> JobRecord {
        JobRecord {
            request: JobRequest {
                id: "j".into(),
                user: "u".into(),
                submit_time: 0.0,
                walltime_s: 100.0,
                nodes: 2,
                actual_runtime_s: 50.0,
                actual_mem_gb: 1.0,
            },
            start_time: start,
            end_time: end,
            outcome,
        }
    }

    #[test]
    fn counts_and_means() {
        let records = vec![
            rec(JobEnd::Completed, Some(10.0), 60.0),
            rec(JobEnd::WalltimeExceeded, Some(0.0), 100.0),
            rec(JobEnd::QueueRejected, None, 0.0),
        ];
        let s = summarize(&records);
        assert_eq!(s.total, 3);
        assert_eq!(s.completed, 1);
        assert_eq!(s.walltime_killed, 1);
        assert_eq!(s.rejected, 1);
        assert!((s.mean_wait_s - 5.0).abs() < 1e-9);
        assert!((s.node_seconds - (50.0 * 2.0 + 100.0 * 2.0)).abs() < 1e-9);
        assert_eq!(s.makespan_s, 100.0);
    }

    #[test]
    fn empty_records() {
        let s = summarize(&[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.throughput_per_hour, 0.0);
    }
}
