//! PBS-flavoured batch scheduler: discrete-event simulation with
//! per-user queued-job limits, advance reservations, FIFO + EASY
//! backfill, and walltime/memory enforcement.
//!
//! §IV-A1: "Most HPC systems allow only a handful of queued jobs per
//! user ... In the MP, we worked with NERSC to get advanced reservations
//! that temporarily suspended these limits."

use crate::cluster::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A job submitted to the queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Caller-chosen id, carried through to the outcome.
    pub id: String,
    /// Submitting user.
    pub user: String,
    /// Submission time (sim seconds).
    pub submit_time: f64,
    /// Requested walltime (s) — exceeding it gets the job killed.
    pub walltime_s: f64,
    /// Requested nodes.
    pub nodes: u32,
    /// True runtime the job needs (s); unknown to the scheduler.
    pub actual_runtime_s: f64,
    /// True peak memory per node (GB); unknown to the scheduler.
    pub actual_mem_gb: f64,
}

/// Why a job left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobEnd {
    /// Ran to completion within its allocation.
    Completed,
    /// Killed at the walltime limit (§III-C3 "re-runs" trigger).
    WalltimeExceeded,
    /// Killed by the OOM killer.
    MemoryExceeded,
    /// Never entered the queue: the per-user queued-job cap was hit.
    QueueRejected,
}

/// Full record of one job's passage through the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The originating request.
    pub request: JobRequest,
    /// When it started (None for rejected jobs).
    pub start_time: Option<f64>,
    /// When it ended (rejection time for rejected jobs).
    pub end_time: f64,
    /// How it ended.
    pub outcome: JobEnd,
}

impl JobRecord {
    /// Queue wait (s); zero for rejected jobs.
    pub fn wait_time(&self) -> f64 {
        self.start_time
            .map(|s| s - self.request.submit_time)
            .unwrap_or(0.0)
    }
}

/// An advance reservation: a user whose queued-job cap is suspended
/// inside a time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    /// Beneficiary user.
    pub user: String,
    /// Window start (sim s).
    pub start: f64,
    /// Window end (sim s).
    pub end: f64,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Per-user cap on jobs simultaneously waiting in the queue
    /// (the paper's "handful"); `None` disables the cap.
    pub max_queued_per_user: Option<usize>,
    /// Enable EASY backfill behind the FIFO head.
    pub backfill: bool,
    /// Advance reservations in force.
    pub reservations: Vec<Reservation>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_queued_per_user: Some(8),
            backfill: true,
            reservations: Vec::new(),
        }
    }
}

/// The discrete-event batch simulator.
pub struct BatchSimulator {
    cluster: ClusterSpec,
    config: BatchConfig,
}

#[derive(Debug, Clone)]
struct Running {
    idx: usize,
    start: f64,
    end: f64,
    kill: Option<JobEnd>,
    nodes: u32,
}

impl BatchSimulator {
    /// Build a simulator for one cluster.
    pub fn new(cluster: ClusterSpec, config: BatchConfig) -> Self {
        BatchSimulator { cluster, config }
    }

    fn cap_waived(&self, user: &str, t: f64) -> bool {
        self.config
            .reservations
            .iter()
            .any(|r| r.user == user && r.start <= t && t < r.end)
    }

    /// Simulate a fixed set of submissions to completion. Returns one
    /// record per request, in input order.
    pub fn run(&self, mut requests: Vec<JobRequest>) -> Vec<JobRecord> {
        let n = requests.len();
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| {
                requests[a]
                    .submit_time
                    .partial_cmp(&requests[b].submit_time)
                    .expect("finite times")
            });
            idx
        };
        for r in &mut requests {
            r.nodes = r.nodes.max(1);
        }

        let mut records: Vec<Option<JobRecord>> = vec![None; n];
        let mut queue: Vec<usize> = Vec::new(); // FIFO of request indices
        let mut running: Vec<Running> = Vec::new();
        let mut free_nodes = self.cluster.nodes;
        let mut queued_per_user: BTreeMap<String, usize> = BTreeMap::new();
        let mut next_submit = 0usize;
        let mut now = 0.0f64;

        loop {
            // Next event: a submission or a running-job end.
            let t_submit = (next_submit < n).then(|| requests[order[next_submit]].submit_time);
            let t_end = running.iter().map(|r| r.end).fold(f64::INFINITY, f64::min);
            let t_next = match (t_submit, t_end.is_finite()) {
                (Some(ts), true) => ts.min(t_end),
                (Some(ts), false) => ts,
                (None, true) => t_end,
                (None, false) => break,
            };
            now = t_next.max(now);

            // Process submissions at `now`.
            while next_submit < n && requests[order[next_submit]].submit_time <= now {
                let i = order[next_submit];
                next_submit += 1;
                let req = &requests[i];
                let qcount = queued_per_user.get(&req.user).copied().unwrap_or(0);
                let capped = self
                    .config
                    .max_queued_per_user
                    .map(|cap| qcount >= cap)
                    .unwrap_or(false);
                if capped && !self.cap_waived(&req.user, now) {
                    records[i] = Some(JobRecord {
                        request: req.clone(),
                        start_time: None,
                        end_time: now,
                        outcome: JobEnd::QueueRejected,
                    });
                    continue;
                }
                *queued_per_user.entry(req.user.clone()).or_insert(0) += 1;
                queue.push(i);
            }

            // Process job ends at `now`.
            let mut still_running = Vec::with_capacity(running.len());
            for r in running.drain(..) {
                if r.end <= now + 1e-9 {
                    free_nodes += r.nodes;
                    let req = &requests[r.idx];
                    let outcome = r.kill.unwrap_or(JobEnd::Completed);
                    records[r.idx] = Some(JobRecord {
                        request: req.clone(),
                        start_time: Some(r.start),
                        end_time: r.end,
                        outcome,
                    });
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;

            // Scheduling pass: FIFO head first, then (optionally) EASY
            // backfill against the head job's shadow time.
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(&head) = queue.first() else { break };
                let req = &requests[head];
                if req.nodes <= free_nodes {
                    queue.remove(0);
                    *queued_per_user.get_mut(&req.user).expect("queued") -= 1;
                    running.push(Self::start(req, head, now, &self.cluster));
                    free_nodes -= req.nodes;
                    continue;
                }
                // Head blocked. Backfill smaller jobs that finish before
                // the head could start.
                if self.config.backfill {
                    let shadow = Self::shadow_time(&running, free_nodes, req.nodes);
                    let mut bf: Option<usize> = None;
                    for (qpos, &cand) in queue.iter().enumerate().skip(1) {
                        let c = &requests[cand];
                        if c.nodes <= free_nodes && now + c.walltime_s <= shadow + 1e-9 {
                            bf = Some(qpos);
                            break;
                        }
                    }
                    if let Some(qpos) = bf {
                        let cand = queue.remove(qpos);
                        let c = &requests[cand];
                        *queued_per_user.get_mut(&c.user).expect("queued") -= 1;
                        running.push(Self::start(c, cand, now, &self.cluster));
                        free_nodes -= c.nodes;
                        continue;
                    }
                }
                break;
            }

            if next_submit >= n && running.is_empty() && queue.is_empty() {
                break;
            }
            // Jobs stuck in queue forever (bigger than the machine):
            if next_submit >= n && running.is_empty() && !queue.is_empty() {
                for i in queue.drain(..) {
                    let req = &requests[i];
                    records[i] = Some(JobRecord {
                        request: req.clone(),
                        start_time: None,
                        end_time: now,
                        outcome: JobEnd::QueueRejected,
                    });
                }
                break;
            }
        }

        records
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    fn start(req: &JobRequest, idx: usize, now: f64, cluster: &ClusterSpec) -> Running {
        // Memory kill fires early in the run; walltime kill at the limit.
        if req.actual_mem_gb > cluster.mem_per_node_gb {
            let t_kill = now + (req.actual_runtime_s * 0.1).min(req.walltime_s);
            return Running {
                idx,
                start: now,
                end: t_kill,
                kill: Some(JobEnd::MemoryExceeded),
                nodes: req.nodes,
            };
        }
        if req.actual_runtime_s > req.walltime_s {
            return Running {
                idx,
                start: now,
                end: now + req.walltime_s,
                kill: Some(JobEnd::WalltimeExceeded),
                nodes: req.nodes,
            };
        }
        Running {
            idx,
            start: now,
            end: now + req.actual_runtime_s,
            kill: None,
            nodes: req.nodes,
        }
    }

    /// Earliest time at which `needed` nodes could be free, assuming
    /// running jobs exit at their scheduled ends.
    fn shadow_time(running: &[Running], mut free: u32, needed: u32) -> f64 {
        let mut ends: Vec<(f64, u32)> = running.iter().map(|r| (r.end, r.nodes)).collect();
        ends.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for (t, nodes) in ends {
            free += nodes;
            if free >= needed {
                return t;
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: &str, user: &str, submit: f64, wall: f64, actual: f64) -> JobRequest {
        JobRequest {
            id: id.into(),
            user: user.into(),
            submit_time: submit,
            walltime_s: wall,
            nodes: 1,
            actual_runtime_s: actual,
            actual_mem_gb: 1.0,
        }
    }

    fn sim() -> BatchSimulator {
        BatchSimulator::new(ClusterSpec::small(), BatchConfig::default())
    }

    #[test]
    fn single_job_completes() {
        let recs = sim().run(vec![req("j1", "u", 0.0, 100.0, 50.0)]);
        assert_eq!(recs[0].outcome, JobEnd::Completed);
        assert_eq!(recs[0].start_time, Some(0.0));
        assert_eq!(recs[0].end_time, 50.0);
    }

    #[test]
    fn walltime_kill() {
        let recs = sim().run(vec![req("j1", "u", 0.0, 100.0, 500.0)]);
        assert_eq!(recs[0].outcome, JobEnd::WalltimeExceeded);
        assert_eq!(recs[0].end_time, 100.0);
    }

    #[test]
    fn memory_kill() {
        let mut r = req("j1", "u", 0.0, 100.0, 50.0);
        r.actual_mem_gb = 1000.0;
        let recs = sim().run(vec![r]);
        assert_eq!(recs[0].outcome, JobEnd::MemoryExceeded);
    }

    #[test]
    fn fifo_waits_when_cluster_full() {
        // 32 nodes; submit 33 single-node jobs of 100 s each at t=0.
        let jobs: Vec<JobRequest> = (0..33)
            .map(|i| {
                let mut r = req(&format!("j{i}"), &format!("u{i}"), 0.0, 200.0, 100.0);
                r.user = format!("u{i}"); // distinct users: no cap effects
                r
            })
            .collect();
        let recs = sim().run(jobs);
        let completed = recs
            .iter()
            .filter(|r| r.outcome == JobEnd::Completed)
            .count();
        assert_eq!(completed, 33);
        let max_wait = recs.iter().map(|r| r.wait_time()).fold(0.0f64, f64::max);
        assert!(
            (max_wait - 100.0).abs() < 1e-6,
            "33rd job waits one round: {max_wait}"
        );
    }

    #[test]
    fn per_user_queue_cap_rejects() {
        // One user floods 50 jobs at t=0 with cap 8 → 32 can start
        // immediately (cluster has 32 nodes)... but they all *queue*
        // first at the same instant, so only the first 8 enter the queue.
        let jobs: Vec<JobRequest> = (0..50)
            .map(|i| req(&format!("j{i}"), "flooder", 0.0, 200.0, 100.0))
            .collect();
        let recs = sim().run(jobs);
        let rejected = recs
            .iter()
            .filter(|r| r.outcome == JobEnd::QueueRejected)
            .count();
        assert_eq!(
            rejected, 42,
            "cap 8 admits only 8 of 50 simultaneous submissions"
        );
    }

    #[test]
    fn reservation_waives_cap() {
        let mut cfg = BatchConfig::default();
        cfg.reservations.push(Reservation {
            user: "flooder".into(),
            start: 0.0,
            end: 1e9,
        });
        let s = BatchSimulator::new(ClusterSpec::small(), cfg);
        let jobs: Vec<JobRequest> = (0..50)
            .map(|i| req(&format!("j{i}"), "flooder", 0.0, 200.0, 100.0))
            .collect();
        let recs = s.run(jobs);
        assert!(recs.iter().all(|r| r.outcome == JobEnd::Completed));
    }

    #[test]
    fn backfill_lets_small_jobs_jump() {
        // 32-node cluster: a 100 s 32-node job runs; a 32-node job waits
        // at the head; a 1-node 50 s job can backfill.
        let mut wide1 = req("wide1", "a", 0.0, 150.0, 100.0);
        wide1.nodes = 31; // leaves one node idle for backfill
        let mut wide2 = req("wide2", "b", 1.0, 150.0, 100.0);
        wide2.nodes = 32;
        let small = req("small", "c", 2.0, 50.0, 40.0);
        let recs = sim().run(vec![wide1, wide2, small]);
        let small_rec = &recs[2];
        assert_eq!(small_rec.outcome, JobEnd::Completed);
        assert!(
            small_rec.start_time.unwrap() < 100.0,
            "small job should backfill before the second wide job"
        );
        // And the wide job is not delayed beyond the first one's end.
        assert!((recs[1].start_time.unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn no_backfill_when_disabled() {
        let cfg = BatchConfig {
            backfill: false,
            ..BatchConfig::default()
        };
        let s = BatchSimulator::new(ClusterSpec::small(), cfg);
        let mut wide1 = req("wide1", "a", 0.0, 150.0, 100.0);
        wide1.nodes = 31; // leaves one node idle for backfill
        let mut wide2 = req("wide2", "b", 1.0, 150.0, 100.0);
        wide2.nodes = 32;
        let small = req("small", "c", 2.0, 50.0, 40.0);
        let recs = s.run(vec![wide1, wide2, small]);
        assert!(recs[2].start_time.unwrap() >= 200.0 - 1e-6);
    }

    #[test]
    fn oversized_job_eventually_rejected() {
        let mut huge = req("huge", "u", 0.0, 100.0, 50.0);
        huge.nodes = 1000; // bigger than the machine
        let recs = sim().run(vec![huge]);
        assert_eq!(recs[0].outcome, JobEnd::QueueRejected);
    }

    #[test]
    fn wait_times_accumulate_under_load() {
        // 128 jobs from 16 users on 32 nodes.
        let jobs: Vec<JobRequest> = (0..128)
            .map(|i| {
                req(
                    &format!("j{i}"),
                    &format!("u{}", i % 16),
                    (i / 16) as f64,
                    400.0,
                    300.0,
                )
            })
            .collect();
        let recs = sim().run(jobs);
        let completed: Vec<&JobRecord> = recs
            .iter()
            .filter(|r| r.outcome == JobEnd::Completed)
            .collect();
        assert!(completed.len() > 100);
        let mean_wait: f64 =
            completed.iter().map(|r| r.wait_time()).sum::<f64>() / completed.len() as f64;
        assert!(
            mean_wait > 100.0,
            "mean wait {mean_wait} too low for 4× oversubscription"
        );
    }
}
