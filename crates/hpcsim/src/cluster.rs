//! Cluster description: nodes, cores, and memory.

use serde::{Deserialize, Serialize};

/// Static description of an HPC machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Memory per node (GB).
    pub mem_per_node_gb: f64,
}

impl ClusterSpec {
    /// A small Hopper-flavoured test partition.
    pub fn small() -> Self {
        ClusterSpec {
            nodes: 32,
            cores_per_node: 24,
            mem_per_node_gb: 32.0,
        }
    }

    /// A mid-size production partition.
    pub fn medium() -> Self {
        ClusterSpec {
            nodes: 256,
            cores_per_node: 24,
            mem_per_node_gb: 64.0,
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.cores_per_node as u64
    }
}

/// Network reachability policy of the machine (§IV-A2: "most HPC systems
/// are configured such that the internal worker nodes are not allowed to
/// communicate outside the system").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkPolicy {
    /// May compute nodes open connections to the external datastore?
    pub workers_reach_datastore: bool,
    /// Is a proxy/gateway host available (login or DTN node)?
    pub proxy_available: bool,
}

impl Default for NetworkPolicy {
    fn default() -> Self {
        // The production reality the paper describes.
        NetworkPolicy {
            workers_reach_datastore: false,
            proxy_available: true,
        }
    }
}

impl NetworkPolicy {
    /// Can a worker-side component update the datastore, and through
    /// what path?
    pub fn datastore_route(&self) -> Option<DatastoreRoute> {
        if self.workers_reach_datastore {
            Some(DatastoreRoute::Direct)
        } else if self.proxy_available {
            Some(DatastoreRoute::ViaProxy)
        } else {
            None
        }
    }
}

/// How datastore traffic leaves the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatastoreRoute {
    /// Workers talk to the DB directly (not the usual HPC reality).
    Direct,
    /// Through the proxy/gateway host, paying extra latency.
    ViaProxy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs() {
        let c = ClusterSpec::small();
        assert_eq!(c.total_cores(), 32 * 24);
    }

    #[test]
    fn default_policy_requires_proxy() {
        let p = NetworkPolicy::default();
        assert_eq!(p.datastore_route(), Some(DatastoreRoute::ViaProxy));
    }

    #[test]
    fn no_proxy_no_route() {
        let p = NetworkPolicy {
            workers_reach_datastore: false,
            proxy_available: false,
        };
        assert_eq!(p.datastore_route(), None);
    }

    #[test]
    fn direct_when_open() {
        let p = NetworkPolicy {
            workers_reach_datastore: true,
            proxy_available: false,
        };
        assert_eq!(p.datastore_route(), Some(DatastoreRoute::Direct));
    }
}
