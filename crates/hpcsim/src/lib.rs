//! # mp-hpcsim — discrete-event HPC environment simulator
//!
//! The NERSC substitute (see DESIGN.md): a PBS-flavoured batch scheduler
//! with the properties §IV-A of the paper wrestles with — per-user
//! queued-job caps, advance reservations that waive them, walltime and
//! memory kills, EASY backfill — plus task farming ([`taskfarm`]) and
//! the worker-nodes-can't-reach-the-database network policy
//! ([`cluster::NetworkPolicy`]).

pub mod batch;
pub mod cluster;
pub mod numa;
pub mod stats;
pub mod taskfarm;

pub use batch::{BatchConfig, BatchSimulator, JobEnd, JobRecord, JobRequest, Reservation};
pub use cluster::{ClusterSpec, DatastoreRoute, NetworkPolicy};
pub use numa::{MemPolicy, NumaNode};
pub use stats::{summarize, CampaignStats};
pub use taskfarm::{queue_slots_saved, run_farm, FarmOutcome, FarmTask};
