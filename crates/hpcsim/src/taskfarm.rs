//! Task farming: many small calculations inside one batch allocation.
//!
//! §IV-A1: "we address these limits with *task farming*, where a single
//! job in the queue runs multiple VASP calculations; task farming also
//! smooths large wallclock variations." A farm job occupies its nodes
//! for up to its walltime and pulls tasks off a list; tasks that don't
//! fit in the remaining allocation are returned unfinished.

use serde::{Deserialize, Serialize};

/// One small task to run inside a farm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmTask {
    /// Caller id.
    pub id: String,
    /// Runtime the task needs (s).
    pub runtime_s: f64,
}

/// What happened to each task of a farm allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmOutcome {
    /// Tasks finished inside the allocation, with their completion
    /// offsets from allocation start.
    pub completed: Vec<(String, f64)>,
    /// Tasks that did not fit (to be re-queued).
    pub unfinished: Vec<String>,
    /// Busy time ÷ (walltime × workers): allocation efficiency.
    pub utilization: f64,
    /// Time actually used (s) until the last completed task.
    pub used_walltime_s: f64,
}

/// Pack `tasks` into an allocation of `workers` parallel slots for at
/// most `walltime_s`. Tasks are pulled greedily (longest-first) by
/// whichever slot frees up first — the classic LPT list-scheduling farm.
pub fn run_farm(tasks: &[FarmTask], workers: usize, walltime_s: f64) -> FarmOutcome {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    // Longest-processing-time first improves packing and mimics a farm
    // that grabs big jobs early to avoid stragglers at the wall.
    order.sort_by(|&a, &b| {
        tasks[b]
            .runtime_s
            .partial_cmp(&tasks[a].runtime_s)
            .expect("finite runtimes")
    });

    let mut slot_free = vec![0.0f64; workers];
    let mut completed = Vec::new();
    let mut unfinished = Vec::new();
    let mut busy = 0.0f64;
    for &i in &order {
        let t = &tasks[i];
        // Earliest-free slot.
        let (slot, &free_at) = slot_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("workers >= 1");
        let end = free_at + t.runtime_s;
        if end <= walltime_s + 1e-9 {
            slot_free[slot] = end;
            busy += t.runtime_s;
            completed.push((t.id.clone(), end));
        } else {
            unfinished.push(t.id.clone());
        }
    }
    let used = slot_free.iter().cloned().fold(0.0f64, f64::max);
    FarmOutcome {
        completed,
        unfinished,
        utilization: if walltime_s > 0.0 {
            busy / (walltime_s * workers as f64)
        } else {
            0.0
        },
        used_walltime_s: used,
    }
}

/// How many queue slots a task list needs with vs. without farming —
/// the §IV-A1 queue-pressure argument, quantified.
pub fn queue_slots_saved(num_tasks: usize, tasks_per_farm: usize) -> usize {
    if tasks_per_farm <= 1 {
        return 0;
    }
    num_tasks - num_tasks.div_ceil(tasks_per_farm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: &str, rt: f64) -> FarmTask {
        FarmTask {
            id: id.into(),
            runtime_s: rt,
        }
    }

    #[test]
    fn all_fit() {
        let tasks = vec![task("a", 10.0), task("b", 20.0), task("c", 30.0)];
        let out = run_farm(&tasks, 1, 100.0);
        assert_eq!(out.completed.len(), 3);
        assert!(out.unfinished.is_empty());
        assert_eq!(out.used_walltime_s, 60.0);
    }

    #[test]
    fn overflow_returned_unfinished() {
        let tasks = vec![task("a", 40.0), task("b", 40.0), task("c", 40.0)];
        let out = run_farm(&tasks, 1, 100.0);
        assert_eq!(out.completed.len(), 2);
        assert_eq!(out.unfinished, vec!["c".to_string()]);
    }

    #[test]
    fn parallel_slots_pack() {
        let tasks: Vec<FarmTask> = (0..8).map(|i| task(&format!("t{i}"), 25.0)).collect();
        let out = run_farm(&tasks, 4, 50.0);
        assert_eq!(out.completed.len(), 8);
        assert!((out.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_reduces_stragglers() {
        // One long task + shorties: LPT starts the long one first so the
        // makespan is bounded by it.
        let mut tasks = vec![task("long", 90.0)];
        for i in 0..9 {
            tasks.push(task(&format!("s{i}"), 10.0));
        }
        let out = run_farm(&tasks, 2, 100.0);
        assert_eq!(out.completed.len(), 10);
        assert!((out.used_walltime_s - 90.0).abs() < 1e-9);
    }

    #[test]
    fn farming_smooths_walltime_variance() {
        // §IV-A1: individually, heavy-tailed tasks force everyone to
        // request the max walltime; farmed, the *farm's* runtime
        // concentrates near the mean × count / workers.
        let runtimes = [5.0, 8.0, 120.0, 7.0, 6.0, 95.0, 9.0, 10.0, 4.0, 6.0];
        let tasks: Vec<FarmTask> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &r)| task(&format!("t{i}"), r))
            .collect();
        let total: f64 = runtimes.iter().sum();
        let out = run_farm(&tasks, 2, total); // generous wall
        assert_eq!(out.completed.len(), tasks.len());
        // Makespan close to total/2 (perfect split is 135).
        assert!(
            out.used_walltime_s <= 0.6 * total,
            "{}",
            out.used_walltime_s
        );
    }

    #[test]
    fn queue_slot_arithmetic() {
        assert_eq!(queue_slots_saved(1000, 50), 980);
        assert_eq!(queue_slots_saved(10, 1), 0);
        assert_eq!(queue_slots_saved(7, 3), 4);
    }

    #[test]
    fn zero_walltime_nothing_runs() {
        let out = run_farm(&[task("a", 1.0)], 2, 0.0);
        assert!(out.completed.is_empty());
        assert_eq!(out.unfinished.len(), 1);
    }
}
