//! Ingest-path throughput: MPS records and reduced task documents, with
//! varying index load — the datastore's write-side cost (the paper chose
//! MongoDB accepting "relative weakness for ... write-heavy workloads").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_docstore::Database;
use mp_matsci::IcsdGenerator;
use serde_json::Value;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    let batch: Vec<Value> = IcsdGenerator::new(5)
        .generate(200)
        .iter()
        .map(|r| r.to_doc())
        .collect();
    group.throughput(Throughput::Elements(batch.len() as u64));

    for &nindexes in &[0usize, 2, 5] {
        group.bench_with_input(
            BenchmarkId::new("mps_batch_200", nindexes),
            &nindexes,
            |b, &nix| {
                b.iter(|| {
                    let db = Database::new();
                    db.profiler().set_enabled(false);
                    let coll = db.collection("mps");
                    let paths = ["formula", "chemsys", "elements", "nsites", "nelectrons"];
                    for p in paths.iter().take(nix) {
                        coll.create_index(p, false).unwrap();
                    }
                    for doc in &batch {
                        let mut d = doc.clone();
                        // Strip _id so repeated inserts don't collide.
                        d.as_object_mut().unwrap().remove("_id");
                        coll.insert_one(d).unwrap();
                    }
                    black_box(coll.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
