//! Criterion bench for §IV-B2: builtin single-threaded MapReduce vs the
//! Hadoop-style parallel engine on the materials-view grouping job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_docstore::{BuiltinEngine, HadoopEngine, MapReduce};
use serde_json::{json, Value};
use std::hint::black_box;

fn tasks(n: usize) -> mp_docstore::Docs {
    (0..n)
        .map(|i| {
            std::sync::Arc::new(json!({
                "mps_id": format!("mps-{}", i % (n / 4).max(1)),
                "output": {"energy_per_atom": -(i as f64 % 13.0)},
            }))
        })
        .collect()
}

fn run(engine: &dyn MapReduce, docs: &[std::sync::Arc<Value>]) -> usize {
    let map = |d: &Value, emit: &mut dyn FnMut(Value, Value)| {
        emit(d["mps_id"].clone(), d["output"]["energy_per_atom"].clone());
    };
    let reduce = |_k: &Value, vs: &[Value]| -> Value {
        vs.iter()
            .filter_map(Value::as_f64)
            .fold(f64::INFINITY, f64::min)
            .into()
    };
    engine.run(docs, &map, &reduce).unwrap().len()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let docs = tasks(n);
        // The builtin engine models MongoDB's JS interpreter tax.
        let builtin = BuiltinEngine::with_overhead_ns(15_000);
        let hadoop = HadoopEngine::new(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        );
        group.bench_with_input(BenchmarkId::new("builtin_js", n), &n, |b, _| {
            b.iter(|| black_box(run(&builtin, &docs)))
        });
        group.bench_with_input(BenchmarkId::new("hadoop_parallel", n), &n, |b, _| {
            b.iter(|| black_box(run(&hadoop, &docs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
