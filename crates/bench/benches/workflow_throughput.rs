//! Workflow-engine overhead: claims + state updates per second through
//! the datastore-backed queue — the machinery the paper reports as "a
//! negligible fraction of the time to perform the calculations".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mp_docstore::Database;
use mp_fireworks::{rapidfire, Firework, LaunchPad, LaunchReport, Stage, Workflow};
use serde_json::json;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("workflow_engine");
    group.sample_size(10);
    for &n in &[100usize, 500] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("claim_run_complete", n), &n, |b, &n| {
            b.iter(|| {
                let pad = LaunchPad::new(Database::new()).unwrap();
                let fws: Vec<Firework> = (0..n)
                    .map(|i| {
                        Firework::new(
                            format!("fw{i}"),
                            "j",
                            Stage(json!({"elements": ["Li", "O"], "nelectrons": i})),
                        )
                    })
                    .collect();
                pad.add_workflow(&Workflow::new("wf", fws).unwrap())
                    .unwrap();
                let stats = rapidfire(&pad, "w", &json!({}), usize::MAX, |_| {
                    LaunchReport::Success {
                        task_doc: json!({"output": {"energy": -1.0}}),
                    }
                })
                .unwrap();
                black_box(stats.completed)
            })
        });
        group.bench_with_input(BenchmarkId::new("chain_promotion", n), &n, |b, &n| {
            b.iter(|| {
                // A linear chain exercises the promotion path n times.
                let pad = LaunchPad::new(Database::new()).unwrap();
                let fws: Vec<Firework> = (0..n)
                    .map(|i| {
                        let fw = Firework::new(format!("fw{i}"), "j", Stage(json!({})));
                        if i > 0 {
                            fw.after(&format!("fw{}", i - 1))
                        } else {
                            fw
                        }
                    })
                    .collect();
                pad.add_workflow(&Workflow::new("wf", fws).unwrap())
                    .unwrap();
                let stats = rapidfire(&pad, "w", &json!({}), usize::MAX, |_| {
                    LaunchReport::Success {
                        task_doc: json!({"output": {}}),
                    }
                })
                .unwrap();
                black_box(stats.completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
