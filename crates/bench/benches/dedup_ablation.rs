//! Ablation for §III-C3 duplicate detection: total work to drain a
//! queue containing 30% duplicates, with binders on vs off. With
//! binders the duplicates cost a pointer write instead of a (simulated)
//! calculation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_docstore::Database;
use mp_fireworks::{rapidfire, Binder, Firework, LaunchPad, LaunchReport, Stage, Workflow};
use serde_json::json;
use std::hint::black_box;

/// Build a launchpad holding `n` jobs of which ~30% are duplicates.
fn pad_with_duplicates(n: usize, binders: bool) -> LaunchPad {
    let pad = LaunchPad::new(Database::new()).unwrap();
    let distinct = (n * 7 / 10).max(1);
    let fws: Vec<Firework> = (0..n)
        .map(|i| {
            let identity = i % distinct; // duplicates collide here
            let mut fw = Firework::new(
                format!("fw{i}"),
                "calc",
                Stage(json!({"identity": identity})),
            );
            if binders {
                fw = fw.with_binder(Binder::new(format!("fp-{identity}"), "GGA"));
            }
            fw
        })
        .collect();
    pad.add_workflow(&Workflow::new("wf", fws).unwrap())
        .unwrap();
    pad
}

/// Drain the queue; the executor's spin stands in for the calculation.
fn drain(pad: &LaunchPad) -> usize {
    let stats = rapidfire(pad, "w", &json!({}), usize::MAX, |_doc| {
        // A "calculation": even a cheap DFT run costs orders of
        // magnitude more than any queue bookkeeping, which is exactly
        // why the paper's Binder pointers pay off. ~2 ms of work here.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        black_box(acc);
        LaunchReport::Success {
            task_doc: json!({"output": {"ok": true}}),
        }
    })
    .unwrap();
    stats.completed
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup");
    group.sample_size(10);
    for &n in &[200usize, 600] {
        group.bench_with_input(BenchmarkId::new("without_binders", n), &n, |b, &n| {
            b.iter(|| {
                let pad = pad_with_duplicates(n, false);
                black_box(drain(&pad))
            })
        });
        group.bench_with_input(BenchmarkId::new("with_binders", n), &n, |b, &n| {
            b.iter(|| {
                let pad = pad_with_duplicates(n, true);
                black_box(drain(&pad))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
