//! Ablation: the same job-selection query with and without the indexes
//! the LaunchPad creates — quantifying why the queue-as-collection
//! design stays fast as `engines` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_docstore::Database;
use serde_json::json;
use std::hint::black_box;

fn engines_db(n: usize, indexed: bool) -> Database {
    let db = Database::new();
    let engines = db.collection("engines");
    if indexed {
        engines.create_index("state", false).unwrap();
        engines.create_index("spec.nelectrons", false).unwrap();
    }
    let states = ["COMPLETED", "COMPLETED", "COMPLETED", "READY", "RUNNING"];
    for i in 0..n {
        engines
            .insert_one(json!({
                "state": states[i % states.len()],
                "spec": {
                    "elements": ["Li", "Fe", "O"],
                    "nelectrons": (i % 400) as f64,
                    "walltime_s": 3600,
                },
                "launches": i % 3,
            }))
            .unwrap();
    }
    db.profiler().set_enabled(false);
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_ablation");
    for &n in &[2_000usize, 20_000] {
        for &indexed in &[false, true] {
            let db = engines_db(n, indexed);
            let engines = db.collection("engines");
            let label = if indexed { "indexed" } else { "full_scan" };
            group.bench_with_input(
                BenchmarkId::new(format!("claim_query_{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            engines
                                .find(&json!({
                                    "state": "READY",
                                    "spec.elements": {"$all": ["Li", "O"]},
                                    "spec.nelectrons": {"$lte": 200},
                                }))
                                .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
