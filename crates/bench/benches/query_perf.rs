//! Criterion bench behind Fig. 5: in-process latency of the web UI's
//! query mix against a populated `materials` collection, with and
//! without indexes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_docstore::{Database, FindOptions, SortDir};
use serde_json::json;
use std::hint::black_box;

fn populate(n: usize, indexed: bool) -> Database {
    let db = Database::new();
    let mats = db.collection("materials");
    if indexed {
        mats.create_index("formula", false).unwrap();
        mats.create_index("chemsys", false).unwrap();
        mats.create_index("output.band_gap", false).unwrap();
    }
    let els = ["Li", "Na", "Fe", "Co", "Ni", "Mn", "O", "S", "P", "F"];
    for i in 0..n {
        let e1 = els[i % els.len()];
        let e2 = els[(i * 3 + 1) % els.len()];
        mats.insert_one(json!({
            "formula": format!("{e1}{e2}{}", i % 7 + 1),
            "chemsys": format!("{e1}-{e2}"),
            "elements": [e1, e2],
            "nelements": 2,
            "nsites": i % 20 + 2,
            "output": {"energy_per_atom": -(i as f64 % 9.0) - 1.0,
                        "band_gap": (i % 50) as f64 / 10.0},
        }))
        .unwrap();
    }
    db.profiler().set_enabled(false);
    db
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_query_mix");
    for &n in &[1_000usize, 10_000] {
        let db = populate(n, true);
        let mats = db.collection("materials");
        group.bench_with_input(BenchmarkId::new("point_lookup", n), &n, |b, _| {
            b.iter(|| black_box(mats.find(&json!({"formula": "LiFe3"})).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("chemsys_browse", n), &n, |b, _| {
            b.iter(|| black_box(mats.find(&json!({"chemsys": "Fe-O"})).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("range_scan", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    mats.find(&json!({"output.band_gap": {"$gte": 1.0, "$lt": 2.0}}))
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sorted_top20", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    mats.find_with(
                        &json!({"nelements": 2}),
                        &FindOptions::all()
                            .sort_by("output.energy_per_atom", SortDir::Asc)
                            .limit(20),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
