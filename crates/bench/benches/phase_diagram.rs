//! Analytics cost: convex-hull stability analysis (the pymatgen-style
//! phase diagram) as entry count and dimensionality grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_matsci::analysis::phase_diagram::{PdEntry, PhaseDiagram};
use mp_matsci::{Composition, Element};
use std::hint::black_box;

fn entries(nel: usize, per_system: usize) -> Vec<PdEntry> {
    let symbols = ["Li", "Fe", "O", "P", "Mn"];
    let els: Vec<Element> = symbols[..nel]
        .iter()
        .map(|s| Element::from_symbol(s).unwrap())
        .collect();
    let mut out = Vec::new();
    for (i, &el) in els.iter().enumerate() {
        out.push(PdEntry::new(
            format!("ref{i}"),
            Composition::from_pairs([(el, 1.0)]),
            0.0,
        ));
    }
    // Deterministic pseudo-random interior compositions.
    let mut state = 12345u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0
    };
    for i in 0..per_system {
        let mut pairs = Vec::new();
        for &el in &els {
            pairs.push((el, 1.0 + (next() * 4.0).floor()));
        }
        let comp = Composition::from_pairs(pairs);
        out.push(PdEntry::new(format!("e{i}"), comp, -next() * 3.0));
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_diagram");
    group.sample_size(10);
    for &(nel, n) in &[(2usize, 30usize), (3, 60), (4, 100)] {
        let es = entries(nel, n);
        group.bench_with_input(BenchmarkId::new(format!("{nel}el_hull"), n), &n, |b, _| {
            b.iter(|| {
                let pd = PhaseDiagram::new(es.clone()).unwrap();
                let stable = pd.stable_entries(1e-8).len();
                black_box(stable)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
