//! Throughput comparison for the read-path execution strategies:
//! collection scan vs index probe vs projected scan vs query-cache hit,
//! and sequential vs pooled scatter-gather across shards.
//!
//! The benchmark runs as a driver/child pair so a single invocation can
//! record multiple worker-count series: `WorkPool::global()` is sized
//! once per process from `MP_EXEC_WORKERS`, so each series needs its own
//! process. The driver (default mode) re-execs this binary once with
//! `MP_EXEC_WORKERS=1` and — when the host or an inherited
//! `MP_EXEC_WORKERS` allows more than one worker — once at the
//! multi-worker count, merges the series, derives per-scale `speedup`
//! ratios (1-worker time / multi-worker time), writes `BENCH_query.json`
//! at the repo root, and enforces the perf-smoke gates. A child
//! (`MP_BENCH_CHILD=1`) runs the scale suite at its inherited pool size
//! and prints one series as JSON on stdout.
//!
//! Perf-smoke gates, applied to every series:
//!
//! * a steady-state cache hit must be faster than the uncached engine
//!   read, and must not scale with corpus size (the large scale may cost
//!   at most 2x the small one — hits return a shared `Arc` result set,
//!   so their cost is key hashing, not result materialization);
//! * the uncached engine read must cost at most 1.15x the equivalent
//!   raw collection scan (the engine's sanitize/cache/copy overhead
//!   must stay in the noise now that result sets are shared);
//! * at 100k documents, a projected scan must cost at most 1.3x the
//!   unprojected scan (the projection is compiled once per query and
//!   fused into the scan, so per-match work is trie traversal plus
//!   output materialization — not path re-splitting over a separate
//!   pass, which once made projection 2.5x slower; the JSON also
//!   reports `proj_overhead_per_match_us`, the selectivity-free
//!   per-document materialization cost);
//! * at 100k documents the sharded read must *win*: with >= 4 effective
//!   execution slots (pool workers capped by host parallelism) the
//!   scatter must cost at most 0.8x the sequential per-shard iteration;
//!   with 2-3 slots it must not lose outright; a single slot cannot
//!   overlap shards at all, so there the gate bounds pure dispatch
//!   overhead at 15% instead of demanding an impossible win.
//!
//! Cache hits are measured two ways per rep: `cache_hit_us` is the
//! steady-state per-hit cost over a 16-hit burst, and
//! `cache_hit_cold_us` is the first hit issued right after a full
//! collection scan evicted the CPU cache — that one is dominated by
//! cache refill and scales weakly with corpus size, so it is recorded
//! for context but not gated.
//!
//! Usage: `cargo bench --bench query_throughput [-- --quick]`
//! `--quick` shrinks the document counts for CI smoke runs.

use mp_docstore::shard::ShardedCluster;
use mp_docstore::{Database, FindOptions};
use mp_exec::WorkPool;
use mp_mapi::QueryEngine;
use serde_json::{json, Value};
use std::process::Command;
use std::time::Instant;

const SHARDS: usize = 4;
const HIT_BURST: u32 = 16;

fn mat_doc(i: usize) -> Value {
    let els = ["Li", "Na", "Fe", "Co", "Ni", "Mn", "O", "S", "P", "F"];
    let e1 = els[i % els.len()];
    let e2 = els[(i * 3 + 1) % els.len()];
    json!({
        "_id": format!("mp-{i}"),
        "formula": format!("{e1}{e2}{}", i % 7 + 1),
        "chemsys": format!("{e1}-{e2}"),
        "elements": [e1, e2],
        "nsites": i % 100 + 2,
        "output": {"energy_per_atom": -((i % 9) as f64) - 1.0,
                   "band_gap": (i % 50) as f64 / 10.0},
    })
}

fn populate(n: usize) -> Database {
    let db = Database::new();
    let mats = db.collection("materials");
    mats.create_index("chemsys", false).unwrap();
    for i in 0..n {
        mats.insert_one(mat_doc(i)).unwrap();
    }
    db.profiler().set_enabled(false);
    db
}

fn populate_cluster(n: usize) -> ShardedCluster {
    let cluster = ShardedCluster::new(SHARDS, "chemsys");
    for i in 0..n {
        cluster.insert_one("materials", mat_doc(i)).unwrap();
    }
    for s in 0..cluster.num_shards() {
        cluster.shard(s).profiler().set_enabled(false);
    }
    cluster
}

/// Wall time of one run of `f`, in microseconds.
fn time_us(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e6
}

/// Median of a sample set, in place.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_scale(n: usize, reps: usize) -> Value {
    let db = populate(n);
    let mats = db.collection("materials");

    // Full scan: range on an unindexed field. The cut selects ~2% of
    // the collection — the hit rate of a typical Materials API range
    // query — so the projected-read comparison below measures
    // per-document projection overhead against the scan, not the raw
    // allocator throughput of materializing a fifth of the collection.
    let collscan_filter = json!({"nsites": {"$gte": 100}});

    // Index probe: equality on the indexed shard key. (The generator
    // pairs Fe with S: every tenth document lands in this chemsys.)
    let index_filter = json!({"chemsys": "Fe-S"});

    // Projected scan: same filter, but only two fields come back. The
    // projection is compiled once per query and pushed down into the
    // scan (each match is projected in the pass that matched it), so
    // the extra cost over the unprojected scan is only the
    // materialization of the matched output documents.
    let projection = FindOptions::all().project(&["formula", "output.band_gap"]);
    let matched = mats.find(&collscan_filter).unwrap().len();

    // Cached engine read: prime once before the rep loop so every
    // in-loop probe hits.
    let primed = QueryEngine::new(db.clone());
    primed
        .query("materials", &collscan_filter, &[], None)
        .unwrap();

    let cluster = populate_cluster(n);

    // One rep measures every operation back to back, and each metric is
    // the median over reps of its own slice. Ratio gates compare
    // metrics against each other, so the samples must interleave: on a
    // shared host, a slow phase that lands entirely on one metric's
    // measurement block would skew every ratio it appears in, while
    // interleaved samples drift together and the ratios hold.
    let mut t_scan = Vec::with_capacity(reps);
    let mut t_index = Vec::with_capacity(reps);
    let mut t_proj = Vec::with_capacity(reps);
    let mut t_count = Vec::with_capacity(reps);
    let mut t_miss = Vec::with_capacity(reps);
    let mut t_hit_cold = Vec::with_capacity(reps);
    let mut t_hit = Vec::with_capacity(reps);
    let mut t_seq = Vec::with_capacity(reps);
    let mut t_scatter = Vec::with_capacity(reps);
    for _ in 0..reps {
        t_scan.push(time_us(|| {
            assert!(!mats.find(&collscan_filter).unwrap().is_empty());
        }));
        t_index.push(time_us(|| {
            assert!(!mats.find(&index_filter).unwrap().is_empty());
        }));
        t_proj.push(time_us(|| {
            assert!(!mats
                .find_with(&collscan_filter, &projection)
                .unwrap()
                .is_empty());
        }));
        t_count.push(time_us(|| {
            assert!(mats.count(&collscan_filter).unwrap() > 0);
        }));
        // Uncached engine read: a fresh engine each rep keeps the cache
        // cold.
        t_miss.push(time_us(|| {
            let qe = QueryEngine::new(db.clone());
            assert!(!qe
                .query("materials", &collscan_filter, &[], None)
                .unwrap()
                .is_empty());
        }));
        // The miss above just walked the whole collection, evicting the
        // cache lines the hit path touches — so the first primed-engine
        // probe after it is a genuinely cold hit. The burst that follows
        // measures the steady-state per-hit cost.
        t_hit_cold.push(time_us(|| {
            let (rows, hit) = primed
                .query_cached("materials", &collscan_filter, &[], None)
                .unwrap();
            assert!(hit && !rows.is_empty());
        }));
        t_hit.push(
            time_us(|| {
                for _ in 0..HIT_BURST {
                    let (rows, hit) = primed
                        .query_cached("materials", &collscan_filter, &[], None)
                        .unwrap();
                    assert!(hit && !rows.is_empty());
                }
            }) / f64::from(HIT_BURST),
        );
        // Sequential shard iteration (the pre-pool router: re-parse +
        // full find on every shard, one after another) vs the pooled
        // scatter.
        t_seq.push(time_us(|| {
            let mut out = Vec::new();
            for s in 0..cluster.num_shards() {
                out.extend(
                    cluster
                        .shard(s)
                        .collection("materials")
                        .find(&collscan_filter)
                        .unwrap(),
                );
            }
            assert!(!out.is_empty());
        }));
        t_scatter.push(time_us(|| {
            assert!(!cluster
                .find("materials", &collscan_filter)
                .unwrap()
                .is_empty());
        }));
    }
    let collscan_us = median(t_scan);
    let find_projected_us = median(t_proj);

    json!({
        "docs": n,
        "collscan_us": collscan_us,
        "index_us": median(t_index),
        "find_projected_us": find_projected_us,
        "count_us": median(t_count),
        // Materialization cost per matched document, independent of the
        // filter's selectivity — the selectivity-free view of the
        // projection cliff (the seed paid ~1.5us/match re-splitting
        // paths per document; the compiled + fused path is sub-micro).
        "matched": matched,
        "proj_overhead_per_match_us": (find_projected_us - collscan_us).max(0.0)
            / matched.max(1) as f64,
        "cache_miss_us": median(t_miss),
        "cache_hit_us": median(t_hit),
        "cache_hit_cold_us": median(t_hit_cold),
        "shard_seq_us": median(t_seq),
        "shard_scatter_us": median(t_scatter),
    })
}

/// Child mode: run the scale suite at the inherited pool size and print
/// one series as JSON on stdout (progress goes to stderr so stdout stays
/// machine-readable).
fn run_child(quick: bool) {
    let scales: &[usize] = if quick {
        &[2_000, 100_000]
    } else {
        &[10_000, 100_000]
    };
    let reps = if quick { 9 } else { 15 };
    let workers = WorkPool::global().size();

    let mut results = Vec::new();
    for &n in scales {
        eprintln!("  [workers={workers}] scale {n} ...");
        results.push(bench_scale(n, reps));
    }
    let stats = WorkPool::global().stats();
    let series = json!({
        "pool_workers": workers,
        "reps": reps,
        // Dispatch accounting for the whole series: proves which fan-out
        // path (classic scatter vs morsel) actually ran.
        "pool_stats": {
            "scatters": stats.scatters,
            "jobs_dispatched": stats.jobs_dispatched,
            "morsel_scatters": stats.morsel_scatters,
            "morsel_runners": stats.morsel_runners,
            "morsels_claimed": stats.morsels_claimed,
        },
        "scales": results,
    });
    println!("{series}");
}

/// Re-exec this binary as a single-series child at the given pool size.
fn spawn_series(quick: bool, workers: usize) -> Value {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    if quick {
        cmd.arg("--quick");
    }
    let out = cmd
        .env("MP_BENCH_CHILD", "1")
        .env("MP_EXEC_WORKERS", workers.to_string())
        .output()
        .expect("spawn bench child");
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        out.status.success(),
        "bench child (workers={workers}) exited with {}",
        out.status
    );
    let stdout = String::from_utf8(out.stdout).expect("child stdout is UTF-8");
    serde_json::from_str(stdout.trim()).expect("child series JSON")
}

/// Gates applied to one recorded series; returns failure messages.
fn check_series(series: &Value, host_parallelism: usize) -> Vec<String> {
    let workers = series["pool_workers"].as_u64().unwrap() as usize;
    // Effective execution slots: a 4-worker pool on a 1-way host still
    // executes one chunk at a time, so gates that demand a parallel win
    // key off the slot count, mirroring the executor's own crossover.
    let slots = workers.max(1).min(host_parallelism.max(1));
    let mut failures = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            failures.push(format!("[workers={workers}] {msg}"));
        }
    };

    let scales = series["scales"].as_array().unwrap();
    for scale in scales {
        let docs = scale["docs"].as_u64().unwrap();
        let hit = scale["cache_hit_us"].as_f64().unwrap();
        let miss = scale["cache_miss_us"].as_f64().unwrap();
        let scan = scale["collscan_us"].as_f64().unwrap();
        let projected = scale["find_projected_us"].as_f64().unwrap();
        let seq = scale["shard_seq_us"].as_f64().unwrap();
        let scatter = scale["shard_scatter_us"].as_f64().unwrap();

        // A steady-state cache hit must beat the uncached read.
        check(
            hit < miss,
            format!(
                "cache hit ({hit:.2}us) not faster than uncached read ({miss:.1}us) at {docs} docs"
            ),
        );
        // A cache miss is the scan plus engine overhead (sanitize, key
        // build, result registration). Shared result sets make that
        // overhead per-result-set, not per-document: bound it at 15%.
        check(
            miss <= scan * 1.15,
            format!("uncached engine read ({miss:.1}us) exceeds 1.15x the equivalent collection scan ({scan:.1}us) at {docs} docs"),
        );
        // The projection cliff gate: at collection scale, projecting
        // two fields may cost at most 30% over returning the shared
        // Arcs unprojected. The margin covers the unavoidable per-result
        // output materialization plus the measured run-to-run wobble of
        // the scan baseline itself (the unprojected scan is cache-layout
        // bound and swings ~20% between processes, while the projected
        // scan is materialization bound and stable); the regression this
        // guards against — per-document path re-splitting — costs 2.5x,
        // far outside the margin.
        if docs >= 100_000 {
            check(
                projected <= scan * 1.3,
                format!("projected scan ({projected:.1}us) exceeds 1.3x the unprojected collection scan ({scan:.1}us) at {docs} docs"),
            );
            // The scatter gate scales with the slots actually available:
            // >= 4 slots must win by 20%, 2-3 slots must not lose, and a
            // single slot only pays bounded dispatch overhead.
            let (bound, label) = if slots >= 4 {
                (seq * 0.8, "0.8x")
            } else if slots > 1 {
                (seq, "1.0x")
            } else {
                (seq * 1.15, "1.15x")
            };
            check(
                scatter <= bound,
                format!("pooled scatter ({scatter:.1}us) vs sequential shard iteration ({seq:.1}us) at {docs} docs exceeds the {slots}-slot bound ({label} = {bound:.1}us)"),
            );
        }
    }

    // Steady-state hits must be O(1) in corpus size: the large scale may
    // cost at most 2x the small one, plus a 0.2us floor so timer noise
    // on sub-microsecond samples cannot flake the gate.
    let (first, last) = (&scales[0], &scales[scales.len() - 1]);
    let hit_small = first["cache_hit_us"].as_f64().unwrap();
    let hit_big = last["cache_hit_us"].as_f64().unwrap();
    check(
        hit_big <= hit_small * 2.0 + 0.2,
        format!(
            "cache hit scales with corpus size: {hit_small:.2}us at {} docs -> {hit_big:.2}us at {} docs",
            first["docs"], last["docs"]
        ),
    );

    failures
}

/// Per-scale speedup of the multi-worker series over the 1-worker one
/// (ratio > 1 means the multi-worker run was faster).
fn speedup_rows(seq: &Value, multi: &Value) -> Vec<Value> {
    let ratio = |key: &str, s: &Value, m: &Value| {
        let a = s[key].as_f64().unwrap();
        let b = m[key].as_f64().unwrap();
        if b > 0.0 {
            (a / b * 100.0).round() / 100.0
        } else {
            1.0
        }
    };
    seq["scales"]
        .as_array()
        .unwrap()
        .iter()
        .zip(multi["scales"].as_array().unwrap())
        .map(|(s, m)| {
            assert_eq!(s["docs"], m["docs"], "series scale mismatch");
            json!({
                "docs": s["docs"],
                "collscan": ratio("collscan_us", s, m),
                "find_projected": ratio("find_projected_us", s, m),
                "count": ratio("count_us", s, m),
                "shard_scatter": ratio("shard_scatter_us", s, m),
            })
        })
        .collect()
}

fn main() {
    // Under `cargo bench`, harness=false binaries still receive
    // criterion-style flags; only `--quick` is ours.
    let quick = std::env::args().any(|a| a == "--quick");

    if std::env::var("MP_BENCH_CHILD").is_ok() {
        run_child(quick);
        return;
    }

    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    // An inherited MP_EXEC_WORKERS pins the multi-worker series (the CI
    // matrix leg sets 4); MP_EXEC_WORKERS=1 drops it entirely; otherwise
    // default to at least 4 workers so the morsel path is exercised even
    // on narrow hosts.
    let multi_workers = match std::env::var("MP_EXEC_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(w) if w > 1 => Some(w),
        Some(_) => None,
        None => Some(host_parallelism.max(4)),
    };
    eprintln!(
        "query_throughput driver on a {host_parallelism}-way host: series at 1{} worker(s)",
        multi_workers.map_or(String::new(), |w| format!(" and {w}"))
    );

    let seq_series = spawn_series(quick, 1);
    let multi_series = multi_workers.map(|w| spawn_series(quick, w));

    let mut failures = check_series(&seq_series, host_parallelism);
    let mut series = vec![seq_series];
    let mut speedup = Vec::new();
    if let Some(multi) = multi_series {
        failures.extend(check_series(&multi, host_parallelism));
        speedup = speedup_rows(&series[0], &multi);
        series.push(multi);
    }

    let report = json!({
        "bench": "query_throughput",
        "mode": if quick { "quick" } else { "full" },
        "shards": SHARDS,
        "host_parallelism": host_parallelism,
        "series": series,
        "speedup": speedup,
    });

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(out, serde_json::to_string_pretty(&report).unwrap() + "\n").unwrap();
    println!("{}", serde_json::to_string_pretty(&report).unwrap());

    if !failures.is_empty() {
        eprintln!("PERF GATES FAILED:");
        for f in &failures {
            eprintln!("  FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "ok: cache hits beat uncached reads and stay O(1) across scales, misses \
         stay within 1.15x of the raw scan, projection stays within 1.3x, and \
         scatter holds its slot-count bound at 100k docs"
    );
}
