//! Throughput comparison for the read-path execution strategies:
//! collection scan vs index probe vs projected scan vs query-cache hit,
//! and sequential vs pooled scatter-gather across shards. Emits
//! `BENCH_query.json` at the repo root and exits non-zero if any
//! perf-smoke gate fails:
//!
//! * a cache hit must be faster than the uncached engine read;
//! * the uncached engine read must cost at most 1.15× the equivalent
//!   raw collection scan (the engine's sanitize/cache/copy overhead
//!   must stay in the noise now that result sets are shared);
//! * at 100k documents, a projected scan must cost at most 1.2× the
//!   unprojected scan (the projection is compiled once per query and
//!   fused into the scan, so per-match work is trie traversal plus
//!   output materialization — not path re-splitting over a separate
//!   pass, which once made projection 2.5× slower; the JSON also
//!   reports `proj_overhead_per_match_us`, the selectivity-free
//!   per-document materialization cost);
//! * at 100k documents, pooled scatter must not lose to sequential
//!   per-shard iteration.
//!
//! Usage: `cargo bench --bench query_throughput [-- --quick]`
//! `--quick` shrinks the document counts for CI smoke runs.

use mp_docstore::shard::ShardedCluster;
use mp_docstore::{Database, FindOptions};
use mp_exec::WorkPool;
use mp_mapi::QueryEngine;
use serde_json::{json, Value};
use std::time::Instant;

const SHARDS: usize = 4;

fn mat_doc(i: usize) -> Value {
    let els = ["Li", "Na", "Fe", "Co", "Ni", "Mn", "O", "S", "P", "F"];
    let e1 = els[i % els.len()];
    let e2 = els[(i * 3 + 1) % els.len()];
    json!({
        "_id": format!("mp-{i}"),
        "formula": format!("{e1}{e2}{}", i % 7 + 1),
        "chemsys": format!("{e1}-{e2}"),
        "elements": [e1, e2],
        "nsites": i % 100 + 2,
        "output": {"energy_per_atom": -((i % 9) as f64) - 1.0,
                   "band_gap": (i % 50) as f64 / 10.0},
    })
}

fn populate(n: usize) -> Database {
    let db = Database::new();
    let mats = db.collection("materials");
    mats.create_index("chemsys", false).unwrap();
    for i in 0..n {
        mats.insert_one(mat_doc(i)).unwrap();
    }
    db.profiler().set_enabled(false);
    db
}

fn populate_cluster(n: usize) -> ShardedCluster {
    let cluster = ShardedCluster::new(SHARDS, "chemsys");
    for i in 0..n {
        cluster.insert_one("materials", mat_doc(i)).unwrap();
    }
    for s in 0..cluster.num_shards() {
        cluster.shard(s).profiler().set_enabled(false);
    }
    cluster
}

/// Wall time of one run of `f`, in microseconds.
fn time_us(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e6
}

/// Median of a sample set, in place.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_scale(n: usize, reps: usize) -> Value {
    let db = populate(n);
    let mats = db.collection("materials");

    // Full scan: range on an unindexed field. The cut selects ~2% of
    // the collection — the hit rate of a typical Materials API range
    // query — so the projected-read comparison below measures
    // per-document projection overhead against the scan, not the raw
    // allocator throughput of materializing a fifth of the collection.
    let collscan_filter = json!({"nsites": {"$gte": 100}});

    // Index probe: equality on the indexed shard key. (The generator
    // pairs Fe with S: every tenth document lands in this chemsys.)
    let index_filter = json!({"chemsys": "Fe-S"});

    // Projected scan: same filter, but only two fields come back. The
    // projection is compiled once per query and pushed down into the
    // scan (each match is projected in the pass that matched it), so
    // the extra cost over the unprojected scan is only the
    // materialization of the matched output documents.
    let projection = FindOptions::all().project(&["formula", "output.band_gap"]);
    let matched = mats.find(&collscan_filter).unwrap().len();

    // Cached engine read: prime once before the rep loop so every
    // in-loop probe hits.
    let primed = QueryEngine::new(db.clone());
    primed
        .query("materials", &collscan_filter, &[], None)
        .unwrap();

    let cluster = populate_cluster(n);

    // One rep measures every operation back to back, and each metric is
    // the median over reps of its own slice. Ratio gates compare
    // metrics against each other, so the samples must interleave: on a
    // shared host, a slow phase that lands entirely on one metric's
    // measurement block would skew every ratio it appears in, while
    // interleaved samples drift together and the ratios hold.
    let mut t_scan = Vec::with_capacity(reps);
    let mut t_index = Vec::with_capacity(reps);
    let mut t_proj = Vec::with_capacity(reps);
    let mut t_miss = Vec::with_capacity(reps);
    let mut t_hit = Vec::with_capacity(reps);
    let mut t_seq = Vec::with_capacity(reps);
    let mut t_scatter = Vec::with_capacity(reps);
    for _ in 0..reps {
        t_scan.push(time_us(|| {
            assert!(!mats.find(&collscan_filter).unwrap().is_empty());
        }));
        t_index.push(time_us(|| {
            assert!(!mats.find(&index_filter).unwrap().is_empty());
        }));
        t_proj.push(time_us(|| {
            assert!(!mats
                .find_with(&collscan_filter, &projection)
                .unwrap()
                .is_empty());
        }));
        // Uncached engine read: a fresh engine each rep keeps the cache
        // cold.
        t_miss.push(time_us(|| {
            let qe = QueryEngine::new(db.clone());
            assert!(!qe
                .query("materials", &collscan_filter, &[], None)
                .unwrap()
                .is_empty());
        }));
        t_hit.push(time_us(|| {
            let (rows, hit) = primed
                .query_cached("materials", &collscan_filter, &[], None)
                .unwrap();
            assert!(hit && !rows.is_empty());
        }));
        // Sequential shard iteration (the pre-pool router: re-parse +
        // full find on every shard, one after another) vs the pooled
        // scatter.
        t_seq.push(time_us(|| {
            let mut out = Vec::new();
            for s in 0..cluster.num_shards() {
                out.extend(
                    cluster
                        .shard(s)
                        .collection("materials")
                        .find(&collscan_filter)
                        .unwrap(),
                );
            }
            assert!(!out.is_empty());
        }));
        t_scatter.push(time_us(|| {
            assert!(!cluster
                .find("materials", &collscan_filter)
                .unwrap()
                .is_empty());
        }));
    }
    let collscan_us = median(t_scan);
    let index_us = median(t_index);
    let find_projected_us = median(t_proj);
    let cache_miss_us = median(t_miss);
    let cache_hit_us = median(t_hit);
    let shard_seq_us = median(t_seq);
    let shard_scatter_us = median(t_scatter);

    json!({
        "docs": n,
        "collscan_us": collscan_us,
        "index_us": index_us,
        "find_projected_us": find_projected_us,
        // Materialization cost per matched document, independent of the
        // filter's selectivity — the selectivity-free view of the
        // projection cliff (the seed paid ~1.5us/match re-splitting
        // paths per document; the compiled + fused path is sub-micro).
        "matched": matched,
        "proj_overhead_per_match_us": (find_projected_us - collscan_us).max(0.0)
            / matched.max(1) as f64,
        "cache_miss_us": cache_miss_us,
        "cache_hit_us": cache_hit_us,
        "shard_seq_us": shard_seq_us,
        "shard_scatter_us": shard_scatter_us,
    })
}

fn main() {
    // Under `cargo bench`, harness=false binaries still receive
    // criterion-style flags; only `--quick` is ours.
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode still visits 100k docs: the scatter-vs-sequential gate
    // below is only meaningful at a scale where fan-out can pay off.
    let scales: &[usize] = if quick {
        &[2_000, 100_000]
    } else {
        &[10_000, 100_000]
    };
    let reps = if quick { 9 } else { 15 };

    let results: Vec<Value> = scales.iter().map(|&n| bench_scale(n, reps)).collect();
    let report = json!({
        "bench": "query_throughput",
        "mode": if quick { "quick" } else { "full" },
        "pool_workers": WorkPool::global().size(),
        "shards": SHARDS,
        "reps": reps,
        "scales": results,
    });

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(out, serde_json::to_string_pretty(&report).unwrap() + "\n").unwrap();
    println!("{}", serde_json::to_string_pretty(&report).unwrap());

    // Perf-smoke gates.
    let mut failed = false;
    for scale in report["scales"].as_array().unwrap() {
        let docs = scale["docs"].as_u64().unwrap();
        let hit = scale["cache_hit_us"].as_f64().unwrap();
        let miss = scale["cache_miss_us"].as_f64().unwrap();
        let scan = scale["collscan_us"].as_f64().unwrap();
        let projected = scale["find_projected_us"].as_f64().unwrap();
        let seq = scale["shard_seq_us"].as_f64().unwrap();
        let scatter = scale["shard_scatter_us"].as_f64().unwrap();

        // A cache hit must beat the uncached read.
        if hit >= miss {
            eprintln!(
                "FAIL: cache hit ({hit:.1}us) not faster than uncached read \
                 ({miss:.1}us) at {docs} docs"
            );
            failed = true;
        }
        // A cache miss is the scan plus engine overhead (sanitize, key
        // build, result registration). Shared result sets make that
        // overhead per-result-set, not per-document: bound it at 15%.
        if miss > scan * 1.15 {
            eprintln!(
                "FAIL: uncached engine read ({miss:.1}us) exceeds 1.15x the \
                 equivalent collection scan ({scan:.1}us) at {docs} docs"
            );
            failed = true;
        }
        // The projection cliff gate: at collection scale, projecting
        // two fields may cost at most 20% over returning the shared
        // Arcs unprojected. The margin is the unavoidable per-result
        // output materialization; anything beyond it means per-document
        // path work crept back into the loop.
        if docs >= 100_000 && projected > scan * 1.2 {
            eprintln!(
                "FAIL: projected scan ({projected:.1}us) exceeds 1.2x the \
                 unprojected collection scan ({scan:.1}us) at {docs} docs"
            );
            failed = true;
        }
        // At 100k docs the pooled scatter must not lose to sequential
        // per-shard iteration. A single-worker pool cannot overlap
        // shards at all, so there the gate bounds pure pool overhead
        // (queueing + handoff) at 15% instead of demanding a win that
        // is impossible by construction.
        if docs >= 100_000 {
            let workers = WorkPool::global().size();
            let bound = if workers > 1 { seq } else { seq * 1.15 };
            if scatter > bound {
                eprintln!(
                    "FAIL: pooled scatter ({scatter:.1}us) vs sequential shard \
                     iteration ({seq:.1}us) at {docs} docs exceeds the \
                     {workers}-worker bound ({bound:.1}us)"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "ok: cache hits beat uncached reads, misses stay within 1.15x of the \
         raw scan, projection stays within 1.2x, and scatter holds at 100k docs"
    );
}
