//! Write-ahead logging cost: what durability actually charges the
//! ingest path, and what group commit + compaction buy back.
//!
//! Three experiments, written to `BENCH_wal.json`:
//!
//! * **Ingest sweep** — sustained `insert_many` ingest at batch sizes
//!   1/8/64, write-ahead (`fsync: true`, the acknowledged-durable
//!   default) vs write-behind (`fsync: false`, bytes reach the OS but
//!   the barrier is skipped — MongoDB's `j:false`). Batch 1 pays one
//!   fsync per document and shows the raw barrier price; batch 64
//!   amortizes it across the batch, which is the deployment shape.
//! * **Group commit** — the same ingest from 4 concurrent writer
//!   threads at batch 1. Committers pile up on the sync lock and one
//!   leader fsync covers the queue, so `fsyncs_issued` falls below
//!   `barriers_requested`; the gap is reported.
//! * **Recovery** — time to `DurableDatabase::open` as a function of
//!   WAL length, with and without log-structured compaction: the
//!   uncompacted curve grows with total writes, the compacted one
//!   tracks the compaction threshold.
//!
//! Perf-smoke gate: at batch 64 the write-ahead ingest may cost at
//! most 1.5x the write-behind baseline — if amortized durability costs
//! more than half the ingest path again, group commit or the batch
//! barrier has regressed to fsync-per-op (that regression measures
//! ~10-100x at batch 1, far outside the margin).
//!
//! Usage: `cargo bench --bench wal_ingest [-- --quick]`
//! `--quick` shrinks document counts for CI smoke runs.

use mp_docstore::{DurableDatabase, DurableOptions};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::time::Instant;

/// A materials task document at realistic size (~3 KB: structure
/// sites with forces plus a coarse DOS), so the sweep measures
/// durability against the real per-document ingest cost, not against
/// trivially small records that no batching could amortize an fsync
/// across.
fn doc(i: usize) -> Value {
    let els = ["Li", "Na", "Fe", "Co", "Ni", "Mn", "O", "S", "P", "F"];
    let e1 = els[i % els.len()];
    let e2 = els[(i * 3 + 1) % els.len()];
    let nsites = i % 10 + 12;
    let sites: Vec<Value> = (0..nsites)
        .map(|s| {
            json!({
                "species": if s % 2 == 0 { e1 } else { e2 },
                "xyz": [s as f64 * 0.5, (s * i % 17) as f64 * 0.25, s as f64 * 0.125],
                "forces": [0.01 * s as f64, -0.02 * s as f64, 0.003],
            })
        })
        .collect();
    let dos: Vec<f64> = (0..128)
        .map(|e| ((e * (i + 3)) % 97) as f64 / 10.0)
        .collect();
    json!({
        "_id": format!("mp-{i}"),
        "formula": format!("{e1}{e2}{}", i % 7 + 1),
        "chemsys": format!("{e1}-{e2}"),
        "elements": [e1, e2],
        "nsites": nsites,
        "structure": {"lattice": [[4.1, 0.0, 0.0], [0.0, 4.1, 0.0], [0.0, 0.0, 4.1]],
                      "sites": sites},
        "output": {"energy_per_atom": -((i % 9) as f64) - 1.0,
                   "band_gap": (i % 50) as f64 / 10.0,
                   "dos": dos},
    })
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mp-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Median of a sample set, in place.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Ingest `total` documents in `batch`-sized `insert_many` calls into a
/// fresh store; returns (elapsed us, (barriers requested, fsyncs
/// issued)).
fn ingest(tag: &str, total: usize, batch: usize, fsync: bool) -> (f64, (u64, u64)) {
    let dir = tmpdir(tag);
    let opts = DurableOptions {
        fsync,
        compact_after_bytes: None,
    };
    let d = DurableDatabase::open_with(&dir, opts).unwrap();
    let t = Instant::now();
    let mut i = 0;
    while i < total {
        let hi = (i + batch).min(total);
        d.insert_many("mats", (i..hi).map(doc).collect()).unwrap();
        i = hi;
    }
    let us = t.elapsed().as_secs_f64() * 1e6;
    let stats = d.commit_stats();
    drop(d);
    let _ = std::fs::remove_dir_all(dir);
    (us, stats)
}

/// Batch-1 ingest of `total` documents split across `threads` writers;
/// returns (elapsed us, (barriers requested, fsyncs issued)). The
/// fsync gap is the group-commit batching win.
fn ingest_concurrent(tag: &str, total: usize, threads: usize) -> (f64, (u64, u64)) {
    let dir = tmpdir(tag);
    let opts = DurableOptions {
        fsync: true,
        compact_after_bytes: None,
    };
    let d = DurableDatabase::open_with(&dir, opts).unwrap();
    let per = total / threads;
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let d = &d;
            s.spawn(move || {
                for i in (w * per)..((w + 1) * per) {
                    d.insert_one("mats", doc(i)).unwrap();
                }
            });
        }
    });
    let us = t.elapsed().as_secs_f64() * 1e6;
    let stats = d.commit_stats();
    drop(d);
    let _ = std::fs::remove_dir_all(dir);
    (us, stats)
}

/// Build a WAL of `ops` single-document inserts, then time recovery
/// (`DurableDatabase::open` replays the whole log). `compact` turns on
/// log-structured compaction at a threshold far below the log size.
fn recovery_probe(tag: &str, ops: usize, compact: bool) -> Value {
    let dir = tmpdir(tag);
    let opts = DurableOptions {
        // Building the log is not what's measured; skip the barriers.
        fsync: false,
        compact_after_bytes: if compact { Some(32 * 1024) } else { None },
    };
    {
        let d = DurableDatabase::open_with(&dir, opts).unwrap();
        for i in 0..ops {
            d.insert_one("mats", doc(i)).unwrap();
        }
    }
    let wal_bytes = std::fs::metadata(dir.join("journal.wal")).map_or(0, |m| m.len());
    let t = Instant::now();
    let d = DurableDatabase::open(&dir).unwrap();
    let recover_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(d.database().collection("mats").len(), ops);
    drop(d);
    let _ = std::fs::remove_dir_all(dir);
    json!({
        "ops": ops,
        "compacted": compact,
        "wal_bytes": wal_bytes,
        "recover_us": (recover_us * 100.0).round() / 100.0,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (total, reps) = if quick { (320, 2) } else { (1_280, 3) };
    let recovery_scales: &[usize] = if quick {
        &[200, 400, 800]
    } else {
        &[500, 1_000, 2_000, 4_000]
    };

    // Ingest sweep: medians over reps, fresh store per rep so every
    // sample starts from an empty WAL.
    let mut sweep = Vec::new();
    for &batch in &[1usize, 8, 64] {
        let mut ahead = Vec::with_capacity(reps);
        let mut behind = Vec::with_capacity(reps);
        let mut stats = (0, 0);
        for r in 0..reps {
            let (us, s) = ingest(&format!("a{batch}-{r}"), total, batch, true);
            ahead.push(us);
            stats = s;
            let (us, _) = ingest(&format!("b{batch}-{r}"), total, batch, false);
            behind.push(us);
        }
        let (ahead_us, behind_us) = (median(ahead), median(behind));
        eprintln!(
            "  batch {batch:>2}: write-ahead {:.0}us, write-behind {:.0}us ({:.2}x)",
            ahead_us,
            behind_us,
            ahead_us / behind_us.max(1.0)
        );
        sweep.push(json!({
            "batch": batch,
            "docs": total,
            "write_ahead_us": ahead_us,
            "write_behind_us": behind_us,
            "durability_factor": ((ahead_us / behind_us.max(1.0)) * 100.0).round() / 100.0,
            "barriers_requested": stats.0,
            "fsyncs_issued": stats.1,
        }));
    }

    // Group commit under contention.
    let threads = 4;
    let (gc_us, gc_stats) = ingest_concurrent("gc", total, threads);
    eprintln!(
        "  group commit: {threads} writers, {} barriers -> {} fsyncs",
        gc_stats.0, gc_stats.1
    );
    let group_commit = json!({
        "threads": threads,
        "docs": total,
        "elapsed_us": gc_us,
        "barriers_requested": gc_stats.0,
        "fsyncs_issued": gc_stats.1,
        "fsyncs_saved": gc_stats.0.saturating_sub(gc_stats.1),
    });

    // Recovery time vs log length, compacted and not.
    let mut recovery = Vec::new();
    for &ops in recovery_scales {
        recovery.push(recovery_probe(&format!("r{ops}"), ops, false));
    }
    let compacted = recovery_probe("rc", *recovery_scales.last().unwrap(), true);

    let report = json!({
        "bench": "wal_ingest",
        "mode": if quick { "quick" } else { "full" },
        "ingest": sweep,
        "group_commit": group_commit,
        "recovery": recovery,
        "recovery_compacted": compacted,
    });

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    std::fs::write(out, serde_json::to_string_pretty(&report).unwrap() + "\n").unwrap();
    println!("{}", serde_json::to_string_pretty(&report).unwrap());

    // The gate: amortized durability must stay cheap.
    let b64 = &sweep[2];
    let factor = b64["durability_factor"].as_f64().unwrap();
    if factor > 1.5 {
        eprintln!(
            "PERF GATE FAILED: write-ahead ingest at batch 64 costs {factor:.2}x \
             the write-behind baseline (bound 1.5x) — the batch barrier or group \
             commit has regressed toward fsync-per-op"
        );
        std::process::exit(1);
    }
    println!("ok: write-ahead ingest at batch 64 stays within 1.5x of write-behind ({factor:.2}x)");
}
