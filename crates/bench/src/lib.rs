//! Shared harness utilities for the experiment binaries and benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md's experiment index); the helpers here
//! build populated deployments and render ASCII tables/plots so the
//! binaries stay focused on their experiment.

use mp_core::MaterialsProject;
use mp_docstore::Result;
use mp_matsci::Element;

/// Build a deployment with `n` ICSD records fully computed and all
/// derived views built — the standing state most experiments start from.
pub fn populated_deployment(n: usize, seed: u64) -> Result<MaterialsProject> {
    let mut mp = MaterialsProject::new()?;
    let recs = mp.ingest_icsd(n, seed)?;
    mp.submit_calculations(&recs)?;
    mp.run_campaign(40)?;
    let li = Element::from_symbol("Li").expect("Li");
    mp.build_views(li)?;
    Ok(mp)
}

/// Render an ASCII horizontal bar chart.
pub fn bar_chart(rows: &[(String, usize)], width: usize) -> String {
    let max = rows.iter().map(|(_, n)| *n).max().unwrap_or(1).max(1);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8);
    let mut out = String::new();
    for (label, n) in rows {
        let bar = "#".repeat(n * width / max);
        out.push_str(&format!("{label:>label_w$} | {bar} {n}\n"));
    }
    out
}

/// Render an ASCII scatter plot of (x, y, glyph) points.
pub fn scatter_plot(
    points: &[(f64, f64, char)],
    x_range: (f64, f64),
    y_range: (f64, f64),
    cols: usize,
    rows: usize,
) -> String {
    let mut grid = vec![vec![' '; cols]; rows];
    for &(x, y, glyph) in points {
        if x < x_range.0 || x > x_range.1 || y < y_range.0 || y > y_range.1 {
            continue;
        }
        let cx = ((x - x_range.0) / (x_range.1 - x_range.0) * (cols - 1) as f64) as usize;
        let cy = ((y - y_range.0) / (y_range.1 - y_range.0) * (rows - 1) as f64) as usize;
        let gy = rows - 1 - cy;
        // Screened points never overwrite known-material markers.
        if grid[gy][cx] != '*' {
            grid[gy][cx] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let yv = y_range.1 - (y_range.1 - y_range.0) * i as f64 / (rows - 1) as f64;
        out.push_str(&format!("{yv:6.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "       +{}\n        {:<10.0}{:>width$.0}\n",
        "-".repeat(cols),
        x_range.0,
        x_range.1,
        width = cols.saturating_sub(10)
    ));
    out
}

/// Simple aligned table printer: header + rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(
                "{c:>w$}  ",
                w = widths.get(i).copied().unwrap_or(4)
            ));
        }
        line.trim_end().to_string() + "\n"
    };
    let mut out = String::new();
    let hdr: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&dashes, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_renders() {
        let rows = vec![("a".to_string(), 10), ("bb".to_string(), 5)];
        let s = bar_chart(&rows, 20);
        assert!(s.contains("a |"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn scatter_plot_places_points() {
        let s = scatter_plot(&[(5.0, 5.0, 'o')], (0.0, 10.0), (0.0, 10.0), 21, 11);
        assert!(s.contains('o'));
    }

    #[test]
    fn table_aligns() {
        let s = table(
            &["name", "n"],
            &[vec!["x".into(), "10".into()], vec!["yy".into(), "5".into()]],
        );
        assert!(s.starts_with("name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn small_deployment_builds() {
        let mp = populated_deployment(8, 3).unwrap();
        assert!(mp.database().collection("materials").len() >= 4);
    }
}
