//! §III-C3 — the four FireWorks features, quantified: re-runs, detours,
//! duplicate detection, and iteration, over a 1000-job campaign with the
//! full failure taxonomy active.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_workflow_recovery --release [--n 1000]
//! ```

use mp_bench::table;
use mp_core::{MaterialsProject, SubmissionMode};
use mp_hpcsim::ClusterSpec;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--n")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    println!("=== §III-C3 workflow recovery over {n} jobs ===\n");

    let mut mp = MaterialsProject::new()?
        .with_cluster(ClusterSpec {
            nodes: 128,
            cores_per_node: 24,
            mem_per_node_gb: 3.0, // tight memory: OOM kills happen
        })
        .with_mode(SubmissionMode::OneJobPerCalc);
    let recs = mp.ingest_icsd(n, 77)?;
    mp.submit_calculations(&recs)?;
    let report = mp.run_campaign(60)?;

    let db = mp.database();
    let engines = db.collection("engines");
    let total_engines = engines.len();
    let completed = engines.count(&json!({"state": "COMPLETED"}))?;
    let archived_dup = engines.count(&json!({"duplicate_of": {"$exists": true}}))?;
    let archived_detour = engines.count(&json!({"replaced_by": {"$exists": true}}))?;
    let fizzled = engines.count(&json!({"state": "FIZZLED"}))?;
    let multi_launch = engines.count(&json!({"launches": {"$gte": 2}}))?;

    let rows = vec![
        vec!["submissions".into(), n.to_string(), "".into()],
        vec![
            "engine entries (incl. detours)".into(),
            total_engines.to_string(),
            "".into(),
        ],
        vec![
            "completed".into(),
            completed.to_string(),
            pct(completed, total_engines),
        ],
        vec![
            "re-runs (walltime kills)".into(),
            report.walltime_reruns.to_string(),
            "resubmitted with 2x walltime".into(),
        ],
        vec![
            "re-runs (memory kills)".into(),
            report.memory_reruns.to_string(),
            "resubmitted on 2x nodes".into(),
        ],
        vec![
            "jobs launched more than once".into(),
            multi_launch.to_string(),
            pct(multi_launch, total_engines),
        ],
        vec![
            "detours (parameter fixes)".into(),
            archived_detour.to_string(),
            "ZBRENT / NBANDS / SCF".into(),
        ],
        vec![
            "duplicates replaced by pointers".into(),
            archived_dup.to_string(),
            pct(archived_dup, total_engines),
        ],
        vec![
            "fizzled for manual intervention".into(),
            fizzled.to_string(),
            pct(fizzled, total_engines),
        ],
    ];
    println!("{}", table(&["feature", "count", "note"], &rows));

    // Per-reason rerun/detour breakdown from the history trail.
    let mut reasons: std::collections::BTreeMap<String, usize> = Default::default();
    for e in engines.dump() {
        if let Some(hist) = e["history"].as_array() {
            for h in hist {
                if let Some(r) = h["reason"].as_str() {
                    let key = r
                        .split(':')
                        .next()
                        .unwrap_or(r)
                        .split(';')
                        .next()
                        .unwrap_or(r);
                    *reasons.entry(key.trim().to_string()).or_insert(0) += 1;
                }
            }
        }
    }
    println!("recovery-event breakdown:");
    for (reason, count) in &reasons {
        println!("  {count:>5}  {reason}");
    }

    // The end-state invariant: nothing is left in limbo.
    let limbo = engines.count(&json!({"state": {"$in": ["READY", "RUNNING", "WAITING"]}}))?;
    println!("\njobs left in limbo after the campaign: {limbo} (must be 0)");
    println!(
        "effective success rate: {:.1}% of distinct calculations produced a task or pointer",
        100.0 * (completed + archived_dup) as f64 / total_engines.max(1) as f64
    );
    Ok(())
}

fn pct(a: usize, b: usize) -> String {
    format!("{:.1}%", 100.0 * a as f64 / b.max(1) as f64)
}
