//! Figure 3 — "Envisioned materials discovery workflow. User ideas (a)
//! for candidate materials (b) are submitted for computation (c), stored
//! in user sandboxes (d), analyzed (e), and eventually released to the
//! public (f)."
//!
//! Walks all six steps as the envisioned external scientist, against a
//! running deployment — including the sandbox and publication steps the
//! paper marks as future work.
//!
//! ```text
//! cargo run -p mp-bench --release --bin fig3_discovery
//! ```

use mp_core::MaterialsProject;
use mp_mapi::{ApiRequest, MpClient, Sandbox};
use mp_matsci::{prototypes, Element, MpsRecord, MpsSource, PhaseDiagram};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 3: the materials discovery loop, end to end ===\n");
    // The standing public deployment the scientist mines for ideas.
    let mut mp = MaterialsProject::new()?;
    let seedrecs = mp.ingest_icsd(40, 9)?;
    mp.submit_calculations(&seedrecs)?;
    mp.run_campaign(25)?;
    let li = Element::from_symbol("Li")?;
    mp.build_views(li)?;
    let scientist = "maria@research.edu";

    // (a) ideas — data mining of the MP database.
    let api = mp.materials_api();
    let client = MpClient::new(&api);
    let known = client.query(
        &json!({"elements": "Li", "band_gap": {"$gt": 1.0}}),
        &["formula", "band_gap"],
    )?;
    println!(
        "(a) ideas: mined {} known Li compounds with a gap; what about",
        known.len()
    );
    println!("    a layered Li-V oxide nobody computed yet?\n");

    // (b) candidate materials serialized as MPS records.
    let candidate =
        prototypes::layered_amo2(li, Element::from_symbol("V")?, Element::from_symbol("O")?);
    let rec = MpsRecord::new(
        "mps-user-1",
        candidate,
        MpsSource::User {
            account: scientist.into(),
        },
    );
    mp.database().collection("mps").insert_one(rec.to_doc())?;
    println!(
        "(b) candidate: {} serialized as MPS record {}\n",
        rec.structure.formula(),
        rec.mps_id
    );

    // (c) submitted for computation through the same workflow engine.
    mp.submit_relax_static_workflows(std::slice::from_ref(&rec))?;
    let report = mp.run_campaign(15)?;
    println!(
        "(c) computed: {} task(s) including the user candidate\n",
        report.completed
    );

    // (d) results land in the user's sandbox, private by default.
    let sandbox = Sandbox::new(mp.database());
    let task = mp
        .database()
        .collection("tasks")
        .find_one(&json!({"mps_id": "mps-user-1", "task_type": "static"}))?
        .expect("user task computed");
    let sandbox_id = sandbox.upload(
        scientist,
        json!({"kind": "calculation", "formula": rec.structure.formula(),
               "energy_per_atom": task["output"]["energy_per_atom"],
               "task_id": task["_id"]}),
    )?;
    println!(
        "(d) sandboxed: visible to anonymous users: {} (private by default)\n",
        sandbox.visible_to(None)?.len()
    );

    // (e) analysis with the open analytics platform: is it stable?
    let mut entries = client.get_entries_in_chemsys(&["Li", "V", "O"])?;
    for el_sym in ["Li", "V", "O"] {
        let el = Element::from_symbol(el_sym)?;
        if !entries
            .iter()
            .any(|e| e.composition.num_elements() == 1 && e.composition.amount(el) > 0.0)
        {
            entries.push(mp_matsci::PdEntry::new(
                format!("ref-{el_sym}"),
                mp_matsci::Composition::from_pairs([(el, 1.0)]),
                mp_core::elemental_reference(el),
            ));
        }
    }
    let epa = task["output"]["energy_per_atom"].as_f64().expect("energy");
    entries.push(mp_matsci::PdEntry::new(
        "user-candidate",
        rec.composition(),
        epa,
    ));
    let pd = PhaseDiagram::new(entries)?;
    let idx = pd
        .entries
        .iter()
        .position(|e| e.id == "user-candidate")
        .expect("candidate entry");
    let decomp = pd.decomposition(idx);
    println!(
        "(e) analyzed: E above hull = {:.3} eV/atom ({})\n",
        decomp.e_above_hull,
        if decomp.e_above_hull < 0.05 {
            "promising!"
        } else {
            "metastable"
        }
    );

    // (f) after the paper is accepted: publish to the community.
    sandbox.publish(scientist, &sandbox_id)?;
    println!(
        "(f) published: visible to anonymous users: {}",
        sandbox.visible_to(None)?.len()
    );
    // ... and the loop restarts: the published record is new input for
    // someone else's step (a).
    let again = api.handle(&ApiRequest::get("/rest/v1/tasks/count").at(1e6));
    println!(
        "\nthe loop closes: the public database now answers {} tasks to the next scientist",
        again.payload()["count"]
    );
    Ok(())
}
