//! Figure 5 — "Histogram of query performance" plus the time-series
//! inset: replay a realistic mixed web workload against a populated
//! deployment and export both views.
//!
//! The paper's observed shape: "A majority of the queries are on the
//! order of a few hundred milliseconds. The few outliers are still well
//! within the range of user expectations." Latencies combine measured
//! in-process work with the documented remote-deployment latency model
//! (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p mp-bench --bin fig5_query_perf [--queries 3000]
//! ```

use mp_bench::{bar_chart, populated_deployment};
use mp_mapi::ApiRequest;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nq: usize = std::env::args()
        .skip_while(|a| a != "--queries")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);

    println!("=== Figure 5: query performance ({nq} queries) ===\n");
    let mp = populated_deployment(120, 11)?;
    let api = mp.materials_api();
    let db = mp.database();
    let formulas: Vec<String> = db
        .collection("materials")
        .find(&json!({}))?
        .iter()
        .filter_map(|m| m["formula"].as_str().map(String::from))
        .collect();
    let systems: Vec<String> = db
        .collection("materials")
        .find(&json!({}))?
        .iter()
        .filter_map(|m| m["chemsys"].as_str().map(String::from))
        .collect();

    // The web UI's query mix: point lookups, property fetches, system
    // browses, and the occasional heavy structured query.
    let mut t = 0.0f64;
    for i in 0..nq {
        t += 2.1; // interactive pacing keeps the rate limiter quiet
        match i % 10 {
            0..=4 => {
                let f = &formulas[i % formulas.len()];
                api.handle(&ApiRequest::get(&format!("/rest/v1/materials/{f}")).at(t));
            }
            5..=6 => {
                let f = &formulas[(i * 7) % formulas.len()];
                api.handle(
                    &ApiRequest::get(&format!("/rest/v1/materials/{f}/vasp/band_gap")).at(t),
                );
            }
            7..=8 => {
                let s = &systems[(i * 3) % systems.len()];
                api.handle(&ApiRequest::get(&format!("/rest/v1/materials/{s}")).at(t));
            }
            _ => {
                api.structured_query(
                    &ApiRequest::get("/query").at(t),
                    "materials",
                    &json!({"band_gap": {"$gt": 0.5}, "nelements": {"$lte": 3}}),
                    &["formula", "band_gap", "energy_per_atom"],
                );
            }
        }
    }

    let log = api.weblog();
    println!("histogram (log-ish buckets):");
    let hist = log.histogram_ms(&[50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0]);
    println!("{}", bar_chart(&hist, 56));

    let p50 = log.percentile_ms(50.0).unwrap_or(0.0);
    let p95 = log.percentile_ms(95.0).unwrap_or(0.0);
    let p999 = log.percentile_ms(99.9).unwrap_or(0.0);
    println!("p50  {p50:.0} ms\np95  {p95:.0} ms\np99.9 {p999:.0} ms");
    println!(
        "majority in the few-hundred-ms range: {}",
        (100.0..800.0).contains(&p50)
    );
    println!(
        "outliers bounded (p99.9 < 5 s, within web-portal expectations): {}",
        p999 < 5000.0
    );

    // Inset: time series of the most recent slice of queries.
    println!("\ninset: time series (last 60 queries)");
    let ts = log.time_series();
    let tail = &ts[ts.len().saturating_sub(60)..];
    for chunk in tail.chunks(10) {
        let line: Vec<String> = chunk.iter().map(|(_, ms)| format!("{ms:4.0}")).collect();
        println!("  {}", line.join(" "));
    }
    println!(
        "\n(total records returned across the workload: {})",
        log.total_records()
    );
    Ok(())
}
