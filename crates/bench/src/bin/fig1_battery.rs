//! Figure 1 — "Battery materials screened": predicted voltage vs.
//! gravimetric capacity for screened candidates, with known electrode
//! materials occupying a comparatively narrow band.
//!
//! ```text
//! cargo run -p mp-bench --bin fig1_battery [--n 400]
//! ```

use mp_bench::scatter_plot;
use mp_core::{elemental_reference, MaterialsProject};
use mp_matsci::analysis::battery::{InsertionElectrode, LithiationPoint};
use mp_matsci::{prototypes, Element};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--n")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let li = Element::from_symbol("Li")?;

    println!("=== Figure 1: battery materials screened (n = {n} candidates) ===\n");
    let mut mp = MaterialsProject::new()?;
    // Intercalation candidates plus a general chemistry stream: the
    // latter supplies the conversion-electrode population whose high
    // capacities fill the right side of Fig. 1.
    let mut candidates = mp.ingest_battery_candidates(n, 20120801, li)?;
    candidates.extend(mp.ingest_icsd(n / 2, 20120802)?);
    mp.submit_calculations(&candidates)?;
    let report = mp.run_campaign(40)?;
    mp.build_views(li)?;
    println!(
        "computed {} tasks ({} dedup hits, {} re-runs, {} detours)\n",
        report.completed,
        report.dedup_hits,
        report.walltime_reruns + report.memory_reruns,
        report.detours
    );

    // Screened candidates from the datastore: intercalation ('o') and
    // conversion ('x') electrodes.
    let bats = mp.database().collection("batteries").find(&json!({}))?;
    let mut points: Vec<(f64, f64, char)> = Vec::new();
    for b in &bats {
        let v = b["average_voltage"].as_f64().unwrap_or(0.0);
        let c = b["capacity_grav"].as_f64().unwrap_or(0.0);
        let glyph = if b["type"] == "conversion" { 'x' } else { 'o' };
        points.push((c, v, glyph));
    }

    // Known electrodes, computed through the same physics (the narrow
    // band of Fig. 1).
    let knowns = [
        (
            "LiCoO2",
            prototypes::layered_amo2(li, Element::from_symbol("Co")?, Element::from_symbol("O")?),
        ),
        (
            "LiNiO2",
            prototypes::layered_amo2(li, Element::from_symbol("Ni")?, Element::from_symbol("O")?),
        ),
        (
            "LiMn2O4",
            prototypes::spinel(li, Element::from_symbol("Mn")?, Element::from_symbol("O")?),
        ),
        (
            "LiFePO4",
            prototypes::olivine_ampo4(li, Element::from_symbol("Fe")?),
        ),
        (
            "LiTiO2",
            prototypes::layered_amo2(li, Element::from_symbol("Ti")?, Element::from_symbol("O")?),
        ),
        (
            "LiV2O4",
            prototypes::spinel(li, Element::from_symbol("V")?, Element::from_symbol("O")?),
        ),
    ];
    let mut known_rows = Vec::new();
    for (name, s) in &knowns {
        let frame = s.without_element(li);
        let x = s.composition().amount(li);
        let e_lith = mp_dft::energy_per_atom(s) * s.num_sites() as f64;
        let e_frame = mp_dft::energy_per_atom(&frame) * frame.num_sites() as f64;
        let e = InsertionElectrode::new(
            frame.composition(),
            li,
            elemental_reference(li),
            vec![
                LithiationPoint {
                    x: 0.0,
                    energy: e_frame,
                },
                LithiationPoint { x, energy: e_lith },
            ],
        )?;
        points.push((e.gravimetric_capacity(), e.average_voltage(), '*'));
        known_rows.push((name, e.gravimetric_capacity(), e.average_voltage()));
    }

    println!("voltage (V) vs capacity (mAh/g) — o intercalation, x conversion, * known:");
    println!(
        "{}",
        scatter_plot(&points, (0.0, 1200.0), (0.0, 5.0), 72, 20)
    );

    // Series data (for external plotting).
    println!("series: screened");
    println!("capacity_mAh_g,voltage_V,framework");
    for b in bats.iter().take(2000) {
        println!(
            "{:.1},{:.3},{}",
            b["capacity_grav"].as_f64().unwrap_or(0.0),
            b["average_voltage"].as_f64().unwrap_or(0.0),
            b["framework"].as_str().unwrap_or("?")
        );
    }
    println!("\nseries: known");
    println!("capacity_mAh_g,voltage_V,name");
    for (name, c, v) in &known_rows {
        println!("{c:.1},{v:.3},{name}");
    }

    // The Fig.-1 claims, checked quantitatively.
    let known_caps: Vec<f64> = known_rows.iter().map(|(_, c, _)| *c).collect();
    let kmin = known_caps.iter().cloned().fold(f64::INFINITY, f64::min);
    let kmax = known_caps.iter().cloned().fold(0.0f64, f64::max);
    let beyond = points
        .iter()
        .filter(|(c, v, g)| *g == 'o' && (*c > kmax || *v > 4.2))
        .count();
    println!("\nknown-material capacity band: {kmin:.0}-{kmax:.0} mAh/g");
    println!("screened candidates beyond the known band: {beyond}");
    println!("(the paper's point: screening surfaces candidates outside the narrow known range)");
    Ok(())
}
