//! §IV-A1 — batch-queue limits vs. task farming. Same workload, three
//! configurations:
//!
//! 1. one-job-per-calculation under a per-user queued-job cap of 8
//!    (the default HPC reality — queue pressure everywhere);
//! 2. the same but with an advance reservation (what MP negotiated
//!    with NERSC);
//! 3. task farming: 25 calculations per batch allocation, no
//!    reservation needed — fewer queue slots *and* smoother walltimes.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_task_farming --release [--n 400]
//! ```

use mp_bench::table;
use mp_core::{CampaignReport, MaterialsProject, SubmissionMode};
use mp_hpcsim::{queue_slots_saved, BatchConfig, ClusterSpec, Reservation};
use mp_matsci::Element;

fn run_config(
    n: usize,
    mode: SubmissionMode,
    reservation: bool,
) -> Result<CampaignReport, Box<dyn std::error::Error>> {
    let mut batch = BatchConfig::default(); // cap = 8, backfill on
    if reservation {
        batch.reservations.push(Reservation {
            user: "mp-prod".into(),
            start: 0.0,
            end: f64::INFINITY,
        });
    }
    let mut mp = MaterialsProject::new()?
        .with_cluster(ClusterSpec::small())
        .with_batch_config(batch)
        .with_mode(mode);
    let recs = mp.ingest_icsd(n, 4242)?;
    mp.submit_calculations(&recs)?;
    Ok(mp.run_campaign(120)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--n")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let _ = Element::from_symbol("Li")?;
    println!("=== §IV-A1: queue limits, reservations, and task farming ({n} calcs) ===\n");

    let capped = run_config(n, SubmissionMode::OneJobPerCalc, false)?;
    let reserved = run_config(n, SubmissionMode::OneJobPerCalc, true)?;
    let farmed = run_config(n, SubmissionMode::TaskFarming { tasks_per_farm: 25 }, false)?;

    let row = |name: &str, r: &CampaignReport| -> Vec<String> {
        vec![
            name.into(),
            r.completed.to_string(),
            r.batch_jobs.to_string(),
            r.queue_rejections.to_string(),
            format!("{:.1}", r.makespan_s / 3600.0),
            r.rounds.to_string(),
        ]
    };
    println!(
        "{}",
        table(
            &[
                "configuration",
                "completed",
                "batch jobs",
                "queue rejections",
                "makespan(h)",
                "rounds"
            ],
            &[
                row("cap=8, no reservation", &capped),
                row("cap=8 + reservation (paper)", &reserved),
                row("task farming, 25/farm", &farmed),
            ],
        )
    );

    println!(
        "queue-slot arithmetic: {n} calcs at 25/farm need {} fewer queue entries",
        queue_slots_saved(n, 25)
    );
    println!();
    println!("expected shape (paper §IV-A1):");
    println!(" - without help, the per-user cap forces constant resubmission churn;");
    println!(" - the reservation removes the rejections entirely;");
    println!(
        " - farming achieves the same completions with ~{}x fewer batch jobs",
        (reserved.batch_jobs as f64 / farmed.batch_jobs.max(1) as f64).round()
    );
    println!(" - farming also smooths walltime variance: each farm's duration is the");
    println!("   sum of many heavy-tailed task runtimes (law of large numbers).");

    assert!(
        capped.queue_rejections > reserved.queue_rejections,
        "reservation must reduce rejections"
    );
    assert!(
        farmed.batch_jobs < reserved.batch_jobs,
        "farming must reduce batch job count"
    );
    Ok(())
}
