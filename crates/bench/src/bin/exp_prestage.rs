//! §IV-B2, second claim — pre-staging to HDFS.
//!
//! "For larger-scale analytics this may not be a good solution as
//! MongoDB is significantly slower than HDFS as a backend store for
//! MapReduce jobs. In this case, efficiency can be gained by pre-staging
//! the MongoDB data to HDFS."
//!
//! Measures K repeated analytics jobs over the same collection two
//! ways: extracting from the live store every time (Mongo-direct), vs
//! extracting once into an [`mp_docstore::HdfsStage`] and running all K
//! jobs against the stage.
//!
//! ```text
//! cargo run -p mp-bench --release --bin exp_prestage
//! ```

use mp_bench::table;
use mp_docstore::{Database, HadoopEngine, HdfsStage, MapReduce};
use serde_json::{json, Value};
use std::time::Instant;

fn populate(n: usize) -> Database {
    let db = Database::new();
    let tasks = db.collection("tasks");
    for i in 0..n {
        tasks
            .insert_one(json!({
                "mps_id": format!("mps-{}", i % (n / 5).max(1)),
                "chemsys": format!("sys-{}", i % 23),
                "output": {"energy_per_atom": -(i as f64 % 9.0) - 1.0,
                            "band_gap": (i % 40) as f64 / 10.0,
                            "scf_trace": (0..16).map(|k| -3.0 - 0.1 * k as f64).collect::<Vec<f64>>()},
            }))
            .unwrap();
    }
    db.profiler().set_enabled(false);
    db
}

fn job(engine: &dyn MapReduce, docs: &[std::sync::Arc<Value>]) -> usize {
    let map = |d: &Value, emit: &mut dyn FnMut(Value, Value)| {
        emit(d["chemsys"].clone(), d["output"]["band_gap"].clone());
    };
    let reduce = |_k: &Value, vs: &[Value]| -> Value {
        let nums: Vec<f64> = vs.iter().filter_map(Value::as_f64).collect();
        json!(nums.iter().sum::<f64>() / nums.len().max(1) as f64)
    };
    engine.run(docs, &map, &reduce).unwrap().len()
}

fn main() {
    println!("=== §IV-B2: Mongo-direct vs HDFS-prestaged repeated analytics ===\n");
    let engine = HadoopEngine::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    );
    let jobs = 10;
    let mut rows = Vec::new();
    for &n in &[5_000usize, 25_000] {
        let db = populate(n);

        // Mongo-direct: every job re-extracts the collection.
        let t = Instant::now();
        for _ in 0..jobs {
            let docs = db.collection("tasks").dump();
            job(&engine, &docs);
        }
        let direct_ms = t.elapsed().as_secs_f64() * 1000.0;

        // Prestaged: one extraction, K jobs on the stage.
        let t = Instant::now();
        let stage = HdfsStage::from_collection(&db, "tasks");
        let t_stage_ms = t.elapsed().as_secs_f64() * 1000.0;
        let t = Instant::now();
        for _ in 0..jobs {
            stage
                .run(
                    &engine,
                    &|d, emit| {
                        emit(d["chemsys"].clone(), d["output"]["band_gap"].clone());
                    },
                    &|_k, vs| {
                        let nums: Vec<f64> = vs.iter().filter_map(Value::as_f64).collect();
                        json!(nums.iter().sum::<f64>() / nums.len().max(1) as f64)
                    },
                )
                .unwrap();
        }
        let staged_ms = t.elapsed().as_secs_f64() * 1000.0;

        rows.push(vec![
            format!("{n}"),
            format!("{jobs}"),
            format!("{direct_ms:.0}"),
            format!("{t_stage_ms:.0}"),
            format!("{staged_ms:.0}"),
            format!("{:.1}x", direct_ms / (t_stage_ms + staged_ms)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "docs",
                "jobs",
                "direct(ms)",
                "stage-once(ms)",
                "staged-jobs(ms)",
                "speedup"
            ],
            &rows
        )
    );
    println!("expected shape: the one-time staging cost amortizes across repeated");
    println!("jobs, so the prestaged pipeline wins for analytics workloads — the");
    println!("paper's recommendation for 'larger-scale analytics'. MongoDB keeps");
    println!("the authoritative copy; the stage records its source collection.");
}
