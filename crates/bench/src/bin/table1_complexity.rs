//! Table I — "Complexity and structure of selected collections": node
//! count, maximum depth, and mean depth of the merged document schema of
//! each major collection.
//!
//! Paper values: battery prototypes 14/4/3.6, MPS 94/6/4.8,
//! materials 208/10/6.0, tasks 1077/12/7.4 — a strict complexity
//! ordering that this harness reproduces from live documents.
//!
//! ```text
//! cargo run -p mp-bench --bin table1_complexity
//! ```

use mp_bench::{populated_deployment, table};
use mp_docstore::{doc_stats, DocStats};

/// Mean per-document structure statistics over a collection — Table I
/// characterizes representative documents, arrays included.
fn collection_stats(docs: &[std::sync::Arc<serde_json::Value>]) -> DocStats {
    if docs.is_empty() {
        return DocStats {
            nodes: 0,
            depth: 0,
            mean_depth: 0.0,
        };
    }
    let all: Vec<DocStats> = docs.iter().map(|d| doc_stats(d)).collect();
    DocStats {
        nodes: all.iter().map(|s| s.nodes).sum::<usize>() / all.len(),
        depth: all.iter().map(|s| s.depth).max().unwrap_or(0),
        mean_depth: all.iter().map(|s| s.mean_depth).sum::<f64>() / all.len() as f64,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Table I: complexity and structure of selected collections ===\n");
    let mp = populated_deployment(80, 42)?;
    let db = mp.database();

    // "Battery prototypes": the compact per-electrode summary documents.
    let collections = [
        ("Battery prototypes", "batteries"),
        ("Materials Project Source (MPS)", "mps"),
        ("Materials", "materials"),
        ("Tasks", "tasks"),
    ];
    let paper = [
        (14usize, 4usize, 3.6f64),
        (94, 6, 4.8),
        (208, 10, 6.0),
        (1077, 12, 7.4),
    ];

    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for ((label, coll), (p_nodes, p_depth, p_mean)) in collections.iter().zip(paper.iter()) {
        let docs = db.collection(coll).dump();
        let stats = collection_stats(&docs);
        measured.push(stats);
        rows.push(vec![
            label.to_string(),
            format!("{}", stats.nodes),
            format!("{}", stats.depth),
            format!("{:.1}", stats.mean_depth),
            format!("{p_nodes}"),
            format!("{p_depth}"),
            format!("{p_mean:.1}"),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "collection",
                "nodes",
                "depth",
                "mean",
                "paper:nodes",
                "depth",
                "mean"
            ],
            &rows
        )
    );

    // The paper's qualitative claim is the complexity *ordering*:
    // battery < MPS < materials < tasks.
    let ordered = measured.windows(2).all(|w| w[0].nodes < w[1].nodes);
    println!("complexity ordering battery < MPS < materials < tasks: {ordered}");
    let depth_grows = measured
        .windows(2)
        .all(|w| w[0].mean_depth <= w[1].mean_depth + 0.8);
    println!("mean depth grows along the pipeline: {depth_grows}");
    Ok(())
}
