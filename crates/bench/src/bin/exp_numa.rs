//! §IV-A2 — running a big-memory datastore on NUMA hardware.
//!
//! "Databases such as MongoDB, where a single multi-threaded process
//! uses most of the system's memory, are atypical workloads for these
//! systems. Using the numactl program, it is possible to interleave the
//! allocated memory with a minimal impact to performance."
//!
//! Sweeps the datastore working set on a modelled four-socket node and
//! reports the throughput of the default first-touch policy vs
//! `numactl --interleave=all`.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_numa
//! ```

use mp_bench::table;
use mp_hpcsim::{MemPolicy, NumaNode};

fn main() {
    let node = NumaNode::default();
    println!("=== §IV-A2: NUMA placement for the datastore process ===\n");
    println!(
        "node: {} sockets x {} GB, local {} ns, remote {} ns\n",
        node.sockets, node.mem_per_socket_gb, node.local_ns, node.remote_ns
    );

    let mut rows = Vec::new();
    for (ws, ft, il) in node.policy_sweep(8) {
        rows.push(vec![
            format!("{ws:.0}"),
            format!("{:.3}", ft),
            format!("{:.3}", il),
            format!("{:+.1}%", (il / ft - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "working set (GB)",
                "first-touch",
                "interleave",
                "interleave vs ft"
            ],
            &rows
        )
    );

    let full = node.mem_per_socket_gb * node.sockets as f64;
    let ft_full = node.relative_throughput(MemPolicy::FirstTouch, full);
    let il_full = node.relative_throughput(MemPolicy::Interleave, full);
    println!("paper's claim, checked:");
    println!(
        "  at a DB using most of the machine ({full:.0} GB), interleaving costs only {:.1}% \
         vs first-touch — 'a minimal impact to performance': {}",
        (1.0 - il_full / ft_full) * 100.0,
        (1.0 - il_full / ft_full).abs() < 0.05
    );
    println!("  and unlike first-touch, interleave latency is flat as the working set");
    println!("  grows — no cliff when the DB outgrows one socket's memory.");
}
