//! §III-C3 / §IV-C1 — where the time actually goes: "The time to load
//! the full results of codes is significant ... Aside from that, system
//! overheads are minimal. The queries to pull down inputs and update the
//! database with new job statuses execute in a negligible fraction of
//! the time to perform the calculations."
//!
//! Splits one campaign's simulated time into compute, queue wait, data
//! loading, and measured datastore overhead, and reports the proxy
//! penalty of the workers-can't-reach-the-db network policy.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_data_loading --release [--n 300]
//! ```

use mp_bench::table;
use mp_core::{DataLoader, MaterialsProject, StagedResult};
use mp_dft::{Incar, Kpoints};
use mp_hpcsim::DatastoreRoute;
use mp_matsci::IcsdGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--n")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("=== §IV-C1: data loading and overhead split ({n} calcs) ===\n");

    let mut mp = MaterialsProject::new()?;
    let recs = mp.ingest_icsd(n, 1001)?;
    mp.submit_calculations(&recs)?;
    let report = mp.run_campaign(60)?;

    let compute = report.compute_s;
    let wait = report.queue_wait_s;
    let load = report.load_s;
    let store = report.store_overhead_us as f64 / 1e6;
    let total = compute + wait + load + store;

    let rows = vec![
        vec![
            "compute (node-seconds)".into(),
            format!("{compute:.0}"),
            pct(compute, total),
        ],
        vec!["queue wait".into(), format!("{wait:.0}"), pct(wait, total)],
        vec![
            "data loading (post-processing)".into(),
            format!("{load:.1}"),
            pct(load, total),
        ],
        vec![
            "datastore ops (measured)".into(),
            format!("{store:.3}"),
            pct(store, total),
        ],
    ];
    println!("{}", table(&["phase", "seconds", "share"], &rows));

    println!("paper's claims, checked:");
    println!(
        "  loading is significant (>> store overhead): {}",
        load > store * 10.0
    );
    println!(
        "  store overhead is a negligible fraction of compute: {} ({:.5}%)",
        store / compute < 0.001,
        100.0 * store / compute
    );

    // The proxy penalty: same staged volume, direct vs via-proxy route.
    let mut gen = IcsdGenerator::new(5);
    let sample: Vec<StagedResult> = gen
        .generate(50)
        .into_iter()
        .map(|r| {
            let incar = Incar::default();
            let kp = Kpoints::gamma_only();
            let run = mp_dft::run(&r.structure, &incar, &kp);
            StagedResult {
                fw_id: format!("probe-{}", r.mps_id),
                mps_id: r.mps_id,
                intermediate_mb: run.demand.intermediate_mb,
                run,
                relax: None,
                structure: r.structure,
                incar,
                kpoints: kp,
            }
        })
        .collect();
    let direct = DataLoader::new(DatastoreRoute::Direct);
    let proxy = DataLoader::new(DatastoreRoute::ViaProxy);
    let t_direct: f64 = sample.iter().map(|s| direct.load_time_s(s)).sum();
    let t_proxy: f64 = sample.iter().map(|s| proxy.load_time_s(s)).sum();
    println!("\nnetwork-policy ablation over 50 results:");
    println!("  load via direct connection  {t_direct:.1} s");
    println!(
        "  load via proxy (production) {t_proxy:.1} s  (+{:.0}%)",
        100.0 * (t_proxy - t_direct) / t_direct
    );
    let raw_mb: f64 = mp
        .database()
        .collection("tasks")
        .dump()
        .iter()
        .filter_map(|t| t["resources"]["intermediate_mb"].as_f64())
        .sum();
    println!("\nloader lifetime stats: parsed {raw_mb:.0} MB of intermediate output into");
    println!("small task documents — the Analyzer reduction of §III-B.");
    Ok(())
}

fn pct(a: f64, b: f64) -> String {
    format!("{:.3}%", 100.0 * a / b.max(1e-12))
}
