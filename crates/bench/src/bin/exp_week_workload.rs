//! §I headline numbers — "in the week of August 20–27, 2012 the web
//! interface logged 3315 distinct queries returning a total of
//! 12,951,099 records."
//!
//! Replays a week-shaped workload (the same mix as Fig. 5 plus the bulk
//! programmatic pulls that dominate the record count) and reports both
//! numbers alongside the paper's.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_week_workload [--scale 0.1]
//! ```

use mp_bench::populated_deployment;
use mp_mapi::ApiRequest;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let target_queries = (3315.0 * scale) as usize;
    println!("=== §I week workload (scale {scale}: {target_queries} queries) ===\n");

    let mp = populated_deployment(150, 8)?;
    let api = mp.materials_api();
    let db = mp.database();
    let formulas: Vec<String> = db
        .collection("materials")
        .find(&json!({}))?
        .iter()
        .filter_map(|m| m["formula"].as_str().map(String::from))
        .collect();

    // The paper's ratio: ~3.9k records per query — web point lookups are
    // numerous but bulk API pulls return thousands of records each.
    let mut t = 0.0f64;
    let mut served = 0usize;
    for i in 0..target_queries {
        t += 180.0; // spread across the simulated week
        if i % 8 == 7 {
            // Bulk programmatic pull (pymatgen-style): whole-collection
            // scans with projections.
            api.structured_query(
                &ApiRequest::get("/bulk").at(t),
                "materials",
                &json!({}),
                &["formula", "energy_per_atom", "band_gap"],
            );
            // Each bulk query in production touched many thousands of
            // records; our scaled DB returns its whole materials view.
        } else {
            let f = &formulas[i % formulas.len()];
            api.handle(&ApiRequest::get(&format!("/rest/v1/materials/{f}")).at(t));
        }
        served += 1;
    }

    let log = api.weblog();
    let records = log.total_records();
    let per_query = records as f64 / served as f64;
    println!("queries served        {served}");
    println!("records returned      {records}");
    println!("records per query     {per_query:.1}");
    println!();
    println!("paper (full scale):   3315 queries, 12,951,099 records (~3907/query)");
    println!(
        "ours (db of {} materials): the *shape* to check is a",
        formulas.len()
    );
    println!("records-per-query ratio far above 1 — bulk API pulls dominate volume");
    println!("while point lookups dominate the query count.");
    let p50 = log.percentile_ms(50.0).unwrap_or(0.0);
    println!("\nmedian latency across the week: {p50:.0} ms (Fig.-5-consistent)");
    Ok(())
}
