//! §IV-D2 — "Future scalability can leverage the sharding and
//! replication capabilities built in to MongoDB."
//!
//! The paper defers this to future work; we built it, so we measure it:
//! targeted vs scatter-gather routing on a hash-sharded cluster, shard
//! balance, replica-set read scaling, staleness, and failover loss
//! bounds.
//!
//! ```text
//! cargo run -p mp-bench --release --bin exp_sharding
//! ```

use mp_bench::table;
use mp_docstore::{ReadPreference, ReplicaSet, ShardedCluster};
use serde_json::json;
use std::time::Instant;

fn main() {
    println!("=== §IV-D2: sharding and replication (built, not just envisioned) ===\n");

    // --- sharding: routing and balance ---
    let n_docs = 20_000;
    let mut rows = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let cluster = ShardedCluster::new(shards, "chemsys");
        for i in 0..n_docs {
            cluster
                .insert_one(
                    "materials",
                    json!({"chemsys": format!("sys-{}", i % 997),
                           "gap": (i % 50) as f64 / 10.0}),
                )
                .unwrap();
        }
        // Targeted query: equality on the shard key.
        let t = Instant::now();
        for q in 0..200 {
            cluster
                .find("materials", &json!({"chemsys": format!("sys-{}", q)}))
                .unwrap();
        }
        let targeted_ms = t.elapsed().as_secs_f64() * 1000.0;
        // Scatter-gather: range on a non-key field.
        let t = Instant::now();
        for _ in 0..20 {
            cluster
                .find("materials", &json!({"gap": {"$gte": 4.5}}))
                .unwrap();
        }
        let scatter_ms = t.elapsed().as_secs_f64() * 1000.0;
        let dist = cluster.distribution("materials");
        let imbalance =
            *dist.iter().max().unwrap() as f64 / *dist.iter().min().unwrap().max(&1) as f64;
        rows.push(vec![
            format!("{shards}"),
            format!("{targeted_ms:.0}"),
            format!("{scatter_ms:.0}"),
            format!("{imbalance:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "shards",
                "200 targeted (ms)",
                "20 scatter (ms)",
                "max/min balance"
            ],
            &rows
        )
    );
    println!("shape: targeted reads stay flat (one shard each) while each shard");
    println!("holds 1/N of the data; hash sharding keeps the balance near 1.\n");

    // --- replication: lag and failover ---
    let rs = ReplicaSet::new(2, 500);
    for i in 0..2_000 {
        rs.insert_one("m", json!({ "i": i })).unwrap();
    }
    println!("replica set: 2 secondaries, batch 500/round");
    let mut round = 0;
    loop {
        let lag = rs.replicate().unwrap();
        round += 1;
        println!("  after round {round}: max lag {lag} entries");
        if lag == 0 {
            break;
        }
    }
    let sec = rs.find(ReadPreference::Secondary, "m", &json!({})).unwrap();
    println!(
        "  secondary serves {} documents (read scaling enabled)",
        sec.len()
    );

    let mut rs = ReplicaSet::new(2, 300);
    for i in 0..1_000 {
        rs.insert_one("m", json!({ "i": i })).unwrap();
    }
    rs.replicate().unwrap(); // 300 applied
    let lost = rs.failover().unwrap();
    println!("\nfailover drill: primary lost after partial replication");
    println!("  writes lost: {lost} (bounded by the replication lag — the durability");
    println!("  cost of async replication the production deployment had to weigh)");
}
