//! Figure 4 — the Materials API URI anatomy, exercised end-to-end:
//!
//! ```text
//! https://www.materialsproject.org/rest/v1/materials/Fe2O3/vasp/energy
//!         preamble               version  datatype  id    code property
//! ```
//!
//! ```text
//! cargo run -p mp-bench --bin fig4_materials_api
//! ```

use mp_core::MaterialsProject;
use mp_dft::Incar;
use mp_fireworks::{Binder, Firework, Stage, Workflow};
use mp_mapi::ApiRequest;
use mp_matsci::{prototypes, Element, MpsRecord, MpsSource};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 4: the Materials API URI ===\n");

    // Put the paper's own example compound — ferric oxide — through the
    // full pipeline so the API query below is served from real task data.
    let mut mp = MaterialsProject::new()?;
    // Build an Fe2O3 cell from the rutile FeO2 prototype (cell Fe2O4)
    // with one oxygen vacancy — a corundum stand-in with the right
    // stoichiometry.
    let mut s = prototypes::rutile(Element::from_symbol("Fe")?, Element::from_symbol("O")?);
    s.sites.remove(s.sites.len() - 1);
    let rec = MpsRecord::new("mps-fe2o3", s, MpsSource::Icsd { code: 15840 });
    assert_eq!(rec.structure.formula(), "Fe2O3");
    mp.database().collection("mps").insert_one(rec.to_doc())?;

    let spec = mp_core::make_spec(&rec, &Incar::default(), 50_000.0);
    let fw = Firework::new("fw-fe2o3", "static Fe2O3", Stage(spec))
        .with_binder(Binder::new(rec.structure.fingerprint(), "GGA"));
    mp.launchpad()
        .add_workflow(&Workflow::single("wf-fe2o3", fw))?;
    let report = mp.run_campaign(10)?;
    println!("pipeline: {} task(s) computed\n", report.completed);
    mp.build_views(Element::from_symbol("Li")?)?;

    let api = mp.materials_api();
    let uri = "/rest/v1/materials/Fe2O3/vasp/energy";
    println!("URI anatomy:");
    println!("  /rest        preamble");
    println!("  /v1          version");
    println!("  /materials   datatype");
    println!("  /Fe2O3       identifier");
    println!("  /vasp        application (code)");
    println!("  /energy      property\n");

    let resp = api.handle(&ApiRequest::get(uri));
    println!("GET {uri}");
    println!("-> {}", serde_json::to_string_pretty(&resp.body)?);
    assert_eq!(resp.status, 200);
    let energy = resp.payload()[0]["output"]["energy"].as_f64().unwrap();
    println!("\ncalculated energy of Fe2O3: {energy:.3} eV/cell");

    // The other anatomy degrees of freedom.
    println!("\nvariations:");
    for u in [
        "/rest/v1/materials/Fe2O3",
        "/rest/v1/materials/Fe2O3/vasp/band_gap",
        "/rest/v1/materials/Fe-O",
        "/rest/v1/materials/mp-fe2o3",
        "/rest/v2/materials/Fe2O3/vasp/energy",
        "/rest/v1/materials/Fe2O3/vasp/password",
    ] {
        let r = api.handle(&ApiRequest::get(u).at(10.0));
        println!("  GET {u:<45} -> {}", r.status);
    }

    // Results are JSON "that can easily be consumed by other software":
    let as_json: serde_json::Value = resp.body;
    assert!(as_json["valid_response"].as_bool().unwrap());
    let _ = json!({"consumed_by": "pymatgen-equivalent tooling"});
    Ok(())
}
