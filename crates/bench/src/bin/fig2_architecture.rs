//! Figure 2 — "Materials Project architecture. The datastore serves all
//! four major functions, clockwise from upper-left: Parallel
//! computation, Data analytics, Data dissemination, and Data validation
//! and verification."
//!
//! This harness *proves* the figure's claim on a live run: all four
//! roles execute against the same database instance, and the per-role
//! operation counts are read back from the store's own profiler.
//!
//! ```text
//! cargo run -p mp-bench --release --bin fig2_architecture
//! ```

use mp_bench::table;
use mp_core::MaterialsProject;
use mp_docstore::{HadoopEngine, MapReduce};
use mp_mapi::ApiRequest;
use mp_matsci::Element;
use serde_json::json;

fn ops_since(mp: &MaterialsProject, start: u64) -> u64 {
    mp.database().profiler().total_ops() - start
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 2: one datastore, four roles ===\n");
    let mut mp = MaterialsProject::new()?;
    let li = Element::from_symbol("Li")?;

    // Role 1: parallel computation — the workflow engine keeps its
    // queue and task state in the store.
    let t0 = mp.database().profiler().total_ops();
    let recs = mp.ingest_icsd(50, 2)?;
    mp.submit_calculations(&recs)?;
    let report = mp.run_campaign(25)?;
    let ops_compute = ops_since(&mp, t0);

    // Role 2: data analytics — derived views, MapReduce, hulls.
    let t0 = mp.database().profiler().total_ops();
    mp.build_views(li)?;
    let ops_analytics = ops_since(&mp, t0);

    // Role 3: data V&V — MapReduce consistency checks.
    let t0 = mp.database().profiler().total_ops();
    let violations = mp.run_vnv()?;
    let clean = mp_mapi::vnv_clean(&violations);
    let ops_vnv = ops_since(&mp, t0);

    // Role 4: data dissemination — the Materials API + portal.
    let t0 = mp.database().profiler().total_ops();
    let api = mp.materials_api();
    let mats = mp.database().collection("materials").find(&json!({}))?;
    for (i, m) in mats.iter().take(50).enumerate() {
        let f = m["formula"].as_str().unwrap_or("?");
        api.handle(&ApiRequest::get(&format!("/rest/v1/materials/{f}")).at(i as f64 * 3.0));
    }
    let ops_dissemination = ops_since(&mp, t0);

    let rows = vec![
        vec![
            "parallel computation".into(),
            ops_compute.to_string(),
            format!("{} tasks via engines/tasks/binders", report.completed),
        ],
        vec![
            "data analytics".into(),
            ops_analytics.to_string(),
            format!("{} materials + spectra + batteries", mats.len()),
        ],
        vec![
            "data V&V".into(),
            ops_vnv.to_string(),
            format!("consistency checks clean: {clean}"),
        ],
        vec![
            "data dissemination".into(),
            ops_dissemination.to_string(),
            "50 Materials API requests".into(),
        ],
    ];
    println!(
        "{}",
        table(&["role (Fig. 2 box)", "store ops", "what ran"], &rows)
    );

    // The figure's architectural claim: these were all THE SAME database.
    println!("collections now present in the single shared datastore:");
    for name in mp.database().collection_names() {
        println!(
            "  {name:<16} {:>6} docs",
            mp.database().collection(&name).len()
        );
    }
    println!("\nqueue + analytics + V&V + web served by one deployment — no ETL");
    println!("between roles, which is the paper's central design argument.");

    // And the same store can be the back end for the parallel MapReduce
    // engine, simultaneously (role overlap, §III-B4).
    let tasks = mp.database().collection("tasks").dump();
    let groups = HadoopEngine::new(2)
        .run(
            &tasks,
            &|d, emit| emit(d["chemsys"].clone(), json!(1)),
            &mp_docstore::mapreduce::sum_reduce,
        )?
        .len();
    println!("(bonus: parallel MapReduce grouped those tasks into {groups} systems)");
    Ok(())
}
