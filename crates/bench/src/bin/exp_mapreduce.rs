//! §IV-B2 / §IV-C2 — MapReduce engine comparison: the built-in
//! single-threaded engine ("severely limited by implementation within a
//! single-threaded Javascript engine") vs. the Hadoop-style parallel
//! runtime, which the paper found "can be several times faster".
//!
//! The job is the production one: group `tasks` by `mps_id` and pick the
//! best result (the materials-view build), across dataset sizes and
//! worker counts.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_mapreduce --release
//! ```

use mp_bench::table;
use mp_docstore::{BuiltinEngine, HadoopEngine, MapReduce};
use serde_json::{json, Value};
use std::time::Instant;

fn synth_tasks(n: usize) -> mp_docstore::Docs {
    (0..n)
        .map(|i| {
            std::sync::Arc::new(json!({
                "_id": format!("t{i}"),
                "mps_id": format!("mps-{}", i % (n / 3).max(1)),
                "status": "converged",
                "formula": "X", "elements": ["X"],
                "output": {"energy_per_atom": -(i as f64 % 11.0) - 1.0,
                            "scf_trace": (0..24).map(|k| -5.0 - k as f64 * 0.1).collect::<Vec<f64>>()},
            }))
        })
        .collect()
}

fn group_best(engine: &dyn MapReduce, docs: &[std::sync::Arc<Value>]) -> usize {
    let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
        emit(doc["mps_id"].clone(), doc.clone());
    };
    let reduce = |_k: &Value, vs: &[Value]| -> Value {
        vs.iter()
            .min_by(|a, b| {
                a["output"]["energy_per_atom"]
                    .as_f64()
                    .unwrap_or(0.0)
                    .partial_cmp(&b["output"]["energy_per_atom"].as_f64().unwrap_or(0.0))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
            .unwrap_or(Value::Null)
    };
    engine
        .run(docs, &map, &reduce)
        .expect("mapreduce runs")
        .len()
}

fn time_it(f: impl FnOnce() -> usize) -> (f64, usize) {
    let t = Instant::now();
    let n = f();
    (t.elapsed().as_secs_f64() * 1000.0, n)
}

fn main() {
    println!("=== §IV-B2: builtin single-threaded vs Hadoop-style MapReduce ===\n");
    // The interpreter tax of the single-threaded JS engine, modelled as
    // a fixed per-document cost (MongoDB 2.x's JS map calls cost tens of
    // microseconds each).
    let builtin = BuiltinEngine::with_overhead_ns(15_000);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let hadoop = HadoopEngine::new(workers);
    let hadoop1 = HadoopEngine::new(1);

    let mut rows = Vec::new();
    for &n in &[2_000usize, 10_000, 50_000] {
        let docs = synth_tasks(n);
        let (t_builtin, k1) = time_it(|| group_best(&builtin, &docs));
        let (t_h1, _) = time_it(|| group_best(&hadoop1, &docs));
        let (t_hn, k2) = time_it(|| group_best(&hadoop, &docs));
        assert_eq!(k1, k2, "engines must agree");
        rows.push(vec![
            format!("{n}"),
            format!("{k1}"),
            format!("{t_builtin:.1}"),
            format!("{t_h1:.1}"),
            format!("{t_hn:.1}"),
            format!("{:.1}x", t_builtin / t_hn),
        ]);
    }
    let par_hdr = format!("hadoop-{workers}w(ms)");
    println!(
        "{}",
        table(
            &[
                "docs",
                "groups",
                "builtin(ms)",
                "hadoop-1w(ms)",
                &par_hdr,
                "speedup"
            ],
            &rows
        )
    );
    println!("host parallelism: {workers} core(s)");
    println!();
    println!("expected shape: the Hadoop-style engine wins by 'several times', as");
    println!("the paper found. Two independent causes are modelled: (1) it avoids");
    println!("the single-threaded JS interpreter tax of Mongo's builtin engine, and");
    println!("(2) on multi-core hosts it additionally scales across workers.");
}
