//! §III-B scale numbers — "we store hundreds of fields describing
//! calculations for over 30,000 materials, 3,000 bandstructures, 400
//! intercalation batteries, and 14,000 conversion batteries", with the
//! aggregate volume "relatively small, in the hundreds of GB" *after*
//! the Analyzer's reduction of several-MB intermediate outputs.
//!
//! Builds a scaled dataset and reports every one of those quantities,
//! including the reduction ratio.
//!
//! ```text
//! cargo run -p mp-bench --bin exp_dataset_scale --release [--scale 0.01]
//! ```

use mp_bench::table;
use mp_core::MaterialsProject;
use mp_matsci::Element;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let n = ((30_000.0 * scale) as usize).max(20);
    println!("=== §III-B dataset scale (scale {scale}: {n} input materials) ===\n");

    let li = Element::from_symbol("Li")?;
    let mut mp = MaterialsProject::new()?;
    // Mixed stream: general ICSD chemistry plus battery frameworks, so
    // both battery classes appear at realistic ratios.
    let mut recs = mp.ingest_icsd(n * 2 / 3, 2012)?;
    recs.extend(mp.ingest_battery_candidates(n / 3, 2013, li)?);
    mp.submit_calculations(&recs)?;
    let report = mp.run_campaign(60)?;
    let summary = mp.build_views(li)?;

    // Bandstructures: the paper has ~1 per 10 materials (they are the
    // expensive follow-up calculation).
    let n_mats = summary["materials"].as_u64().unwrap_or(0);

    // Dataset volume accounting.
    let db = mp.database();
    let mut stored_bytes = 0usize;
    let mut fields_largest = 0usize;
    for coll in db.collection_names() {
        for doc in db.collection(&coll).dump() {
            stored_bytes += serde_json::to_string(&doc).map(|s| s.len()).unwrap_or(0);
            fields_largest = fields_largest.max(count_fields(&doc));
        }
    }
    let raw_mb: f64 = db
        .collection("tasks")
        .dump()
        .iter()
        .filter_map(|t| t["resources"]["intermediate_mb"].as_f64())
        .sum();

    let rows = vec![
        vec![
            "materials".into(),
            n_mats.to_string(),
            format!("{:.0}", 30_000.0 * scale),
            "30,000".into(),
        ],
        vec![
            "bandstructures".into(),
            summary["bandstructures"].as_u64().unwrap_or(0).to_string(),
            format!("{:.0}", 3_000.0 * scale),
            "3,000".into(),
        ],
        vec![
            "intercalation batteries".into(),
            summary["intercalation_batteries"]
                .as_u64()
                .unwrap_or(0)
                .to_string(),
            format!("{:.0}", 400.0 * scale),
            "400".into(),
        ],
        vec![
            "conversion batteries".into(),
            summary["conversion_batteries"]
                .as_u64()
                .unwrap_or(0)
                .to_string(),
            format!("{:.0}", 14_000.0 * scale),
            "14,000".into(),
        ],
        vec![
            "tasks (converged)".into(),
            report.completed.to_string(),
            "-".into(),
            "80,000+ screened".into(),
        ],
    ];
    println!(
        "{}",
        table(
            &["quantity", "ours", "paper x scale", "paper (full)"],
            &rows
        )
    );

    println!("max fields in one document: {fields_largest} (paper: 'hundreds of fields')");
    println!(
        "raw intermediate output:    {:.1} MB generated on scratch",
        raw_mb
    );
    println!(
        "stored after reduction:     {:.1} MB in the datastore",
        stored_bytes as f64 / 1e6
    );
    println!(
        "reduction factor:           {:.0}x (paper: MB-scale raw -> 'hundreds of GB' total for ~30k materials)",
        raw_mb / (stored_bytes as f64 / 1e6).max(1e-9)
    );
    Ok(())
}

fn count_fields(v: &serde_json::Value) -> usize {
    match v {
        serde_json::Value::Object(m) => m.len() + m.values().map(count_fields).sum::<usize>(),
        serde_json::Value::Array(a) => a.iter().map(count_fields).sum(),
        _ => 0,
    }
}
