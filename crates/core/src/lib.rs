//! # mp-core — the integrated Materials Project system
//!
//! Wires every substrate together around the single shared datastore,
//! exactly as Fig. 2 of the paper draws it:
//!
//! * **Parallel computation** — [`project::MaterialsProject`] claims
//!   FireWorks jobs, assembles inputs ([`assembler`]), runs them through
//!   the simulated batch system and DFT engine;
//! * **Data V&V / loading** — [`loading::DataLoader`] performs the
//!   offline post-processing step (workers can't reach the datastore),
//!   and [`project::MaterialsProject::run_vnv`] runs the MapReduce
//!   consistency checks;
//! * **Data analytics** — [`analytics`] derives materials, stability,
//!   batteries, band structures and XRD patterns;
//! * **Data dissemination** — [`project::MaterialsProject::materials_api`]
//!   serves it all over the Materials API.

pub mod analytics;
pub mod assembler;
pub mod loading;
pub mod project;

pub use analytics::{
    build_all_views, build_bandstructures, build_batteries, build_phase_diagrams, build_xrd,
    conversion_reaction, elemental_reference,
};
pub use assembler::{assemble, make_spec, render_input_files, AssembledJob};
pub use loading::{DataLoader, StagedResult};
pub use project::{analyze_run, CampaignReport, MaterialsProject, SubmissionMode};
