//! Offline data loading (§IV-C1).
//!
//! "The process of loading output data from the VASP simulation into the
//! database is performed as a post-processing step. This is necessary
//! because the 'worker' nodes cannot connect out to the database server
//! and, at any rate, this would be a poor use of optimized parallel
//! resources." Workers stage their raw outputs on scratch; the loader
//! (running on midrange resources with datastore access, possibly via a
//! proxy) parses, reduces, and files each result through the launchpad.

use crate::project::analyze_run;
use mp_dft::{Incar, Kpoints, RelaxResult, RunResult};
use mp_docstore::Result;
use mp_fireworks::{LaunchPad, LaunchReport};
use mp_hpcsim::DatastoreRoute;
use mp_lint::RuleSet;
use mp_matsci::Structure;

/// One run's outputs sitting on scratch, awaiting loading.
#[derive(Debug, Clone)]
pub struct StagedResult {
    /// Firework that produced it.
    pub fw_id: String,
    /// MPS provenance.
    pub mps_id: String,
    /// The simulated run outcome.
    pub run: RunResult,
    /// Relaxation detail when this was a relax task.
    pub relax: Option<RelaxResult>,
    /// Inputs (needed for the reduced task document and detours).
    pub structure: Structure,
    /// Calculation parameters used.
    pub incar: Incar,
    /// Mesh used.
    pub kpoints: Kpoints,
    /// Raw intermediate output volume on scratch (MB).
    pub intermediate_mb: f64,
}

/// The loader: a staging area plus the route constraint.
pub struct DataLoader {
    route: DatastoreRoute,
    staged: Vec<StagedResult>,
    /// V&V contract applied to reduced task documents before commit;
    /// `None` disables validation.
    ruleset: Option<RuleSet>,
    /// Total MB parsed over the loader's lifetime.
    pub total_mb: f64,
    /// Results loaded over the loader's lifetime.
    pub total_loaded: usize,
    /// Documents the V&V contract rejected (filed as Fatal).
    pub total_rejected: usize,
}

impl DataLoader {
    /// Loader over a datastore route, validating task documents with the
    /// default contract ([`RuleSet::task_defaults`]).
    pub fn new(route: DatastoreRoute) -> Self {
        DataLoader {
            route,
            staged: Vec::new(),
            ruleset: Some(RuleSet::task_defaults()),
            total_mb: 0.0,
            total_loaded: 0,
            total_rejected: 0,
        }
    }

    /// Builder: replace the V&V contract (`None` disables validation).
    pub fn with_ruleset(mut self, ruleset: Option<RuleSet>) -> Self {
        self.ruleset = ruleset;
        self
    }

    /// Number of results waiting on scratch.
    pub fn pending(&self) -> usize {
        self.staged.len()
    }

    /// Stage a result (what a worker does at job end).
    pub fn stage(&mut self, result: StagedResult) {
        self.staged.push(result);
    }

    /// Simulated seconds to load one result: parse cost scales with the
    /// intermediate volume; proxy routing adds a per-result hop.
    pub fn load_time_s(&self, r: &StagedResult) -> f64 {
        let parse = 0.4 + 0.06 * r.intermediate_mb;
        let hop = match self.route {
            DatastoreRoute::Direct => 0.05,
            DatastoreRoute::ViaProxy => 0.35,
        };
        parse + hop
    }

    /// Drain the staging area: parse + reduce each result, run the V&V
    /// contract over the reduced document, and file the analyzer's report
    /// through the launchpad. Documents that fail validation are filed as
    /// `Fatal` (with the rendered diagnostics) instead of being committed.
    /// Returns simulated seconds spent loading — the paper's "significant
    /// time".
    pub fn drain(&mut self, pad: &LaunchPad) -> Result<f64> {
        let mut spent = 0.0;
        for r in std::mem::take(&mut self.staged) {
            spent += self.load_time_s(&r);
            self.total_mb += r.intermediate_mb;
            self.total_loaded += 1;
            let mut report = analyze_run(
                &r.run,
                r.relax.as_ref(),
                &r.structure,
                &r.incar,
                &r.kpoints,
                &r.mps_id,
            );
            if let (Some(rules), LaunchReport::Success { task_doc }) = (&self.ruleset, &report) {
                let diags = rules.validate(task_doc);
                if mp_lint::has_errors(&diags) {
                    self.total_rejected += 1;
                    report = LaunchReport::Fatal {
                        reason: format!("task document failed V&V:\n{}", mp_lint::render(&diags)),
                    };
                }
            }
            pad.report(&r.fw_id, report)?;
        }
        Ok(spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_docstore::Database;
    use mp_fireworks::{Firework, Stage, Workflow};
    use serde_json::json;

    fn staged(fw_id: &str) -> StagedResult {
        let s = mp_matsci::prototypes::rocksalt(
            mp_matsci::Element::from_symbol("Na").unwrap(),
            mp_matsci::Element::from_symbol("Cl").unwrap(),
        );
        let incar = Incar::default();
        let kp = Kpoints::gamma_only();
        let run = mp_dft::run(&s, &incar, &kp);
        StagedResult {
            fw_id: fw_id.into(),
            mps_id: "mps-1".into(),
            run,
            relax: None,
            structure: s,
            incar,
            kpoints: kp,
            intermediate_mb: 10.0,
        }
    }

    #[test]
    fn drain_files_tasks() {
        let pad = LaunchPad::new(Database::new()).unwrap();
        pad.add_workflow(&Workflow::single(
            "wf",
            Firework::new("fw-1", "x", Stage(json!({}))),
        ))
        .unwrap();
        pad.claim_next(&json!({}), "w").unwrap();
        let mut loader = DataLoader::new(DatastoreRoute::ViaProxy);
        loader.stage(staged("fw-1"));
        assert_eq!(loader.pending(), 1);
        let t = loader.drain(&pad).unwrap();
        assert!(t > 0.9, "loading cost {t}");
        assert_eq!(loader.pending(), 0);
        assert_eq!(loader.total_loaded, 1);
        let task = pad
            .database()
            .collection("tasks")
            .find_one(&json!({"fw_id": "fw-1"}))
            .unwrap()
            .unwrap();
        assert_eq!(task["mps_id"], "mps-1");
        assert_eq!(task["status"], "converged");
    }

    #[test]
    fn drain_rejects_documents_failing_vnv() {
        let pad = LaunchPad::new(Database::new()).unwrap();
        pad.add_workflow(&Workflow::single(
            "wf",
            Firework::new("fw-1", "x", Stage(json!({}))),
        ))
        .unwrap();
        pad.claim_next(&json!({}), "w").unwrap();
        // A contract no real task document satisfies: the loader must file
        // the result as Fatal instead of committing it.
        let mut loader = DataLoader::new(DatastoreRoute::Direct)
            .with_ruleset(Some(RuleSet::new("tasks").require("no.such.field")));
        loader.stage(staged("fw-1"));
        loader.drain(&pad).unwrap();
        assert_eq!(loader.total_rejected, 1);
        assert!(
            pad.database()
                .collection("tasks")
                .find_one(&json!({"fw_id": "fw-1"}))
                .unwrap()
                .is_none(),
            "rejected document must not be committed"
        );
        let engine = pad
            .database()
            .collection("engines")
            .find_one(&json!({"_id": "fw-1"}))
            .unwrap()
            .unwrap();
        assert_eq!(engine["state"], "FIZZLED");

        // The default contract accepts real documents (exercised by
        // drain_files_tasks); disabling validation also works.
        let lax = DataLoader::new(DatastoreRoute::Direct).with_ruleset(None);
        assert!(lax.ruleset.is_none());
    }

    #[test]
    fn proxy_costs_more_than_direct() {
        let via = DataLoader::new(DatastoreRoute::ViaProxy);
        let direct = DataLoader::new(DatastoreRoute::Direct);
        let r = staged("fw-x");
        assert!(via.load_time_s(&r) > direct.load_time_s(&r));
    }

    #[test]
    fn load_time_scales_with_volume() {
        let loader = DataLoader::new(DatastoreRoute::ViaProxy);
        let mut small = staged("a");
        small.intermediate_mb = 1.0;
        let mut big = staged("b");
        big.intermediate_mb = 100.0;
        assert!(loader.load_time_s(&big) > loader.load_time_s(&small) * 3.0);
    }
}
