//! The Assembler (§III-C2): turns a Firework's Stage dictionary into the
//! concrete inputs a calculation consumes — structure, INCAR, KPOINTS —
//! "translated into input files on a compute node".

use mp_dft::{Incar, Kpoints};
use mp_matsci::{MpsRecord, Structure};
use serde_json::{json, Value};

/// The assembled inputs of one calculation.
#[derive(Debug, Clone)]
pub struct AssembledJob {
    /// Calculation type: "static" or "relax".
    pub task_type: String,
    /// The crystal to compute.
    pub structure: Structure,
    /// Calculation parameters.
    pub incar: Incar,
    /// k-point mesh.
    pub kpoints: Kpoints,
    /// Requested walltime (s).
    pub walltime_s: f64,
    /// MPS provenance id.
    pub mps_id: String,
}

/// Assembly failure (malformed spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError(pub String);

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assembler: {}", self.0)
    }
}
impl std::error::Error for AssembleError {}

/// Build the Stage spec document for an MPS record — the inverse of
/// [`assemble`]. Derived queryable fields (elements, nelectrons) ride
/// along so the paper's job-selection queries work on the spec.
pub fn make_spec(rec: &MpsRecord, incar: &Incar, walltime_s: f64) -> Value {
    make_typed_spec(rec, incar, walltime_s, "static")
}

/// Build a spec with an explicit task type ("relax" or "static").
pub fn make_typed_spec(rec: &MpsRecord, incar: &Incar, walltime_s: f64, task_type: &str) -> Value {
    let comp = rec.composition();
    json!({
        "task_type": task_type,
        "mps_id": rec.mps_id,
        "formula": comp.reduced_formula(),
        "elements": comp.elements().iter().map(|e| e.symbol()).collect::<Vec<_>>(),
        "nelectrons": comp.num_electrons(),
        "structure": serde_json::to_value(&rec.structure).expect("structure serializes"),
        "incar": incar.to_dict(),
        "kpoints": {"kppra": 20.0},
        "walltime_s": walltime_s,
        "nodes": 1,
    })
}

/// Translate a spec back into runnable inputs.
pub fn assemble(spec: &Value) -> Result<AssembledJob, AssembleError> {
    let structure: Structure = serde_json::from_value(spec["structure"].clone())
        .map_err(|e| AssembleError(format!("structure: {e}")))?;
    let incar = Incar::from_dict(&spec["incar"]).map_err(|e| AssembleError(e.to_string()))?;
    let kpoints = if let Some(mesh) = spec["kpoints"].get("mesh") {
        let m: [u32; 3] = serde_json::from_value(mesh.clone())
            .map_err(|e| AssembleError(format!("kpoints: {e}")))?;
        Kpoints { mesh: m }
    } else {
        let kppra = spec["kpoints"]["kppra"].as_f64().unwrap_or(20.0);
        Kpoints::automatic(structure.lattice.lengths(), kppra)
    };
    let walltime_s = spec["walltime_s"].as_f64().unwrap_or(3600.0);
    let mps_id = spec["mps_id"].as_str().unwrap_or("unknown").to_string();
    let task_type = spec["task_type"].as_str().unwrap_or("static").to_string();
    Ok(AssembledJob {
        task_type,
        structure,
        incar,
        kpoints,
        walltime_s,
        mps_id,
    })
}

/// Render the assembled job as the classic input files (for logging and
/// the quickstart example) — what lands on the compute node's scratch.
pub fn render_input_files(job: &AssembledJob) -> Vec<(String, String)> {
    let mut poscar = format!("{}\n1.0\n", job.structure.formula());
    for row in &job.structure.lattice.matrix {
        poscar.push_str(&format!("{:.6} {:.6} {:.6}\n", row[0], row[1], row[2]));
    }
    for site in &job.structure.sites {
        poscar.push_str(&format!(
            "{} {:.6} {:.6} {:.6}\n",
            site.element.symbol(),
            site.frac[0],
            site.frac[1],
            site.frac[2]
        ));
    }
    let incar = format!(
        "ENCUT = {}\nEDIFF = {:e}\nNELM = {}\nALGO = {:?}\nAMIX = {}\nIBRION = {}\n",
        job.incar.encut,
        job.incar.ediff,
        job.incar.nelm,
        job.incar.algo,
        job.incar.amix,
        job.incar.ibrion
    );
    let kpoints = format!(
        "Automatic mesh\n0\nGamma\n{} {} {}\n",
        job.kpoints.mesh[0], job.kpoints.mesh[1], job.kpoints.mesh[2]
    );
    vec![
        ("POSCAR".into(), poscar),
        ("INCAR".into(), incar),
        ("KPOINTS".into(), kpoints),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_matsci::{prototypes, Element, MpsSource};

    fn rec() -> MpsRecord {
        MpsRecord::new(
            "mps-7",
            prototypes::rocksalt(
                Element::from_symbol("Na").unwrap(),
                Element::from_symbol("Cl").unwrap(),
            ),
            MpsSource::Icsd { code: 1 },
        )
    }

    #[test]
    fn spec_roundtrip() {
        let spec = make_spec(&rec(), &Incar::default(), 7200.0);
        let job = assemble(&spec).unwrap();
        assert_eq!(job.structure.formula(), "NaCl");
        assert_eq!(job.walltime_s, 7200.0);
        assert_eq!(job.mps_id, "mps-7");
        assert!(job.kpoints.total() >= 1);
    }

    #[test]
    fn spec_is_queryable() {
        let spec = make_spec(&rec(), &Incar::default(), 3600.0);
        let f = mp_docstore::Filter::parse(&json!({"elements": {"$all": ["Na", "Cl"]}})).unwrap();
        assert!(f.matches(&spec));
    }

    #[test]
    fn explicit_mesh_honored() {
        let mut spec = make_spec(&rec(), &Incar::default(), 3600.0);
        spec["kpoints"] = json!({"mesh": [4, 4, 4]});
        let job = assemble(&spec).unwrap();
        assert_eq!(job.kpoints.total(), 64);
    }

    #[test]
    fn malformed_spec_rejected() {
        assert!(assemble(&json!({"structure": "nope"})).is_err());
        let mut spec = make_spec(&rec(), &Incar::default(), 3600.0);
        spec["incar"]["encut"] = json!(1.0); // fails validation
        assert!(assemble(&spec).is_err());
    }

    #[test]
    fn input_files_render() {
        let spec = make_spec(&rec(), &Incar::default(), 3600.0);
        let job = assemble(&spec).unwrap();
        let files = render_input_files(&job);
        assert_eq!(files.len(), 3);
        assert!(files[0].1.contains("NaCl"));
        assert!(files[1].1.contains("ENCUT = 520"));
    }
}
