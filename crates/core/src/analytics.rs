//! Derived-property pipelines: the analyses that populate the
//! `materials`, `phase_diagrams`, `batteries`, `bandstructures` and
//! `xrd_patterns` collections from raw `tasks` (§III-B3: "Each type of
//! calculated properties is given its own collection").

use mp_dft::energy_per_atom;
use mp_docstore::{Database, HadoopEngine, Result};
use mp_matsci::analysis::battery::{ConversionElectrode, InsertionElectrode, LithiationPoint};
use mp_matsci::analysis::phase_diagram::{PdEntry, PhaseDiagram};
use mp_matsci::{
    compute_bands, compute_pattern, prototypes, Composition, Element, Structure, CU_KA,
};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Reference energy of an element in its simple metallic/elemental form.
pub fn elemental_reference(el: Element) -> f64 {
    energy_per_atom(&prototypes::fcc(el))
        .min(energy_per_atom(&prototypes::bcc(el)))
        .min(energy_per_atom(&prototypes::hcp(el)))
}

/// Attach the MPS structure to every material document (the view builder
/// keeps only task fields; analyses need geometry).
pub fn attach_structures(db: &Database) -> Result<usize> {
    let materials = db.collection("materials");
    let mps = db.collection("mps");
    let mut updated = 0;
    for m in materials.dump() {
        let mps_id = m["mps_id"].clone();
        if let Some(rec) = mps.find_one(&json!({"_id": mps_id}))? {
            materials.update_one(
                &json!({"_id": m["_id"]}),
                &json!({"$set": {"structure": rec["structure"], "density": rec["density"]}}),
            )?;
            updated += 1;
        }
    }
    Ok(updated)
}

fn structure_of(doc: &Value) -> Option<Structure> {
    serde_json::from_value(doc.get("structure")?.clone()).ok()
}

/// Compute stability (formation energy, e_above_hull, decomposition) for
/// every material and store per-chemical-system phase diagrams.
/// Returns the number of stable materials.
pub fn build_phase_diagrams(db: &Database) -> Result<usize> {
    let materials = db.collection("materials");
    let docs = materials.dump();

    // Group materials by chemical system; entries for a system are all
    // materials whose elements are a subset of it, plus elemental refs.
    let mut parsed: Vec<(Value, Composition, f64)> = Vec::new();
    for d in &docs {
        let (Some(formula), Some(epa)) = (
            d["formula"].as_str(),
            d["output"]["energy_per_atom"].as_f64(),
        ) else {
            continue;
        };
        if let Ok(comp) = Composition::parse(formula) {
            parsed.push((d["_id"].clone(), comp, epa));
        }
    }

    let mut systems: BTreeMap<String, Vec<Element>> = BTreeMap::new();
    for (_, comp, _) in &parsed {
        systems
            .entry(comp.chemical_system())
            .or_insert_with(|| comp.elements());
    }

    let pd_coll = db.collection("phase_diagrams");
    pd_coll.clear();
    let mut stable_count = 0;
    for (sys_name, sys_els) in &systems {
        let mut entries: Vec<PdEntry> = Vec::new();
        for &el in sys_els {
            entries.push(PdEntry::new(
                format!("ref-{}", el.symbol()),
                Composition::from_pairs([(el, 1.0)]),
                elemental_reference(el),
            ));
        }
        let mut member_ids: Vec<Value> = Vec::new();
        for (id, comp, epa) in &parsed {
            let subset = comp.elements().iter().all(|e| sys_els.contains(e));
            if subset {
                entries.push(PdEntry::new(id.as_str().unwrap_or("?"), comp.clone(), *epa));
                if comp.chemical_system() == *sys_name {
                    member_ids.push(id.clone());
                }
            }
        }
        let Ok(pd) = PhaseDiagram::new(entries) else {
            continue;
        };
        let mut stable_formulas: Vec<String> = Vec::new();
        for (i, e) in pd.entries.iter().enumerate() {
            if !member_ids.contains(&json!(e.id)) {
                continue;
            }
            let ef = pd.formation_energy_per_atom(&e.composition, e.energy_per_atom);
            let decomp = pd.decomposition(i);
            let is_stable = decomp.e_above_hull < 1e-6;
            if is_stable {
                stable_count += 1;
                stable_formulas.push(e.composition.reduced_formula());
            }
            materials.update_one(
                &json!({"_id": e.id}),
                &json!({"$set": {"stability": {
                    "formation_energy_per_atom": ef,
                    "e_above_hull": decomp.e_above_hull,
                    "is_stable": is_stable,
                    "decomposes_to": decomp.products.iter()
                        .map(|(id, f)| json!({"id": id, "fraction": f}))
                        .collect::<Vec<_>>(),
                }}}),
            )?;
        }
        pd_coll.insert_one(json!({
            "_id": sys_name,
            "chemsys": sys_name,
            "nelements": sys_els.len(),
            "nentries": pd.entries.len(),
            "stable_formulas": stable_formulas,
        }))?;
    }
    Ok(stable_count)
}

/// Screen every alkali-bearing oxide material as an intercalation
/// electrode and every alkali-free compound as a conversion electrode.
/// Populates the `batteries` collection; returns
/// (intercalation, conversion) counts.
pub fn build_batteries(db: &Database, working_ion: Element) -> Result<(usize, usize)> {
    let materials = db.collection("materials");
    let batteries = db.collection("batteries");
    let ion_ref = elemental_reference(working_ion);
    let mut n_int = 0;
    let mut n_conv = 0;
    for m in materials.dump() {
        let Some(structure) = structure_of(&m) else {
            continue;
        };
        let comp = structure.composition();
        let has_ion = comp.amount(working_ion) > 0.0;
        let has_anion = comp.elements().iter().any(|e| e.is_anion_former());
        if !has_anion {
            continue;
        }
        let material_id = m["_id"].as_str().unwrap_or("?").to_string();
        if has_ion {
            // Intercalation: compare against the delithiated framework.
            let framework = structure.without_element(working_ion);
            if framework.num_sites() == 0 {
                continue;
            }
            let x_max = comp.amount(working_ion);
            let e_lith = m["output"]["energy_per_atom"]
                .as_f64()
                .unwrap_or_else(|| energy_per_atom(&structure))
                * structure.num_sites() as f64;
            let e_frame = energy_per_atom(&framework) * framework.num_sites() as f64;
            let electrode = InsertionElectrode::new(
                framework.composition(),
                working_ion,
                ion_ref,
                vec![
                    LithiationPoint {
                        x: 0.0,
                        energy: e_frame,
                    },
                    LithiationPoint {
                        x: x_max,
                        energy: e_lith,
                    },
                ],
            );
            if let Ok(e) = electrode {
                let v = e.average_voltage();
                // Physical screening window (Fig. 1 axes: 0–5 V).
                if v > 0.0 && v < 6.0 {
                    let mut doc = e.to_doc(&format!("bat-{material_id}"));
                    doc["material_id"] = json!(material_id);
                    // The follow-up screen the paper names: ion
                    // diffusivity, "related to power delivered by the
                    // cell". A 2×2×1 supercell exposes ion–ion hops in
                    // single-ion cells.
                    let sc = if comp.amount(working_ion) < 2.0 {
                        structure.supercell(2, 2, 1)
                    } else {
                        structure.clone()
                    };
                    if let Some(path) =
                        mp_matsci::analysis::diffusion::easiest_path(&sc, working_ion)
                    {
                        doc["migration_barrier_ev"] = json!(path.barrier_ev);
                        doc["bottleneck_radius"] = json!(path.bottleneck_radius);
                        doc["diffusivity_300k"] = json!(
                            mp_matsci::analysis::diffusion::diffusivity(path.barrier_ev, 300.0)
                        );
                    }
                    batteries.insert_one(doc)?;
                    n_int += 1;
                }
            }
        } else {
            // Conversion: full reduction by the working ion,
            // M_aX_b + z·b·A → a·M + b·A_zX.
            let Some(conv) = conversion_reaction(&comp, working_ion) else {
                continue;
            };
            if conv.voltage > 0.0 && conv.voltage < 6.0 {
                let mut doc = conv.to_doc(&format!("bat-{material_id}"));
                doc["material_id"] = json!(material_id);
                batteries.insert_one(doc)?;
                n_conv += 1;
            }
        }
    }
    batteries.create_index("type", false)?;
    Ok((n_int, n_conv))
}

/// Model the full conversion reaction of `comp` with `ion`: every anion
/// X becomes the binary A_zX (z from the ion/anion valences), every
/// metal is reduced to its element.
pub fn conversion_reaction(comp: &Composition, ion: Element) -> Option<ConversionElectrode> {
    let o = Element::from_symbol("O").expect("O");
    let s = Element::from_symbol("S").expect("S");
    let f = Element::from_symbol("F").expect("F");
    let cl = Element::from_symbol("Cl").expect("Cl");
    // Supported anion products: A2O, A2S, AF, ACl (A = working ion).
    let mut x_ions = 0.0;
    let mut products_energy = 0.0;
    let mut reduced_metals = comp.clone();
    for (anion, per) in [(o, 2.0), (s, 2.0), (f, 1.0), (cl, 1.0)] {
        let n = comp.amount(anion);
        if n == 0.0 {
            continue;
        }
        x_ions += per * n;
        let product = if per == 2.0 {
            // Anti-fluorite A2X.
            prototypes::fluorite(anion, ion)
        } else {
            prototypes::rocksalt(ion, anion)
        };
        let fu_atoms = 1.0 + per; // atoms per formula unit of A_perX
        products_energy += energy_per_atom(&product) * fu_atoms * n;
        reduced_metals = reduced_metals.without(anion);
    }
    if x_ions == 0.0 {
        return None;
    }
    // Unsupported anions present? Skip the material.
    if reduced_metals
        .elements()
        .iter()
        .any(|e| e.is_anion_former())
    {
        return None;
    }
    for (el, n) in reduced_metals.iter() {
        products_energy += elemental_reference(el) * n;
    }
    // The reactant energy comes from a composition-keyed estimate; when
    // a real computed structure energy exists the intercalation path is
    // used instead, so this estimate only feeds conversion screening.
    let reactant_energy = comp_energy_estimate(comp);
    let ion_e = elemental_reference(ion);
    let de = products_energy - reactant_energy - x_ions * ion_e;
    Some(ConversionElectrode::from_reaction_energy(
        comp.clone(),
        ion,
        x_ions,
        de,
    ))
}

/// Composition-level energy estimate (per formula unit) when no
/// structure is at hand: weighted elemental references plus an ionic
/// stabilization from the electronegativity spread.
fn comp_energy_estimate(comp: &Composition) -> f64 {
    let mut e = 0.0;
    for (el, n) in comp.iter() {
        e += elemental_reference(el) * n;
    }
    let chis: Vec<f64> = comp
        .elements()
        .iter()
        .map(|e| e.electronegativity())
        .collect();
    let spread = chis.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - chis.iter().cloned().fold(f64::INFINITY, f64::min);
    e - 0.9 * spread * comp.num_atoms()
}

/// Compute band structures for up to `limit` materials (they are the
/// big documents of the datastore). Returns how many were stored.
pub fn build_bandstructures(db: &Database, limit: usize) -> Result<usize> {
    let materials = db.collection("materials");
    let bs_coll = db.collection("bandstructures");
    let dos_coll = db.collection("dos");
    let mut n = 0;
    for m in materials.dump() {
        if n >= limit {
            break;
        }
        let Some(structure) = structure_of(&m) else {
            continue;
        };
        let bs = compute_bands(&structure, 8, 24);
        let id = m["_id"].as_str().unwrap_or("?");
        let mut doc = bs.to_doc(id);
        doc["_id"] = json!(format!("bs-{id}"));
        bs_coll.insert_one(doc)?;
        // The companion spectrum the web UI plots: the density of states.
        let dos = bs.dos(300, 0.1);
        let mut dos_doc = dos.to_doc(id);
        dos_doc["_id"] = json!(format!("dos-{id}"));
        dos_coll.insert_one(dos_doc)?;
        materials.update_one(
            &json!({"_id": m["_id"]}),
            &json!({"$set": {"has_bandstructure": true,
                              "output.band_gap_bs": bs.band_gap,
                              "output.dos_at_fermi": dos.at_fermi()}}),
        )?;
        n += 1;
    }
    Ok(n)
}

/// Compute powder XRD patterns for up to `limit` materials.
pub fn build_xrd(db: &Database, limit: usize) -> Result<usize> {
    let materials = db.collection("materials");
    let xrd_coll = db.collection("xrd_patterns");
    let mut n = 0;
    for m in materials.dump() {
        if n >= limit {
            break;
        }
        let Some(structure) = structure_of(&m) else {
            continue;
        };
        let pat = compute_pattern(&structure, CU_KA, 90.0);
        let id = m["_id"].as_str().unwrap_or("?");
        let mut doc = pat.to_doc(id);
        doc["_id"] = json!(format!("xrd-{id}"));
        xrd_coll.insert_one(doc)?;
        n += 1;
    }
    Ok(n)
}

/// Run the full post-processing stack: view build (parallel MapReduce),
/// structures, stability, batteries, band structures, XRD.
pub fn build_all_views(db: &Database, working_ion: Element) -> Result<Value> {
    let engine = HadoopEngine::new(4);
    let n_materials = mp_mapi::build_materials_view(db, &engine)?;
    let n_attached = attach_structures(db)?;
    let n_stable = build_phase_diagrams(db)?;
    let (n_int, n_conv) = build_batteries(db, working_ion)?;
    let n_bs = build_bandstructures(db, usize::MAX)?;
    let n_xrd = build_xrd(db, usize::MAX)?;
    Ok(json!({
        "materials": n_materials,
        "structures_attached": n_attached,
        "stable": n_stable,
        "intercalation_batteries": n_int,
        "conversion_batteries": n_conv,
        "bandstructures": n_bs,
        "xrd_patterns": n_xrd,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(s: &str) -> Element {
        Element::from_symbol(s).unwrap()
    }

    #[test]
    fn elemental_reference_is_negative() {
        for sym in ["Li", "Fe", "O", "Cu"] {
            let e = elemental_reference(el(sym));
            assert!(e < 0.0, "{sym}: {e}");
        }
    }

    fn seeded_db() -> Database {
        let db = Database::new();
        // mps + tasks for three materials in the Li-Co-O system.
        let mats = [
            (
                "mps-1",
                prototypes::layered_amo2(el("Li"), el("Co"), el("O")),
            ),
            ("mps-2", prototypes::rutile(el("Co"), el("O"))),
            ("mps-3", prototypes::rocksalt(el("Li"), el("O"))),
            ("mps-4", prototypes::rocksalt(el("Na"), el("Cl"))),
        ];
        for (id, s) in &mats {
            let rec =
                mp_matsci::MpsRecord::new(*id, s.clone(), mp_matsci::MpsSource::Icsd { code: 1 });
            db.collection("mps").insert_one(rec.to_doc()).unwrap();
            let comp = s.composition();
            let epa = energy_per_atom(s);
            db.collection("tasks")
                .insert_one(json!({
                    "_id": format!("task-{id}"), "fw_id": format!("fw-{id}"),
                    "mps_id": id, "status": "converged",
                    "formula": comp.reduced_formula(),
                    "chemsys": comp.chemical_system(),
                    "elements": comp.elements().iter().map(|e| e.symbol()).collect::<Vec<_>>(),
                    "nsites": s.num_sites(),
                    "nelectrons": comp.num_electrons(),
                    "output": {"energy_per_atom": epa, "energy": epa * s.num_sites() as f64,
                               "band_gap": 1.0},
                }))
                .unwrap();
        }
        db
    }

    #[test]
    fn full_pipeline_populates_collections() {
        let db = seeded_db();
        let summary = build_all_views(&db, el("Li")).unwrap();
        assert_eq!(summary["materials"], 4);
        assert_eq!(summary["structures_attached"], 4);
        assert!(db.collection("phase_diagrams").len() >= 3);
        assert!(!db.collection("batteries").is_empty());
        assert_eq!(db.collection("bandstructures").len(), 4);
        assert_eq!(db.collection("xrd_patterns").len(), 4);
    }

    #[test]
    fn stability_fields_present_and_consistent() {
        let db = seeded_db();
        build_all_views(&db, el("Li")).unwrap();
        for m in db.collection("materials").dump() {
            let st = &m["stability"];
            assert!(st["e_above_hull"].as_f64().unwrap() >= -1e-9, "{m}");
            let is_stable = st["is_stable"].as_bool().unwrap();
            if is_stable {
                assert!(st["e_above_hull"].as_f64().unwrap() < 1e-6);
            }
        }
    }

    #[test]
    fn intercalation_battery_in_window() {
        let db = seeded_db();
        build_all_views(&db, el("Li")).unwrap();
        let bats = db
            .collection("batteries")
            .find(&json!({"type": "intercalation"}))
            .unwrap();
        assert!(!bats.is_empty());
        for b in bats {
            let v = b["average_voltage"].as_f64().unwrap();
            let c = b["capacity_grav"].as_f64().unwrap();
            assert!(v > 0.0 && v < 6.0, "voltage {v}");
            assert!(c > 30.0 && c < 1500.0, "capacity {c}");
        }
    }

    #[test]
    fn conversion_reaction_fe2o3() {
        let conv = conversion_reaction(&Composition::parse("Fe2O3").unwrap(), el("Li")).unwrap();
        assert_eq!(conv.x_ions, 6.0);
        let cap = conv.gravimetric_capacity();
        assert!(cap > 500.0 && cap < 1300.0, "conversion capacity {cap}");
    }

    #[test]
    fn conversion_skips_unsupported_anions() {
        assert!(conversion_reaction(&Composition::parse("Fe3N2").unwrap(), el("Li")).is_none());
        assert!(conversion_reaction(&Composition::parse("FeNi").unwrap(), el("Li")).is_none());
    }
}
