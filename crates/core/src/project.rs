//! The integrated Materials Project system (Fig. 2): one datastore
//! serving parallel computation, data analytics, data V&V, and data
//! dissemination at once.

use crate::assembler::{assemble, make_spec};
use crate::loading::{DataLoader, StagedResult};
use mp_dft::{actual_demand, Incar, RunStatus};
use mp_docstore::{Database, Result, StoreError};
use mp_fireworks::{Binder, Firework, LaunchPad, LaunchReport, Stage, Workflow};
use mp_hpcsim::{
    run_farm, summarize, BatchConfig, BatchSimulator, ClusterSpec, FarmTask, JobEnd, JobRequest,
    NetworkPolicy, Reservation,
};
use mp_matsci::{Element, IcsdGenerator, MpsRecord};
use serde_json::{json, Value};

/// How calculations are packed onto the batch system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionMode {
    /// One batch job per calculation (baseline).
    OneJobPerCalc,
    /// Task farming: many calculations per batch allocation (§IV-A1).
    TaskFarming {
        /// Calculations packed per farm job.
        tasks_per_farm: usize,
    },
}

/// End-to-end campaign accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Scheduling rounds executed.
    pub rounds: usize,
    /// Batch jobs submitted (farms count once).
    pub batch_jobs: usize,
    /// Calculations that produced a converged task.
    pub completed: usize,
    /// Walltime kills → re-runs.
    pub walltime_reruns: usize,
    /// Memory kills → re-runs.
    pub memory_reruns: usize,
    /// Queue rejections → resubmissions.
    pub queue_rejections: usize,
    /// Error detours (ZBRENT / bands / unconverged).
    pub detours: usize,
    /// Fireworks fizzled for manual intervention.
    pub fizzled: usize,
    /// Duplicate jobs replaced by pointers.
    pub dedup_hits: usize,
    /// Simulated compute node-seconds consumed.
    pub compute_s: f64,
    /// Simulated queue-wait seconds accumulated.
    pub queue_wait_s: f64,
    /// Simulated data-loading seconds (the §IV-C1 post-processing).
    pub load_s: f64,
    /// In-process datastore overhead, microseconds (the paper's
    /// "negligible fraction" claim, measured).
    pub store_overhead_us: u64,
    /// Campaign makespan (simulated s).
    pub makespan_s: f64,
}

/// The whole system, wired together.
pub struct MaterialsProject {
    pad: LaunchPad,
    cluster: ClusterSpec,
    batch: BatchConfig,
    netpolicy: NetworkPolicy,
    mode: SubmissionMode,
    sim_time: f64,
    user: String,
}

impl MaterialsProject {
    /// Production-flavoured deployment: medium cluster, per-user queue
    /// cap of 8 *with* an advance reservation for the production user
    /// (exactly the arrangement §IV-A1 describes), workers blocked from
    /// the datastore (proxy loading).
    pub fn new() -> Result<Self> {
        let user = "mp-prod".to_string();
        let mut batch = BatchConfig::default();
        batch.reservations.push(Reservation {
            user: user.clone(),
            start: 0.0,
            end: f64::INFINITY,
        });
        Ok(MaterialsProject {
            pad: LaunchPad::new(Database::new())?,
            cluster: ClusterSpec::medium(),
            batch,
            netpolicy: NetworkPolicy::default(),
            mode: SubmissionMode::OneJobPerCalc,
            sim_time: 0.0,
            user,
        })
    }

    /// Override the cluster.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Override the batch configuration (e.g. drop the reservation to
    /// study queue-cap pain).
    pub fn with_batch_config(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Choose the submission mode.
    pub fn with_mode(mut self, mode: SubmissionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The shared datastore.
    pub fn database(&self) -> &Database {
        self.pad.database()
    }

    /// The workflow engine.
    pub fn launchpad(&self) -> &LaunchPad {
        &self.pad
    }

    /// Current simulated time.
    pub fn sim_time(&self) -> f64 {
        self.sim_time
    }

    /// Ingest `n` synthetic-ICSD records into the `mps` collection.
    /// Record ids are renumbered after any existing records so repeated
    /// ingests (different seeds/streams) coexist.
    pub fn ingest_icsd(&self, n: usize, seed: u64) -> Result<Vec<MpsRecord>> {
        let mut gen = IcsdGenerator::new(seed);
        let recs = gen.generate(n);
        self.store_mps(recs)
    }

    fn store_mps(&self, mut recs: Vec<MpsRecord>) -> Result<Vec<MpsRecord>> {
        let coll = self.database().collection("mps");
        let base = coll.len();
        for (i, r) in recs.iter_mut().enumerate() {
            r.mps_id = format!("mps-{}", base + i + 1);
            coll.insert_one(r.to_doc())?;
        }
        Ok(recs)
    }

    /// Ingest battery-focused candidates (for the Fig.-1 screen).
    pub fn ingest_battery_candidates(
        &self,
        n: usize,
        seed: u64,
        ion: Element,
    ) -> Result<Vec<MpsRecord>> {
        let mut gen = IcsdGenerator::new(seed);
        let recs = gen.generate_battery_candidates(n, ion);
        self.store_mps(recs)
    }

    /// Submit one static calculation per MPS record as a FireWorks
    /// workflow. Binders carry the structure fingerprint + functional,
    /// so duplicates submitted by anyone are idempotent (§III-C3).
    pub fn submit_calculations(&self, recs: &[MpsRecord]) -> Result<usize> {
        let mut submitted = 0;
        for rec in recs {
            let demand = mp_dft::predict_demand(
                &rec.structure,
                &Incar::default(),
                &mp_dft::Kpoints::automatic(rec.structure.lattice.lengths(), 20.0),
            );
            let walltime = demand.runtime_s * 1.4 + 600.0;
            let spec = make_spec(rec, &Incar::default(), walltime);
            let fw = Firework::new(
                format!("fw-{}", rec.mps_id),
                format!("static {}", rec.structure.formula()),
                Stage(spec),
            )
            .with_binder(Binder::new(rec.structure.fingerprint(), "GGA"));
            self.pad
                .add_workflow(&Workflow::single(format!("wf-{}", rec.mps_id), fw))?;
            submitted += 1;
        }
        Ok(submitted)
    }

    /// Submit the production two-step workflow per record: a relaxation
    /// followed by a static run whose structure arrives through the
    /// child's Fuse (`$fromParent: output.structure`) — the paper's
    /// "overriding input parameters prior to execution, based on the
    /// output state of any parent jobs."
    pub fn submit_relax_static_workflows(&self, recs: &[MpsRecord]) -> Result<usize> {
        let mut submitted = 0;
        for rec in recs {
            let demand = mp_dft::predict_demand(
                &rec.structure,
                &Incar::default(),
                &mp_dft::Kpoints::automatic(rec.structure.lattice.lengths(), 20.0),
            );
            let walltime = demand.runtime_s * 1.4 + 600.0;
            let relax_incar = Incar {
                ibrion: 2,
                ..Incar::default()
            };
            let relax_spec =
                crate::assembler::make_typed_spec(rec, &relax_incar, walltime * 2.0, "relax");
            let relax_fw = Firework::new(
                format!("fw-{}-relax", rec.mps_id),
                format!("relax {}", rec.structure.formula()),
                Stage(relax_spec),
            )
            .with_binder(Binder::new(rec.structure.fingerprint(), "GGA-relax"));

            let static_spec = crate::assembler::make_spec(rec, &Incar::default(), walltime);
            let static_fw = Firework::new(
                format!("fw-{}-static", rec.mps_id),
                format!("static {}", rec.structure.formula()),
                Stage(static_spec),
            )
            .with_binder(Binder::new(rec.structure.fingerprint(), "GGA-static"))
            .after(&format!("fw-{}-relax", rec.mps_id))
            .with_fuse(mp_fireworks::Fuse {
                condition: mp_fireworks::FuseCondition::ParentOutputMatches {
                    filter: json!({"status": "converged"}),
                },
                overrides: Some(json!({"$set": {
                    "structure": {"$fromParent": "output.structure"},
                }})),
            });
            self.pad.add_workflow(
                &mp_fireworks::Workflow::new(
                    format!("wf-{}", rec.mps_id),
                    vec![relax_fw, static_fw],
                )
                .map_err(StoreError::InvalidDocument)?,
            )?;
            submitted += 1;
        }
        Ok(submitted)
    }

    /// Run the campaign to completion (or `max_rounds`).
    ///
    /// Each round: claim READY fireworks, submit them to the simulated
    /// batch system, execute survived allocations through the DFT
    /// engine, stage outputs on "scratch", then run the offline loader
    /// (workers cannot reach the datastore — §IV-A2/§IV-C1) which files
    /// reports back through the launchpad.
    pub fn run_campaign(&mut self, max_rounds: usize) -> Result<CampaignReport> {
        let mut report = CampaignReport::default();
        let store_ops_before = self.database().profiler().total_ops();
        let sim = BatchSimulator::new(self.cluster, self.batch.clone());
        let route = self
            .netpolicy
            .datastore_route()
            .ok_or_else(|| StoreError::Persistence("no route from workers to datastore".into()))?;
        let mut loader = DataLoader::new(route);

        for _round in 0..max_rounds {
            // Claim everything currently READY.
            let mut claims: mp_docstore::Docs = Vec::new();
            while let Some(doc) = self.pad.claim_next(&json!({}), &self.user)? {
                claims.push(doc);
                if claims.len() >= (self.cluster.nodes as usize) * 4 {
                    break; // Submission window per round.
                }
            }
            if claims.is_empty() {
                break;
            }
            report.rounds += 1;

            match self.mode {
                SubmissionMode::OneJobPerCalc => {
                    self.round_one_per_calc(&sim, &claims, &mut loader, &mut report)?;
                }
                SubmissionMode::TaskFarming { tasks_per_farm } => {
                    self.round_farmed(&sim, &claims, tasks_per_farm, &mut loader, &mut report)?;
                }
            }

            // Offline loading pass (the "midrange compute resources" box
            // of Fig. 2).
            report.load_s += loader.drain(&self.pad)?;
        }
        report.makespan_s = self.sim_time;
        report.detours = self
            .database()
            .collection("engines")
            .count(&json!({"replaced_by": {"$exists": true}}))?;
        report.fizzled = self
            .database()
            .collection("engines")
            .count(&json!({"state": "FIZZLED"}))?;
        report.dedup_hits = self
            .database()
            .collection("engines")
            .count(&json!({"duplicate_of": {"$exists": true}}))?;
        report.completed = self
            .database()
            .collection("tasks")
            .count(&json!({"status": "converged"}))?;
        report.store_overhead_us = {
            let samples = self.database().profiler().samples();
            let since: u64 = samples
                .iter()
                .filter(|s| s.seq >= store_ops_before)
                .map(|s| s.micros)
                .sum();
            since
        };
        Ok(report)
    }

    fn round_one_per_calc(
        &mut self,
        sim: &BatchSimulator,
        claims: &[std::sync::Arc<Value>],
        loader: &mut DataLoader,
        report: &mut CampaignReport,
    ) -> Result<()> {
        let mut requests = Vec::with_capacity(claims.len());
        let mut jobs = Vec::with_capacity(claims.len());
        for (i, doc) in claims.iter().enumerate() {
            let fw_id = doc["_id"].as_str().expect("fw id").to_string();
            match assemble(&doc["spec"]) {
                Ok(job) => {
                    let demand = actual_demand(&job.structure, &job.incar, &job.kpoints);
                    let nodes = doc["spec"]["nodes"].as_u64().unwrap_or(1).max(1) as u32;
                    requests.push(JobRequest {
                        id: fw_id.clone(),
                        user: self.user.clone(),
                        submit_time: self.sim_time + i as f64 * 1e-3,
                        walltime_s: job.walltime_s,
                        nodes,
                        actual_runtime_s: demand.runtime_s / (nodes as f64).powf(0.8),
                        actual_mem_gb: demand.memory_gb / nodes as f64,
                    });
                    jobs.push((fw_id, job, demand));
                }
                Err(e) => {
                    self.pad.report(
                        &fw_id,
                        LaunchReport::Fatal {
                            reason: format!("assembler: {e}"),
                        },
                    )?;
                    report.fizzled += 1;
                }
            }
        }
        let records = sim.run(requests);
        report.batch_jobs += records.len();
        let stats = summarize(&records);
        report.queue_wait_s += stats.mean_wait_s * records.len() as f64;
        report.compute_s += stats.node_seconds;
        self.sim_time = self.sim_time.max(stats.makespan_s);

        for rec in &records {
            let (fw_id, job, demand) = jobs
                .iter()
                .find(|(id, _, _)| *id == rec.request.id)
                .expect("job bookkeeping");
            match rec.outcome {
                JobEnd::Completed => {
                    let (run, relax) = execute_task(job);
                    loader.stage(StagedResult {
                        fw_id: fw_id.clone(),
                        mps_id: job.mps_id.clone(),
                        run,
                        relax,
                        structure: job.structure.clone(),
                        incar: job.incar.clone(),
                        kpoints: job.kpoints,
                        intermediate_mb: demand.intermediate_mb,
                    });
                }
                JobEnd::WalltimeExceeded => {
                    report.walltime_reruns += 1;
                    self.pad.report(
                        fw_id,
                        LaunchReport::Rerun {
                            spec_updates: json!({"$mul": {"walltime_s": 2.0}}),
                            reason: "walltime exceeded".into(),
                        },
                    )?;
                }
                JobEnd::MemoryExceeded => {
                    report.memory_reruns += 1;
                    self.pad.report(
                        fw_id,
                        LaunchReport::Rerun {
                            spec_updates: json!({"$mul": {"nodes": 2}}),
                            reason: "memory exceeded; doubling nodes".into(),
                        },
                    )?;
                }
                JobEnd::QueueRejected => {
                    report.queue_rejections += 1;
                    self.pad.report(
                        fw_id,
                        LaunchReport::Release {
                            reason: "queue cap; resubmit next round".into(),
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    fn round_farmed(
        &mut self,
        sim: &BatchSimulator,
        claims: &[std::sync::Arc<Value>],
        tasks_per_farm: usize,
        loader: &mut DataLoader,
        report: &mut CampaignReport,
    ) -> Result<()> {
        let tasks_per_farm = tasks_per_farm.max(1);
        // Assemble every claim; collect farm tasks.
        let mut assembled = Vec::new();
        for doc in claims {
            let fw_id = doc["_id"].as_str().expect("fw id").to_string();
            match assemble(&doc["spec"]) {
                Ok(job) => {
                    let demand = actual_demand(&job.structure, &job.incar, &job.kpoints);
                    assembled.push((fw_id, job, demand));
                }
                Err(e) => {
                    self.pad.report(
                        &fw_id,
                        LaunchReport::Fatal {
                            reason: format!("assembler: {e}"),
                        },
                    )?;
                }
            }
        }
        // Build one batch request per farm; walltime sized to the sum of
        // member runtimes (the variance smoothing §IV-A1 describes).
        let mut requests = Vec::new();
        let chunks: Vec<Vec<usize>> = (0..assembled.len())
            .collect::<Vec<usize>>()
            .chunks(tasks_per_farm)
            .map(|c| c.to_vec())
            .collect();
        for (fi, chunk) in chunks.iter().enumerate() {
            let total: f64 = chunk.iter().map(|&i| assembled[i].2.runtime_s).sum();
            requests.push(JobRequest {
                id: format!("farm-{fi}"),
                user: self.user.clone(),
                submit_time: self.sim_time + fi as f64 * 1e-3,
                walltime_s: total * 1.2 + 600.0,
                nodes: 1,
                actual_runtime_s: total,
                actual_mem_gb: chunk
                    .iter()
                    .map(|&i| assembled[i].2.memory_gb)
                    .fold(0.0, f64::max),
            });
        }
        let records = sim.run(requests);
        report.batch_jobs += records.len();
        let stats = summarize(&records);
        report.queue_wait_s += stats.mean_wait_s * records.len() as f64;
        report.compute_s += stats.node_seconds;
        self.sim_time = self.sim_time.max(stats.makespan_s);

        for (fi, rec) in records.iter().enumerate() {
            let chunk = &chunks[fi];
            match rec.outcome {
                JobEnd::Completed | JobEnd::WalltimeExceeded => {
                    // Run the farm inside the allocation it actually got.
                    let allocation = rec.end_time - rec.start_time.unwrap_or(rec.end_time);
                    let farm_tasks: Vec<FarmTask> = chunk
                        .iter()
                        .map(|&i| FarmTask {
                            id: assembled[i].0.clone(),
                            runtime_s: assembled[i].2.runtime_s,
                        })
                        .collect();
                    let outcome = run_farm(&farm_tasks, 1, allocation);
                    for (task_id, _) in &outcome.completed {
                        let (fw_id, job, demand) = assembled
                            .iter()
                            .find(|(id, _, _)| id == task_id)
                            .expect("farm bookkeeping");
                        let (run, relax) = execute_task(job);
                        loader.stage(StagedResult {
                            fw_id: fw_id.clone(),
                            mps_id: job.mps_id.clone(),
                            run,
                            relax,
                            structure: job.structure.clone(),
                            incar: job.incar.clone(),
                            kpoints: job.kpoints,
                            intermediate_mb: demand.intermediate_mb,
                        });
                    }
                    for task_id in &outcome.unfinished {
                        report.walltime_reruns += 1;
                        self.pad.report(
                            task_id,
                            LaunchReport::Release {
                                reason: "did not fit in farm allocation".into(),
                            },
                        )?;
                    }
                }
                JobEnd::MemoryExceeded | JobEnd::QueueRejected => {
                    for &i in chunk {
                        report.queue_rejections += 1;
                        self.pad.report(
                            &assembled[i].0,
                            LaunchReport::Release {
                                reason: "farm failed; resubmit".into(),
                            },
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Run the full analytics stack over completed tasks.
    pub fn build_views(&self, working_ion: Element) -> Result<Value> {
        crate::analytics::build_all_views(self.database(), working_ion)
    }

    /// Run the MapReduce V&V suite (§IV-C2).
    pub fn run_vnv(&self) -> Result<mp_mapi::VnvViolations> {
        mp_mapi::run_vnv_checks(self.database(), &mp_docstore::HadoopEngine::new(4))
    }

    /// Stand up the Materials API over this datastore.
    pub fn materials_api(&self) -> mp_mapi::MaterialsApi {
        mp_mapi::MaterialsApi::new(
            mp_mapi::QueryEngine::new(self.database().clone()),
            mp_mapi::AuthRegistry::new(),
        )
    }
}

/// Execute one assembled job: relax tasks run the geometry optimizer
/// first and the SCF at the relaxed geometry; static tasks run directly.
fn execute_task(
    job: &crate::assembler::AssembledJob,
) -> (mp_dft::RunResult, Option<mp_dft::RelaxResult>) {
    if job.task_type == "relax" {
        let relaxed = mp_dft::relax(&job.structure);
        let run = mp_dft::run(&relaxed.structure, &job.incar, &job.kpoints);
        (run, Some(relaxed))
    } else {
        (mp_dft::run(&job.structure, &job.incar, &job.kpoints), None)
    }
}

/// Map a DFT run status onto the paper's analyzer decision: converged →
/// success with the reduced doc; recoverable error → detour with the
/// prescribed parameter change; otherwise fatal.
pub fn analyze_run(
    run: &mp_dft::RunResult,
    relax: Option<&mp_dft::RelaxResult>,
    structure: &mp_matsci::Structure,
    incar: &Incar,
    kpoints: &mp_dft::Kpoints,
    mps_id: &str,
) -> LaunchReport {
    match run.status {
        RunStatus::Converged => {
            let mut task_doc = run.to_task_doc(structure, incar, kpoints);
            if let Some(obj) = task_doc.as_object_mut() {
                obj.insert("mps_id".into(), json!(mps_id));
                if let Some(r) = relax {
                    obj.insert("task_type".into(), json!("relax"));
                    // The relaxed geometry is the payload the child
                    // static run pulls through its Fuse ($fromParent).
                    obj["output"]["structure"] =
                        serde_json::to_value(&r.structure).expect("structure serializes");
                    obj["output"]["relax_trajectory"] =
                        serde_json::to_value(&r.trajectory).expect("trajectory serializes");
                    obj["output"]["relax_steps"] = json!(r.nsteps);
                } else {
                    obj.insert("task_type".into(), json!("static"));
                }
            }
            LaunchReport::Success { task_doc }
        }
        _ => {
            let nelect = structure.composition().num_electrons();
            match mp_dft::detour_parameters(incar, &run.status, nelect) {
                Some((fixed, reason)) => LaunchReport::Detour {
                    spec_updates: json!({"$set": {"incar": fixed.to_dict()}}),
                    reason,
                },
                None => LaunchReport::Fatal {
                    reason: format!("unhandled status {:?}", run.status),
                },
            }
        }
    }
}
