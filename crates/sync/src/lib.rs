//! # mp-sync — the instrumented lock facade
//!
//! Every lock in the workspace is an [`OrderedMutex`] or an
//! [`OrderedRwLock`] carrying a [`LockRank`] from the static rank table
//! below. Acquisition must follow strictly **ascending** rank within a
//! thread; in debug/test builds each thread tracks its held-lock set and
//! any inversion (or double acquisition of one rank) panics with the full
//! acquisition chain. In release builds the tracking compiles away and
//! the facade is a zero-cost passthrough to `parking_lot` (verified by
//! the `exp_sharding` / `workflow_throughput` numbers in EXPERIMENTS.md).
//! Under `--cfg loom` the primitives come from `loom::sync`, so the same
//! call sites feed the model-checking tests.
//!
//! ## The rank table
//!
//! ```text
//! outermost (acquired first)                         innermost (acquired last)
//! LaunchPad → RateLimit → AuthAccounts → AuthKeyCounter → WebLog
//!   → QueryCache → ReplOplog → ReplApplied → ReplRouter → ShardStats
//!   → Journal → JournalSync → Database → Collection → Index → ExecPool → Clock
//!   → Profiler
//! ```
//!
//! The docstore chain mirrors the containment hierarchy (a `Database`
//! operation may take a `Collection` lock while holding the collection
//! map, a `Collection` operation may consult the `Clock` or `Profiler`);
//! the FireWorks claim lock is outermost because a claim transaction
//! spans several collection operations. `Index` is reserved: secondary
//! indexes currently live under the `Collection` lock, and the rank keeps
//! the slot stable for the day they are split out.
//!
//! ## Poisoning policy
//!
//! There is none — deliberately. The workspace standardizes on
//! `parking_lot`-style non-poisoning locks: a panic while holding a guard
//! releases the lock and later acquirers see the (possibly half-updated)
//! state. Store mutations are written to be exception-safe *before* any
//! state is published (see `Collection::insert_one`), so un-poisoned
//! continuation is sound, and no `.lock().unwrap()` noise exists for the
//! `L002` lint to flag.

#![deny(rust_2018_idioms)]

use std::fmt;

/// The static lock-rank table. Variants are ordered outermost-first;
/// discriminants leave gaps so future ranks slot in without renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum LockRank {
    /// FireWorks claim/dedup transaction (outermost: spans store ops).
    LaunchPad = 100,
    /// MAPI token buckets.
    RateLimit = 200,
    /// MAPI account registry.
    AuthAccounts = 210,
    /// MAPI API-key counter (taken under `AuthAccounts` in `register`).
    AuthKeyCounter = 220,
    /// MAPI web-query log.
    WebLog = 230,
    /// MAPI read-through query cache (probed before any store lock).
    QueryCache = 240,
    /// Replica-set oplog (held across secondary apply → collection ops).
    ReplOplog = 300,
    /// Replica-set per-secondary applied counters.
    ReplApplied = 310,
    /// Replica-set read round-robin cursor.
    ReplRouter = 330,
    /// Shard-router statistics.
    ShardStats = 350,
    /// Durable-database journal writer (outside `Database` so a
    /// checkpoint may read collections while serializing appenders).
    Journal = 380,
    /// WAL group-commit sync state (taken after `Journal` by committers
    /// waiting on a durability barrier, or with nothing held).
    JournalSync = 385,
    /// Database collection map.
    Database = 400,
    /// Collection contents (docs + indexes).
    Collection = 500,
    /// Reserved for split-out secondary indexes.
    Index = 600,
    /// mp-exec work-pool bookkeeping (taken under `Collection` by
    /// chunked parallel scans).
    ExecPool = 650,
    /// Simulated clock.
    Clock = 700,
    /// Operation profiler (innermost: recorded from RAII timers).
    Profiler = 800,
}

impl LockRank {
    /// Numeric rank; acquisition must be strictly ascending per thread.
    pub const fn rank(self) -> u16 {
        self as u16
    }

    /// Stable display name.
    pub const fn name(self) -> &'static str {
        match self {
            LockRank::LaunchPad => "LaunchPad",
            LockRank::RateLimit => "RateLimit",
            LockRank::AuthAccounts => "AuthAccounts",
            LockRank::AuthKeyCounter => "AuthKeyCounter",
            LockRank::WebLog => "WebLog",
            LockRank::QueryCache => "QueryCache",
            LockRank::ReplOplog => "ReplOplog",
            LockRank::ReplApplied => "ReplApplied",
            LockRank::ReplRouter => "ReplRouter",
            LockRank::ShardStats => "ShardStats",
            LockRank::Journal => "Journal",
            LockRank::JournalSync => "JournalSync",
            LockRank::Database => "Database",
            LockRank::Collection => "Collection",
            LockRank::Index => "Index",
            LockRank::ExecPool => "ExecPool",
            LockRank::Clock => "Clock",
            LockRank::Profiler => "Profiler",
        }
    }
}

/// `Display` shows `Name(rank)`, the form the violation panic uses.
impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name(), self.rank())
    }
}

// ---------------------------------------------------------------------
// Per-thread held-lock tracking (debug/test builds only).
// ---------------------------------------------------------------------

#[cfg(debug_assertions)]
mod tracking {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Validate and record an acquisition. Panics on rank inversion or
    /// same-rank double acquisition, printing the full chain.
    pub fn acquire(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&worst) = held.iter().find(|h| h.rank() >= rank.rank()) {
                let chain = held
                    .iter()
                    .map(|h| h.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ");
                drop(held); // don't poison the tracker during unwind
                if worst.rank() == rank.rank() {
                    panic!(
                        "lock-order violation: double acquisition of rank {rank} \
                         (already held; full chain: {chain} -> {rank})"
                    );
                }
                panic!(
                    "lock-order violation: acquiring {rank} while holding {worst} \
                     (acquisition cycle: {chain} -> {rank}; ranks must be strictly \
                     ascending — see the table in mp-sync)"
                );
            }
            held.push(rank);
        });
    }

    /// Record a release (guards may be dropped in any order).
    pub fn release(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| *h == rank) {
                held.remove(pos);
            }
        });
    }

    /// Ranks currently held by this thread (for assertions in tests).
    pub fn held() -> Vec<LockRank> {
        HELD.with(|held| held.borrow().clone())
    }
}

/// Ranks the current thread holds right now. Always empty in release
/// builds (tracking is compiled out).
pub fn held_ranks() -> Vec<LockRank> {
    #[cfg(debug_assertions)]
    {
        tracking::held()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

#[cfg(debug_assertions)]
fn track_acquire(rank: LockRank) {
    tracking::acquire(rank);
}
#[cfg(not(debug_assertions))]
#[inline(always)]
fn track_acquire(_rank: LockRank) {}

#[cfg(debug_assertions)]
fn track_release(rank: LockRank) {
    tracking::release(rank);
}
#[cfg(not(debug_assertions))]
#[inline(always)]
fn track_release(_rank: LockRank) {}

// ---------------------------------------------------------------------
// Backing primitives: parking_lot normally, loom under --cfg loom.
// ---------------------------------------------------------------------

#[cfg(not(loom))]
mod imp {
    pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock()
    }
    pub fn try_lock<T: ?Sized>(m: &Mutex<T>) -> Option<MutexGuard<'_, T>> {
        m.try_lock()
    }
    pub fn read<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        l.read()
    }
    pub fn write<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        l.write()
    }
}

#[cfg(loom)]
mod imp {
    pub use loom::sync::{Mutex, RwLock};
    use std::sync::PoisonError;
    pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

    pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }
    pub fn try_lock<T: ?Sized>(m: &Mutex<T>) -> Option<MutexGuard<'_, T>> {
        m.try_lock().ok()
    }
    pub fn read<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        l.read().unwrap_or_else(PoisonError::into_inner)
    }
    pub fn write<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        l.write().unwrap_or_else(PoisonError::into_inner)
    }
}

// ---------------------------------------------------------------------
// OrderedMutex
// ---------------------------------------------------------------------

/// Mutual-exclusion lock with a declared [`LockRank`].
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    inner: imp::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` at `rank`.
    pub fn new(rank: LockRank, value: T) -> Self {
        OrderedMutex {
            rank,
            inner: imp::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    #[cfg(not(loom))]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire, enforcing ascending rank order in debug builds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        track_acquire(self.rank);
        OrderedMutexGuard {
            guard: imp::lock(&self.inner),
            rank: self.rank,
        }
    }

    /// Non-blocking acquire; rank order is still enforced on success.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let guard = imp::try_lock(&self.inner)?;
        track_acquire(self.rank);
        Some(OrderedMutexGuard {
            guard,
            rank: self.rank,
        })
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`OrderedMutex`].
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    guard: imp::MutexGuard<'a, T>,
    rank: LockRank,
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        track_release(self.rank);
    }
}

// ---------------------------------------------------------------------
// OrderedRwLock
// ---------------------------------------------------------------------

/// Reader-writer lock with a declared [`LockRank`]. Shared and exclusive
/// holds count the same for ordering: re-acquiring a rank this thread
/// already holds (even read-after-read) is a violation.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: imp::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wrap `value` at `rank`.
    pub fn new(rank: LockRank, value: T) -> Self {
        OrderedRwLock {
            rank,
            inner: imp::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    #[cfg(not(loom))]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Shared acquire, enforcing ascending rank order in debug builds.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        track_acquire(self.rank);
        OrderedReadGuard {
            guard: imp::read(&self.inner),
            rank: self.rank,
        }
    }

    /// Exclusive acquire, enforcing ascending rank order in debug builds.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        track_acquire(self.rank);
        OrderedWriteGuard {
            guard: imp::write(&self.inner),
            rank: self.rank,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// RAII shared guard for [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    guard: imp::RwLockReadGuard<'a, T>,
    rank: LockRank,
}

impl<T: ?Sized> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        track_release(self.rank);
    }
}

/// RAII exclusive guard for [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    guard: imp::RwLockWriteGuard<'a, T>,
    rank: LockRank,
}

impl<T: ?Sized> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        track_release(self.rank);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_fine() {
        let db = OrderedRwLock::new(LockRank::Database, 0u32);
        let coll = OrderedRwLock::new(LockRank::Collection, 0u32);
        let prof = OrderedMutex::new(LockRank::Profiler, 0u32);
        let _d = db.read();
        let _c = coll.write();
        let _p = prof.lock();
        assert_eq!(
            held_ranks(),
            vec![LockRank::Database, LockRank::Collection, LockRank::Profiler]
        );
    }

    #[test]
    fn release_unwinds_in_any_order() {
        let db = OrderedRwLock::new(LockRank::Database, 0u32);
        let coll = OrderedRwLock::new(LockRank::Collection, 0u32);
        let d = db.read();
        let c = coll.read();
        drop(d); // out-of-order release is fine
        drop(c);
        assert!(held_ranks().is_empty());
        // And the ranks are reusable afterwards.
        let prof = OrderedMutex::new(LockRank::Profiler, ());
        let _c = coll.write();
        let _p = prof.lock();
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracking is debug-only")]
    fn inversion_panics_with_cycle() {
        let err = std::panic::catch_unwind(|| {
            let coll = OrderedRwLock::new(LockRank::Collection, 0u32);
            let db = OrderedRwLock::new(LockRank::Database, 0u32);
            let _c = coll.write();
            let _d = db.read(); // Database after Collection: inversion
        })
        .expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(
            msg.contains("Collection(500) -> Database(400)"),
            "cycle missing from: {msg}"
        );
        assert!(held_ranks().is_empty(), "unwind must clear the tracker");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "tracking is debug-only")]
    fn same_rank_double_lock_panics() {
        let err = std::panic::catch_unwind(|| {
            let a = OrderedMutex::new(LockRank::ShardStats, 0u32);
            let b = OrderedMutex::new(LockRank::ShardStats, 0u32);
            let _a = a.lock();
            let _b = b.lock(); // same rank: refused even on a different lock
        })
        .expect_err("double acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("double acquisition"), "{msg}");
    }

    #[test]
    fn tracking_is_per_thread() {
        let db = std::sync::Arc::new(OrderedRwLock::new(LockRank::Database, 0u32));
        let coll = std::sync::Arc::new(OrderedRwLock::new(LockRank::Collection, 0u32));
        let _c = coll.write();
        // Another thread's acquisitions are independent of ours.
        let (db2, coll2) = (db.clone(), coll.clone());
        std::thread::spawn(move || {
            let d = db2.read();
            assert_eq!(held_ranks(), vec![LockRank::Database]);
            drop(d);
            drop(coll2);
        })
        .join()
        .unwrap();
        assert_eq!(held_ranks(), vec![LockRank::Collection]);
    }

    #[test]
    fn try_lock_does_not_track_on_failure() {
        let m = OrderedMutex::new(LockRank::WebLog, 1u32);
        let g = m.lock();
        // Same-thread try_lock on a std-backed mutex would deadlock if it
        // blocked; it must fail cleanly and leave the tracker untouched.
        let t = std::thread::scope(|s| s.spawn(|| m.try_lock().is_none()).join().unwrap());
        assert!(t);
        drop(g);
        assert_eq!(*m.lock(), 1);
    }
}
