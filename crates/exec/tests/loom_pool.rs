//! Loom model-checking of the morsel-claim protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; each body runs under
//! `loom::model`, which explores thread interleavings (the vendored
//! shim drives a seeded randomized scheduler for `LOOM_ITERS`
//! iterations). Two things are checked: a direct model of the
//! cursor/slot claim loop (the unsafe core of `scatter_morsels`), and
//! the real `WorkPool` morsel path end to end — workers and the
//! scattering caller racing the shared cursor, the completion barrier,
//! and panic unwinding.
#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;
use mp_exec::WorkPool;

/// Direct model of the claim loop: two claimers race `fetch_add` on a
/// shared cursor over N morsels. Every morsel must be claimed exactly
/// once, and the union of both claimers' work must cover all morsels —
/// no double execution, no hole, regardless of interleaving.
#[test]
fn cursor_claims_are_exactly_once() {
    loom::model(|| {
        const MORSELS: usize = 6;
        let cursor = Arc::new(AtomicUsize::new(0));
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..MORSELS).map(|_| AtomicUsize::new(0)).collect());

        let claimer = |cursor: Arc<AtomicUsize>, hits: Arc<Vec<AtomicUsize>>| {
            move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= MORSELS {
                    break;
                }
                hits[k].fetch_add(1, Ordering::Relaxed);
                thread::yield_now();
            }
        };

        let t1 = thread::spawn(claimer(cursor.clone(), hits.clone()));
        let t2 = thread::spawn(claimer(cursor.clone(), hits.clone()));
        t1.join().unwrap();
        t2.join().unwrap();

        for (k, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "morsel {k} claim count");
        }
    });
}

/// Abort-flag model: a claimer that observes the abort flag must stop
/// claiming, and morsels claimed before the abort was raised are the
/// only ones executed — mirroring the panic path's "stop the fleet,
/// finish nothing new" contract.
#[test]
fn abort_flag_stops_new_claims() {
    loom::model(|| {
        const MORSELS: usize = 8;
        let cursor = Arc::new(AtomicUsize::new(0));
        let abort = Arc::new(AtomicBool::new(false));
        let executed = Arc::new(AtomicUsize::new(0));

        let worker = {
            let (cursor, abort, executed) = (cursor.clone(), abort.clone(), executed.clone());
            thread::spawn(move || loop {
                if abort.load(Ordering::Acquire) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= MORSELS {
                    break;
                }
                executed.fetch_add(1, Ordering::Relaxed);
                thread::yield_now();
            })
        };
        // The "panicking" claimer: executes one morsel, then aborts.
        if cursor.fetch_add(1, Ordering::Relaxed) < MORSELS {
            executed.fetch_add(1, Ordering::Relaxed);
        }
        abort.store(true, Ordering::Release);
        worker.join().unwrap();

        let done = executed.load(Ordering::Relaxed);
        let claimed = cursor.load(Ordering::Relaxed).min(MORSELS);
        assert_eq!(done, claimed, "every claimed morsel ran exactly once");
        assert!(done <= MORSELS);
    });
}

/// The real pool under the model scheduler: a 2-worker pool and the
/// scattering caller race the shared cursor across more morsels than
/// claimers. Results must come back in input order with every morsel
/// present exactly once.
#[test]
fn real_pool_morsel_scatter_is_ordered_and_complete() {
    loom::model(|| {
        let pool = WorkPool::new(2);
        let items: Vec<usize> = (0..24).collect();
        let got = pool.scatter_morsels(&items, 3, |c: &[usize]| c.to_vec());
        let want: Vec<Vec<usize>> = items.chunks(3).map(<[usize]>::to_vec).collect();
        assert_eq!(got, want);
    });
}

/// The real pool's panic path under the model scheduler: the caller
/// observes the unwind whichever claimer hits the poisoned morsel, and
/// the same pool completes a follow-up scatter.
#[test]
fn real_pool_panic_unwinds_cleanly_under_model() {
    loom::model(|| {
        let pool = WorkPool::new(2);
        let items: Vec<usize> = (0..12).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scatter_morsels(&items, 2, |c: &[usize]| {
                if c.contains(&7) {
                    panic!("poisoned morsel");
                }
                c.len()
            })
        }));
        assert!(r.is_err());
        let counts = pool.scatter_morsels(&items, 2, |c: &[usize]| c.len());
        assert_eq!(counts.iter().sum::<usize>(), items.len());
    });
}
