//! Property-based oracle for the morsel-driven scatter: across pool
//! sizes, input sizes, and morsel widths, `scatter_morsels` must be
//! observationally identical to the sequential `chunks().map()` it
//! replaces — same per-morsel results, in input order — and an injected
//! panic in any morsel must propagate to the caller while leaving the
//! pool usable.

use mp_exec::WorkPool;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The sequential oracle: what any correct fan-out must produce.
fn sequential(items: &[u64], morsel: usize, salt: u64) -> Vec<Vec<u64>> {
    items
        .chunks(morsel)
        .map(|c| c.iter().map(|x| x.wrapping_mul(31) ^ salt).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Order and content match the sequential oracle for every pool
    /// size from 1 to 8, including sizes past the host's core count.
    #[test]
    fn morsel_scatter_matches_sequential_oracle(
        items in prop::collection::vec(any::<u64>(), 0..200),
        morsel in 1usize..40,
        workers in 1usize..=8,
        salt in any::<u64>(),
    ) {
        let pool = WorkPool::new(workers);
        let got = pool.scatter_morsels(&items, morsel, |c: &[u64]| {
            c.iter().map(|x| x.wrapping_mul(31) ^ salt).collect::<Vec<u64>>()
        });
        prop_assert_eq!(got, sequential(&items, morsel, salt));
    }

    /// A panic in an arbitrary morsel propagates to the caller, and the
    /// pool survives: the very next scatter on the same pool still
    /// matches the oracle. Claimed-but-unpoisoned morsels may or may not
    /// have run — the property is only that the caller observes the
    /// panic and nothing leaks into later scatters.
    #[test]
    fn injected_panic_propagates_and_pool_survives(
        len in 1usize..120,
        morsel in 1usize..16,
        workers in 1usize..=4,
        poison_seed in any::<u64>(),
    ) {
        let items: Vec<u64> = (0..len as u64).collect();
        let poison = poison_seed % len as u64;
        let pool = WorkPool::new(workers);

        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter_morsels(&items, morsel, |c: &[u64]| {
                if c.contains(&poison) {
                    panic!("injected morsel failure at {poison}");
                }
                c.to_vec()
            })
        }));
        prop_assert!(result.is_err(), "poisoned morsel must panic the caller");

        // The pool must still dispatch and produce oracle-identical
        // results after unwinding.
        let got = pool.scatter_morsels(&items, morsel, |c: &[u64]| {
            c.iter().map(|x| x.wrapping_mul(31)).collect::<Vec<u64>>()
        });
        prop_assert_eq!(got, sequential(&items, morsel, 0));
    }
}
