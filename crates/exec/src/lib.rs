//! # mp-exec — pooled scatter-gather and the read-through query cache
//!
//! The paper's datastore serves FireWorks claiming, MapReduce analytics,
//! and the Materials API concurrently; this crate provides the two
//! execution primitives the rest of the workspace fans work out on:
//!
//! * [`WorkPool`] — a fixed-size pool of persistent worker threads with
//!   two scoped fan-out primitives. [`WorkPool::scatter`] maps N owned
//!   inputs through a borrowing closure (one boxed job per input — right
//!   for heterogeneous work like per-shard updates). For the homogeneous
//!   chunk-scans that dominate the read path, [`WorkPool::scatter_morsels`]
//!   is morsel-driven: workers claim contiguous morsels off a shared
//!   slice via an atomic cursor and write into pre-allocated output
//!   slots — O(workers) boxes and channel sends per scatter instead of
//!   O(jobs), order preserved by construction. The caller participates
//!   as worker zero, so a pool of size 1 degrades to a plain sequential
//!   map with no thread traffic at all.
//! * [`Crossover`] — an adaptive seq-vs-parallel decision point: a
//!   learned per-item cost (EWMA over sequential scans) and a per-pool
//!   calibrated dispatch overhead decide, per query, whether fan-out
//!   pays for itself (DESIGN §14).
//! * [`QueryCache`] — a bounded read-through cache keyed by a normalized
//!   query string and guarded by per-collection *generation counters*:
//!   every write bumps the collection's generation, and a cached entry
//!   whose recorded generation no longer matches is dropped on probe.
//!
//! Both structures keep their shared state behind `mp-sync` ranked locks
//! (`ExecPool` and `QueryCache` in the DESIGN §8 table) so the L0xx
//! concurrency lints and the loom suite cover them like everything else.
//! Worker threads are plain `std` threads; under `--cfg loom` the
//! vendored shim schedules real threads too, so the same code runs in
//! model-checked tests.

#![deny(rust_2018_idioms)]

pub mod cache;
pub mod crossover;
pub mod pool;

pub use cache::{CacheStats, QueryCache};
pub use crossover::{Crossover, Decision};
pub use pool::{PoolStats, WorkPool};
