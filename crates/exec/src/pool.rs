//! Fixed-size work pool with a scoped scatter-gather primitive.
//!
//! The pool owns `size - 1` persistent worker threads, each fed by its
//! own single-consumer channel (no shared run-queue lock on the dispatch
//! path). The caller of [`WorkPool::scatter`] acts as worker zero: it
//! keeps every `size`-th input for itself and runs that share while the
//! workers chew on theirs, so a pool of size 1 has no workers, spawns no
//! threads, and degrades to a plain in-order sequential map.
//!
//! Scatter is *scoped*: the closure and inputs may borrow from the
//! caller's stack even though the dispatched jobs are sent to
//! `'static` worker threads. Soundness rests on one invariant, enforced
//! by construction below: **scatter does not return (or unwind) until it
//! has collected a completion message for every job it dispatched**, so
//! no borrow escapes the call. Panics inside a job are caught on the
//! worker, shipped back as a completion, and re-raised on the caller
//! after all other jobs finish.

use mp_sync::{LockRank, OrderedMutex};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Type-erased unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Chunks each execution slot should receive from [`WorkPool::chunk_size`].
/// More than one so the slots stay busy when chunks finish unevenly; small
/// enough that per-chunk dispatch overhead stays negligible.
const CHUNKS_PER_SLOT: usize = 4;

thread_local! {
    /// Set for the lifetime of a pool worker thread: a nested scatter
    /// issued from inside a job runs inline instead of re-entering the
    /// pool, which would risk starving the pool of workers (deadlock
    /// when every worker blocks waiting for a slot).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Counters describing pool usage, for benches and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Scatter calls that fanned out to worker threads.
    pub scatters: u64,
    /// Scatter calls that ran inline (size 1, single input, or nested).
    pub inline_runs: u64,
    /// Jobs shipped to worker threads across all scatters.
    pub jobs_dispatched: u64,
}

/// A fixed-size pool of persistent worker threads.
///
/// Cheap to share by reference; the process-wide instance is
/// [`WorkPool::global`]. Dropping a non-global pool closes the feed
/// channels and the workers exit after draining them.
pub struct WorkPool {
    senders: Vec<mpsc::Sender<Job>>,
    cursor: AtomicUsize,
    stats: OrderedMutex<PoolStats>,
}

impl WorkPool {
    /// Pool with `size` execution slots: the caller plus `size - 1`
    /// worker threads. `size` is clamped to at least 1.
    pub fn new(size: usize) -> Self {
        let workers = size.max(1) - 1;
        let mut senders = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            std::thread::Builder::new()
                .name(format!("mp-exec-{i}"))
                .spawn(move || worker_loop(rx))
                // mp-flow: allow(R001) — spawn failure at one-time pool construction is an unrecoverable resource exhaustion, not a request-path condition
                .expect("spawn mp-exec worker");
            senders.push(tx);
        }
        WorkPool {
            senders,
            cursor: AtomicUsize::new(0),
            stats: OrderedMutex::new(LockRank::ExecPool, PoolStats::default()),
        }
    }

    /// The process-wide pool, sized by `MP_EXEC_WORKERS` when set (>= 1)
    /// and the machine's available parallelism otherwise. On a
    /// single-core host this is size 1: no threads are ever spawned and
    /// every scatter runs inline.
    pub fn global() -> &'static WorkPool {
        static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkPool::new(default_size()))
    }

    /// Execution slots (workers plus the participating caller).
    pub fn size(&self) -> usize {
        self.senders.len() + 1
    }

    /// Snapshot of the usage counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }

    /// Items per chunk when splitting `n` items for a scatter: aims for
    /// [`CHUNKS_PER_SLOT`] chunks per execution slot — enough slack that
    /// one slow chunk cannot straggle the whole scatter behind an idle
    /// pool — while never dropping below `floor` items per chunk, so tiny
    /// chunks never pay more in dispatch than they earn in overlap.
    pub fn chunk_size(&self, n: usize, floor: usize) -> usize {
        let target_chunks = (self.size() * CHUNKS_PER_SLOT).max(1);
        n.div_ceil(target_chunks).max(floor.max(1))
    }

    /// Map `inputs` through `f` in parallel, returning outputs in input
    /// order. The closure may borrow from the caller's environment; see
    /// the module docs for the scoping argument. A panic in any job is
    /// re-raised here after every dispatched job has completed.
    pub fn scatter<I, R, F>(&self, inputs: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.senders.len();
        if workers == 0 || n == 1 || IN_WORKER.with(|w| w.get()) {
            {
                let mut st = self.stats.lock();
                st.inline_runs += 1;
            }
            return inputs.into_iter().map(f).collect();
        }

        let (done_tx, done_rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        let fref: &F = &f;
        let slots = workers + 1;
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<(usize, I)> = Vec::new();
        let mut dispatched = 0usize;
        for (idx, item) in inputs.into_iter().enumerate() {
            if idx % slots == 0 {
                // The caller's own share, run below while workers work.
                local.push((idx, item));
                continue;
            }
            let tx = done_tx.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let out = panic::catch_unwind(AssertUnwindSafe(|| fref(item)));
                let _ = tx.send((idx, out));
            });
            // SAFETY: the job borrows `fref` and `item` from this stack
            // frame. Every dispatched job sends exactly one completion
            // (the send is the job's last action, panic or not), and the
            // recv loop below blocks until `dispatched` completions have
            // arrived before this frame can return or unwind — so every
            // borrow in the erased closure is live for the job's whole
            // execution.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            // mp-flow: allow(R002) — index is reduced modulo `workers == self.senders.len()`, nonzero on this branch
            match self.senders[(start + idx) % workers].send(job) {
                Ok(()) => dispatched += 1,
                Err(mpsc::SendError(job)) => {
                    // Worker gone (only possible mid-teardown): run the
                    // job here; it still sends its completion.
                    job();
                    dispatched += 1;
                }
            }
        }
        drop(done_tx);
        {
            let mut st = self.stats.lock();
            st.scatters += 1;
            st.jobs_dispatched += dispatched as u64;
        }

        let mut results: Vec<(usize, std::thread::Result<R>)> = Vec::with_capacity(n);
        for (idx, item) in local {
            let out = panic::catch_unwind(AssertUnwindSafe(|| fref(item)));
            results.push((idx, out));
        }
        for _ in 0..dispatched {
            // mp-flow: allow(R001) — every dispatched job sends exactly one completion (panic or not, see safety comment above), so recv cannot see a hung-up channel early
            let msg = done_rx.recv().expect("mp-exec worker completion");
            results.push(msg);
        }
        results.sort_by_key(|(idx, _)| *idx);

        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for (_, r) in results {
            match r {
                Ok(v) => out.push(v),
                Err(p) if first_panic.is_none() => first_panic = Some(p),
                Err(_) => {}
            }
        }
        if let Some(p) = first_panic {
            panic::resume_unwind(p);
        }
        out
    }
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("size", &self.size())
            .finish_non_exhaustive()
    }
}

/// Pool size for [`WorkPool::global`].
fn default_size() -> usize {
    std::env::var("MP_EXEC_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn worker_loop(rx: mpsc::Receiver<Job>) {
    IN_WORKER.with(|w| w.set(true));
    while let Ok(job) = rx.recv() {
        // Panics are caught inside the job itself (and shipped back to
        // the scattering caller), so the loop — and the thread — outlive
        // any failing job.
        job();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scatter_preserves_input_order() {
        let pool = WorkPool::new(4);
        let inputs: Vec<u64> = (0..100).collect();
        let out = pool.scatter(inputs, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.stats().scatters, 1);
        assert!(pool.stats().jobs_dispatched > 0);
    }

    #[test]
    fn scatter_borrows_from_the_callers_stack() {
        let pool = WorkPool::new(3);
        let data: Vec<String> = (0..32).map(|i| format!("doc-{i}")).collect();
        let total = AtomicU64::new(0);
        let lens = pool.scatter(data.iter().collect::<Vec<&String>>(), |s| {
            total.fetch_add(s.len() as u64, Ordering::Relaxed);
            s.len()
        });
        assert_eq!(lens.len(), 32);
        let expect: u64 = data.iter().map(|s| s.len() as u64).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn size_one_pool_runs_inline() {
        let pool = WorkPool::new(1);
        assert_eq!(pool.size(), 1);
        let out = pool.scatter(vec![1, 2, 3], |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let st = pool.stats();
        assert_eq!(st.scatters, 0);
        assert_eq!(st.inline_runs, 1);
        assert_eq!(st.jobs_dispatched, 0);
    }

    #[test]
    fn nested_scatter_runs_inline_and_completes() {
        let pool = WorkPool::new(2);
        // Each outer job issues another scatter on the same pool; the
        // IN_WORKER guard makes the inner one inline on the worker, so
        // this terminates even though the pool has a single worker.
        let out = pool.scatter(vec![10u64, 20, 30, 40], |base| {
            pool.scatter((0..4).map(|k| base + k).collect(), |v| v)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, vec![10 * 4 + 6, 20 * 4 + 6, 30 * 4 + 6, 40 * 4 + 6]);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = WorkPool::new(3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter((0..16).collect::<Vec<u32>>(), |i| {
                assert!(i != 7, "boom at 7");
                i
            })
        }))
        .expect_err("panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at 7"), "{msg}");
        // The workers caught the panic locally and are still serving.
        let out = pool.scatter((0..16).collect::<Vec<u32>>(), |i| i + 1);
        assert_eq!(out.len(), 16);
        assert_eq!(out[15], 16);
    }

    #[test]
    fn chunk_size_targets_a_few_chunks_per_slot() {
        let pool = WorkPool::new(4);
        // 100k items on 4 slots: 16 target chunks of 6250.
        assert_eq!(pool.chunk_size(100_000, 1024), 6250);
        // The floor wins when the even split would go finer.
        assert_eq!(pool.chunk_size(5_000, 1024), 1024);
        // Degenerate inputs still give a usable (>= 1) chunk size.
        assert_eq!(pool.chunk_size(0, 0), 1);
        let single = WorkPool::new(1);
        assert_eq!(single.chunk_size(10_000, 1024), 2500);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let pool = WorkPool::new(4);
        let out: Vec<u32> = pool.scatter(Vec::<u32>::new(), |i| i);
        assert!(out.is_empty());
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkPool::global();
        let b = WorkPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.size() >= 1);
    }
}
