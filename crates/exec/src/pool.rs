//! Fixed-size work pool with a scoped scatter-gather primitive.
//!
//! The pool owns `size - 1` persistent worker threads, each fed by its
//! own single-consumer channel (no shared run-queue lock on the dispatch
//! path). The caller of [`WorkPool::scatter`] acts as worker zero: it
//! keeps every `size`-th input for itself and runs that share while the
//! workers chew on theirs, so a pool of size 1 has no workers, spawns no
//! threads, and degrades to a plain in-order sequential map.
//!
//! Scatter is *scoped*: the closure and inputs may borrow from the
//! caller's stack even though the dispatched jobs are sent to
//! `'static` worker threads. Soundness rests on one invariant, enforced
//! by construction below: **scatter does not return (or unwind) until it
//! has collected a completion message for every job it dispatched**, so
//! no borrow escapes the call. Panics inside a job are caught on the
//! worker, shipped back as a completion, and re-raised on the caller
//! after all other jobs finish.

use mp_sync::{LockRank, OrderedMutex};
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Type-erased unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A panic payload carried from a worker back to the scattering caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Chunks each execution slot should receive from [`WorkPool::chunk_size`].
/// More than one so the slots stay busy when chunks finish unevenly; small
/// enough that per-chunk dispatch overhead stays negligible.
const CHUNKS_PER_SLOT: usize = 4;

thread_local! {
    /// Set for the lifetime of a pool worker thread: a nested scatter
    /// issued from inside a job runs inline instead of re-entering the
    /// pool, which would risk starving the pool of workers (deadlock
    /// when every worker blocks waiting for a slot).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Counters describing pool usage, for benches and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Scatter calls that fanned out to worker threads.
    pub scatters: u64,
    /// Scatter calls that ran inline (size 1, single input, or nested).
    pub inline_runs: u64,
    /// Jobs shipped to worker threads across all scatters.
    pub jobs_dispatched: u64,
    /// Morsel scatters that fanned out to worker threads.
    pub morsel_scatters: u64,
    /// Runner jobs shipped across all morsel scatters. Bounded by the
    /// worker count per scatter — never by the morsel count — which is
    /// what makes the morsel path O(workers) boxes and channel sends
    /// instead of O(jobs).
    pub morsel_runners: u64,
    /// Morsels claimed off the shared cursor across all morsel scatters
    /// (by runners and scattering callers alike).
    pub morsels_claimed: u64,
}

/// A fixed-size pool of persistent worker threads.
///
/// Cheap to share by reference; the process-wide instance is
/// [`WorkPool::global`]. Dropping a non-global pool closes the feed
/// channels and the workers exit after draining them.
pub struct WorkPool {
    senders: Vec<mpsc::Sender<Job>>,
    cursor: AtomicUsize,
    stats: OrderedMutex<PoolStats>,
    dispatch_ns: OnceLock<u64>,
}

/// One write-once output slot of a morsel scatter.
///
/// The claiming thread — unique per slot index, because indices are
/// handed out by a `fetch_add` on the shared cursor — is the only
/// writer; the scattering caller reads the slot only after collecting a
/// completion from every runner, so no two accesses ever overlap.
struct MorselSlot<R>(UnsafeCell<MaybeUninit<R>>);

// SAFETY: see the type docs — slot `k` is written by exactly one claimer
// and read only after the scatter's completion barrier.
unsafe impl<R: Send> Sync for MorselSlot<R> {}

/// Shared state of one in-flight morsel scatter: the input slice, the
/// claim cursor, and the pre-allocated output slots. Allocated once per
/// scatter (O(morsels) slots in two `Vec`s), then raced over by the
/// caller and up to `workers` runner jobs.
struct MorselRun<'a, T, R, F> {
    items: &'a [T],
    morsel: usize,
    num: usize,
    cursor: AtomicUsize,
    abort: AtomicBool,
    done: Vec<AtomicBool>,
    slots: Vec<MorselSlot<R>>,
    f: &'a F,
}

impl<T: Sync, R: Send, F: Fn(&[T]) -> R + Sync> MorselRun<'_, T, R, F> {
    /// Claim morsels off the shared cursor until the input is exhausted
    /// (or another claimer panicked). A panic in `f` is caught here,
    /// flips the abort flag so the other claimers stop early, and is
    /// returned to be re-raised on the scattering caller.
    fn claim(&self) -> Result<(), PanicPayload> {
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return Ok(());
            }
            let k = self.cursor.fetch_add(1, Ordering::Relaxed);
            if k >= self.num {
                return Ok(());
            }
            let lo = k * self.morsel;
            let hi = (lo + self.morsel).min(self.items.len());
            // mp-flow: allow(R002) — `k < num = ceil(len/morsel)` was checked above, so `lo <= (num-1)*morsel < len` and `hi` is clamped to `len`
            match panic::catch_unwind(AssertUnwindSafe(|| (self.f)(&self.items[lo..hi]))) {
                Ok(v) => {
                    // SAFETY: index `k` was claimed exclusively by the
                    // `fetch_add` above; nobody else writes this slot.
                    // mp-flow: allow(R002) — `k < self.num == slots.len()` by the claim guard above
                    unsafe { (*self.slots[k].0.get()).write(v) };
                    // mp-flow: allow(R002) — `k < self.num == done.len()` by the claim guard above
                    self.done[k].store(true, Ordering::Release);
                }
                Err(p) => {
                    self.abort.store(true, Ordering::Relaxed);
                    return Err(p);
                }
            }
        }
    }
}

impl WorkPool {
    /// Pool with `size` execution slots: the caller plus `size - 1`
    /// worker threads. `size` is clamped to at least 1.
    pub fn new(size: usize) -> Self {
        let workers = size.max(1) - 1;
        let mut senders = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            std::thread::Builder::new()
                .name(format!("mp-exec-{i}"))
                .spawn(move || worker_loop(rx))
                // mp-flow: allow(R001) — spawn failure at one-time pool construction is an unrecoverable resource exhaustion, not a request-path condition
                .expect("spawn mp-exec worker");
            senders.push(tx);
        }
        WorkPool {
            senders,
            cursor: AtomicUsize::new(0),
            stats: OrderedMutex::new(LockRank::ExecPool, PoolStats::default()),
            dispatch_ns: OnceLock::new(),
        }
    }

    /// The process-wide pool, sized by `MP_EXEC_WORKERS` when set (>= 1)
    /// and the machine's available parallelism otherwise. On a
    /// single-core host this is size 1: no threads are ever spawned and
    /// every scatter runs inline.
    pub fn global() -> &'static WorkPool {
        static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkPool::new(default_size()))
    }

    /// Execution slots (workers plus the participating caller).
    pub fn size(&self) -> usize {
        self.senders.len() + 1
    }

    /// Snapshot of the usage counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }

    /// Items per chunk when splitting `n` items for a scatter: aims for
    /// [`CHUNKS_PER_SLOT`] chunks per execution slot — enough slack that
    /// one slow chunk cannot straggle the whole scatter behind an idle
    /// pool — while never dropping below `floor` items per chunk, so tiny
    /// chunks never pay more in dispatch than they earn in overlap.
    pub fn chunk_size(&self, n: usize, floor: usize) -> usize {
        let target_chunks = (self.size() * CHUNKS_PER_SLOT).max(1);
        n.div_ceil(target_chunks).max(floor.max(1))
    }

    /// Map `inputs` through `f` in parallel, returning outputs in input
    /// order. The closure may borrow from the caller's environment; see
    /// the module docs for the scoping argument. A panic in any job is
    /// re-raised here after every dispatched job has completed.
    pub fn scatter<I, R, F>(&self, inputs: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.senders.len();
        if workers == 0 || n == 1 || IN_WORKER.with(|w| w.get()) {
            {
                let mut st = self.stats.lock();
                st.inline_runs += 1;
            }
            return inputs.into_iter().map(f).collect();
        }

        let (done_tx, done_rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        let fref: &F = &f;
        let slots = workers + 1;
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<(usize, I)> = Vec::new();
        let mut dispatched = 0usize;
        for (idx, item) in inputs.into_iter().enumerate() {
            if idx % slots == 0 {
                // The caller's own share, run below while workers work.
                local.push((idx, item));
                continue;
            }
            let tx = done_tx.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let out = panic::catch_unwind(AssertUnwindSafe(|| fref(item)));
                let _ = tx.send((idx, out));
            });
            // SAFETY: the job borrows `fref` and `item` from this stack
            // frame. Every dispatched job sends exactly one completion
            // (the send is the job's last action, panic or not), and the
            // recv loop below blocks until `dispatched` completions have
            // arrived before this frame can return or unwind — so every
            // borrow in the erased closure is live for the job's whole
            // execution.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            // mp-flow: allow(R002) — index is reduced modulo `workers == self.senders.len()`, nonzero on this branch
            match self.senders[(start + idx) % workers].send(job) {
                Ok(()) => dispatched += 1,
                Err(mpsc::SendError(job)) => {
                    // Worker gone (only possible mid-teardown): run the
                    // job here; it still sends its completion.
                    job();
                    dispatched += 1;
                }
            }
        }
        drop(done_tx);
        {
            let mut st = self.stats.lock();
            st.scatters += 1;
            st.jobs_dispatched += dispatched as u64;
        }

        let mut results: Vec<(usize, std::thread::Result<R>)> = Vec::with_capacity(n);
        for (idx, item) in local {
            let out = panic::catch_unwind(AssertUnwindSafe(|| fref(item)));
            results.push((idx, out));
        }
        for _ in 0..dispatched {
            // mp-flow: allow(R001) — every dispatched job sends exactly one completion (panic or not, see safety comment above), so recv cannot see a hung-up channel early
            let msg = done_rx.recv().expect("mp-exec worker completion");
            results.push(msg);
        }
        results.sort_by_key(|(idx, _)| *idx);

        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for (_, r) in results {
            match r {
                Ok(v) => out.push(v),
                Err(p) if first_panic.is_none() => first_panic = Some(p),
                Err(_) => {}
            }
        }
        if let Some(p) = first_panic {
            panic::resume_unwind(p);
        }
        out
    }

    /// Morsel-driven map over a homogeneous slice: `items` is cut into
    /// contiguous morsels of `morsel` items (the last may be short), and
    /// the caller plus up to `workers` *runner* jobs claim morsel indices
    /// off a shared atomic cursor, writing each result into its
    /// pre-allocated output slot. Output order equals input order by
    /// construction — slot `k` holds `f(&items[k*morsel ..])` — with no
    /// per-morsel boxing, channel send, or gather sort: the whole scatter
    /// allocates two `Vec`s of `num_morsels` slots and dispatches at most
    /// one boxed runner per worker thread.
    ///
    /// The same scoping argument as [`WorkPool::scatter`] applies: the
    /// closure and slice may borrow from the caller's stack because this
    /// call does not return (or unwind) before every runner has sent its
    /// completion. A panic in `f` aborts the remaining claims, is carried
    /// back, and re-raised here after the barrier; initialized slots are
    /// dropped first.
    pub fn scatter_morsels<T, R, F>(&self, items: &[T], morsel: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        let morsel = morsel.max(1);
        if items.is_empty() {
            return Vec::new();
        }
        let num = items.len().div_ceil(morsel);
        let workers = self.senders.len();
        if workers == 0 || num == 1 || IN_WORKER.with(|w| w.get()) {
            {
                let mut st = self.stats.lock();
                st.inline_runs += 1;
            }
            return items.chunks(morsel).map(f).collect();
        }

        let run = MorselRun {
            items,
            morsel,
            num,
            cursor: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            done: (0..num).map(|_| AtomicBool::new(false)).collect(),
            slots: (0..num)
                .map(|_| MorselSlot(UnsafeCell::new(MaybeUninit::uninit())))
                .collect(),
            f: &f,
        };
        let rref = &run;
        let (done_tx, done_rx) = mpsc::channel::<Result<(), PanicPayload>>();
        // More runners than morsels would only pay dispatch to claim
        // nothing; the caller itself covers one share.
        let runners = workers.min(num - 1);
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut dispatched = 0usize;
        for w in 0..runners {
            // mp-lint: allow(H001) — one Sender clone per runner, bounded by the worker count per scatter, never per document
            let tx = done_tx.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = rref.claim();
                let _ = tx.send(r);
            });
            // SAFETY: the runner borrows `run` (and through it `items`
            // and `f`) from this stack frame. Every runner sends exactly
            // one completion as its last action (panic or not — `claim`
            // catches), and the recv loop below blocks until
            // `dispatched` completions have arrived before this frame
            // can return or unwind, so every borrow in the erased
            // closure outlives its use.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            // mp-flow: allow(R002) — index is reduced modulo `workers == self.senders.len()`, nonzero on this branch
            match self.senders[(start + w) % workers].send(job) {
                Ok(()) => dispatched += 1,
                Err(mpsc::SendError(job)) => {
                    // Worker gone (only possible mid-teardown): run the
                    // runner here; it still sends its completion.
                    job();
                    dispatched += 1;
                }
            }
        }
        drop(done_tx);
        {
            let mut st = self.stats.lock();
            st.morsel_scatters += 1;
            st.morsel_runners += dispatched as u64;
        }

        let mut first_panic = rref.claim().err();
        for _ in 0..dispatched {
            // mp-flow: allow(R001) — every runner sends exactly one completion (panic or not, see safety comment above), so recv cannot see a hung-up channel early
            if let Err(p) = done_rx.recv().expect("mp-exec runner completion") {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
        {
            let mut st = self.stats.lock();
            st.morsels_claimed += run.cursor.load(Ordering::Relaxed).min(num) as u64;
        }

        if let Some(p) = first_panic {
            for (k, flag) in run.done.iter().enumerate() {
                if flag.load(Ordering::Acquire) {
                    // SAFETY: slot `k` was fully written before its done
                    // flag was released, and no thread touches it again.
                    // mp-flow: allow(R002) — `k` enumerates `done`, and `slots.len() == done.len()` by construction
                    unsafe { (*run.slots[k].0.get()).assume_init_drop() };
                }
            }
            panic::resume_unwind(p);
        }
        run.slots
            .into_iter()
            .map(|s| {
                // SAFETY: no claimer panicked, so every morsel index was
                // claimed and its slot written before the completion
                // barrier above; the channel recv orders those writes
                // before this read.
                unsafe { s.0.into_inner().assume_init() }
            })
            .collect()
    }

    /// Execution slots that can actually run concurrently: pool slots
    /// capped by the machine's available parallelism. An oversized pool
    /// on a small host still only has that many cores to run on, so
    /// crossover decisions use this, not [`WorkPool::size`].
    pub fn effective_slots(&self) -> usize {
        static AVAIL: OnceLock<usize> = OnceLock::new();
        let avail = *AVAIL.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        self.size().min(avail)
    }

    /// Measured cost of one morsel fan-out on this pool — box the
    /// runners, wake the workers, collect the completions — in
    /// nanoseconds. Calibrated lazily on first use by timing a handful of
    /// empty dispatches and taking the median, so the crossover model
    /// prices dispatch at what *this* host actually charges rather than
    /// a hard-coded constant.
    pub fn dispatch_overhead_ns(&self) -> u64 {
        *self.dispatch_ns.get_or_init(|| {
            if self.senders.is_empty() {
                return 0;
            }
            let items = vec![(); self.size() * 2];
            let mut samples: Vec<u64> = (0..7)
                .map(|_| {
                    let t = std::time::Instant::now();
                    let _ = self.scatter_morsels(&items, 1, |_| ());
                    t.elapsed().as_nanos() as u64
                })
                .collect();
            samples.sort_unstable();
            // mp-flow: allow(R002) — `samples` holds exactly 7 timing draws, so the median index 3 is in bounds
            samples[samples.len() / 2].max(1)
        })
    }
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("size", &self.size())
            .finish_non_exhaustive()
    }
}

/// Pool size for [`WorkPool::global`].
fn default_size() -> usize {
    std::env::var("MP_EXEC_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn worker_loop(rx: mpsc::Receiver<Job>) {
    IN_WORKER.with(|w| w.set(true));
    while let Ok(job) = rx.recv() {
        // Panics are caught inside the job itself (and shipped back to
        // the scattering caller), so the loop — and the thread — outlive
        // any failing job.
        job();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scatter_preserves_input_order() {
        let pool = WorkPool::new(4);
        let inputs: Vec<u64> = (0..100).collect();
        let out = pool.scatter(inputs, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.stats().scatters, 1);
        assert!(pool.stats().jobs_dispatched > 0);
    }

    #[test]
    fn scatter_borrows_from_the_callers_stack() {
        let pool = WorkPool::new(3);
        let data: Vec<String> = (0..32).map(|i| format!("doc-{i}")).collect();
        let total = AtomicU64::new(0);
        let lens = pool.scatter(data.iter().collect::<Vec<&String>>(), |s| {
            total.fetch_add(s.len() as u64, Ordering::Relaxed);
            s.len()
        });
        assert_eq!(lens.len(), 32);
        let expect: u64 = data.iter().map(|s| s.len() as u64).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn size_one_pool_runs_inline() {
        let pool = WorkPool::new(1);
        assert_eq!(pool.size(), 1);
        let out = pool.scatter(vec![1, 2, 3], |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let st = pool.stats();
        assert_eq!(st.scatters, 0);
        assert_eq!(st.inline_runs, 1);
        assert_eq!(st.jobs_dispatched, 0);
    }

    #[test]
    fn nested_scatter_runs_inline_and_completes() {
        let pool = WorkPool::new(2);
        // Each outer job issues another scatter on the same pool; the
        // IN_WORKER guard makes the inner one inline on the worker, so
        // this terminates even though the pool has a single worker.
        let out = pool.scatter(vec![10u64, 20, 30, 40], |base| {
            pool.scatter((0..4).map(|k| base + k).collect(), |v| v)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, vec![10 * 4 + 6, 20 * 4 + 6, 30 * 4 + 6, 40 * 4 + 6]);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = WorkPool::new(3);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter((0..16).collect::<Vec<u32>>(), |i| {
                assert!(i != 7, "boom at 7");
                i
            })
        }))
        .expect_err("panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at 7"), "{msg}");
        // The workers caught the panic locally and are still serving.
        let out = pool.scatter((0..16).collect::<Vec<u32>>(), |i| i + 1);
        assert_eq!(out.len(), 16);
        assert_eq!(out[15], 16);
    }

    #[test]
    fn chunk_size_targets_a_few_chunks_per_slot() {
        let pool = WorkPool::new(4);
        // 100k items on 4 slots: 16 target chunks of 6250.
        assert_eq!(pool.chunk_size(100_000, 1024), 6250);
        // The floor wins when the even split would go finer.
        assert_eq!(pool.chunk_size(5_000, 1024), 1024);
        // Degenerate inputs still give a usable (>= 1) chunk size.
        assert_eq!(pool.chunk_size(0, 0), 1);
        let single = WorkPool::new(1);
        assert_eq!(single.chunk_size(10_000, 1024), 2500);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let pool = WorkPool::new(4);
        let out: Vec<u32> = pool.scatter(Vec::<u32>::new(), |i| i);
        assert!(out.is_empty());
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn morsels_preserve_order_and_content() {
        let pool = WorkPool::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        let sums = pool.scatter_morsels(&items, 256, |m| m.iter().sum::<u64>());
        let expect: Vec<u64> = items.chunks(256).map(|m| m.iter().sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn morsel_dispatch_is_o_workers_not_o_morsels() {
        let pool = WorkPool::new(4);
        let items: Vec<u32> = (0..4096).collect();
        // 64 morsels, but only `workers` (3) boxed runner jobs may ship:
        // the steady-state morsel path allocates no per-morsel job and
        // sends nothing per morsel.
        let out = pool.scatter_morsels(&items, 64, |m| m.len());
        assert_eq!(out.len(), 64);
        let st = pool.stats();
        assert_eq!(st.morsel_scatters, 1);
        assert_eq!(st.morsels_claimed, 64);
        assert!(
            st.morsel_runners <= 3,
            "runner jobs must be bounded by workers, got {}",
            st.morsel_runners
        );
        // The classic per-job path was not involved at all.
        assert_eq!(st.jobs_dispatched, 0);
        assert_eq!(st.scatters, 0);
    }

    #[test]
    fn morsel_panic_propagates_and_pool_survives() {
        let pool = WorkPool::new(3);
        let items: Vec<u32> = (0..64).collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter_morsels(&items, 4, |m| {
                assert!(!m.contains(&42), "boom at morsel containing 42");
                m.len()
            })
        }))
        .expect_err("panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at morsel"), "{msg}");
        // The runners caught the panic locally and keep serving.
        let out = pool.scatter_morsels(&items, 4, |m| m.len());
        assert_eq!(out.iter().sum::<usize>(), 64);
    }

    #[test]
    fn morsel_panic_drops_initialized_results() {
        // Results that were already written when a later morsel panics
        // must be dropped, not leaked: count live drops via Arc.
        let pool = WorkPool::new(2);
        let token = std::sync::Arc::new(());
        let items: Vec<u32> = (0..32).collect();
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter_morsels(&items, 2, |m| {
                assert!(!m.contains(&31), "late boom");
                std::sync::Arc::clone(&token)
            })
        }))
        .expect_err("panic must propagate");
        assert_eq!(std::sync::Arc::strong_count(&token), 1);
    }

    #[test]
    fn size_one_pool_runs_morsels_inline() {
        let pool = WorkPool::new(1);
        let items: Vec<u32> = (0..100).collect();
        let out = pool.scatter_morsels(&items, 7, |m| m.to_vec());
        assert_eq!(out.concat(), items);
        let st = pool.stats();
        assert_eq!(st.morsel_scatters, 0);
        assert_eq!(st.inline_runs, 1);
    }

    #[test]
    fn nested_morsel_scatter_runs_inline_and_completes() {
        let pool = WorkPool::new(2);
        let items: Vec<u64> = (0..16).collect();
        let out = pool.scatter_morsels(&items, 2, |m| {
            let inner: Vec<u64> = m.to_vec();
            pool.scatter_morsels(&inner, 1, |x| x[0] * 2)
                .into_iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = items
            .chunks(2)
            .map(|m| m.iter().map(|x| x * 2).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_morsel_edges() {
        let pool = WorkPool::new(4);
        let out: Vec<usize> = pool.scatter_morsels(&[] as &[u32], 8, |m| m.len());
        assert!(out.is_empty());
        // One morsel runs inline: fan-out would be pure overhead.
        let out = pool.scatter_morsels(&[1u32, 2, 3], 8, |m| m.len());
        assert_eq!(out, vec![3]);
        assert_eq!(pool.stats().morsel_scatters, 0);
    }

    #[test]
    fn dispatch_overhead_is_calibrated_once() {
        let pool = WorkPool::new(2);
        let a = pool.dispatch_overhead_ns();
        let b = pool.dispatch_overhead_ns();
        assert!(a >= 1);
        assert_eq!(a, b);
        let single = WorkPool::new(1);
        assert_eq!(single.dispatch_overhead_ns(), 0);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkPool::global();
        let b = WorkPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.size() >= 1);
    }
}
