//! Adaptive seq-vs-parallel crossover for homogeneous scans.
//!
//! Hard-coded parallelism thresholds mistune the moment the workload or
//! the host changes: the seed bench recorded a 100k-doc shard scatter
//! *losing* to sequential iteration because every query paid fan-out
//! overhead whether or not parallelism could pay for it. This module
//! prices the decision instead of guessing it:
//!
//! * the **per-item cost** of the sequential path is learned online — an
//!   EWMA over observed sequential scans, in ns/item;
//! * the **dispatch overhead** of a fan-out is calibrated per pool by
//!   [`WorkPool::dispatch_overhead_ns`] (timed empty dispatches on this
//!   host, not a constant);
//! * the **effective slots** are the pool size capped by the machine's
//!   available parallelism, so an oversized pool on a small host is
//!   priced at what it can actually run.
//!
//! A scan of `n` items goes parallel when the work parallelism can take
//! off the critical path exceeds twice the dispatch cost:
//!
//! ```text
//! n · per_item_ns · (1 − 1/slots)  >  2 · dispatch_ns
//! ```
//!
//! The 2× margin keeps borderline scans sequential — mispredicting
//! "sequential" costs a fraction of one scan, mispredicting "parallel"
//! costs dispatch on every query. `MP_EXEC_PARALLEL=always|never` force
//! the decision for benches and CI.

use crate::WorkPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Scans shorter than this never update the cost model: their timing is
/// dominated by fixed per-scan costs, which would inflate the per-item
/// estimate.
const MIN_SAMPLE_ITEMS: usize = 64;

/// Forced crossover mode from `MP_EXEC_PARALLEL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Auto,
    Always,
    Never,
}

fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MP_EXEC_PARALLEL").as_deref() {
        Ok("always") | Ok("par") | Ok("parallel") => Mode::Always,
        Ok("never") | Ok("seq") | Ok("sequential") => Mode::Never,
        _ => Mode::Auto,
    })
}

/// The verdict for one scan, with the model inputs that produced it —
/// surfaced through `explain` so a slow query can show *why* it ran
/// sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Fan out over the pool, or stay on the caller's thread.
    pub parallel: bool,
    /// Effective execution slots the decision was priced at.
    pub slots: usize,
    /// Learned sequential cost in ns/item (0 = no data yet).
    pub per_item_ns: u64,
    /// Calibrated fan-out cost for the pool, in ns.
    pub dispatch_ns: u64,
    /// Item count at which parallelism starts to win under the current
    /// estimates (`usize::MAX` when it can never win, e.g. one slot).
    pub threshold_items: usize,
}

/// Online seq-vs-parallel decision point for one scan family.
///
/// Each homogeneous scan family (filter matching, map phases, …) keeps
/// its own `Crossover`, because their per-item costs differ by orders of
/// magnitude. Construction is `const` so call sites can hold one in a
/// `static`.
#[derive(Debug)]
pub struct Crossover {
    /// EWMA of sequential per-item cost, ns (0 = unseeded).
    per_item_ns: AtomicU64,
}

impl Crossover {
    /// An unseeded crossover: decides sequential until the first
    /// recorded sample, then adapts.
    pub const fn new() -> Self {
        Crossover {
            per_item_ns: AtomicU64::new(0),
        }
    }

    /// Fold one observed *sequential* scan into the cost model. Samples
    /// under [`MIN_SAMPLE_ITEMS`] items are ignored (fixed costs would
    /// dominate them). Quarter-weight EWMA: noisy outliers decay in a
    /// few scans without whiplashing the decision.
    pub fn record_seq(&self, items: usize, elapsed: Duration) {
        if items < MIN_SAMPLE_ITEMS {
            return;
        }
        let sample = ((elapsed.as_nanos() as u64) / items as u64).max(1);
        let old = self.per_item_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 4 + sample / 4
        };
        self.per_item_ns.store(new, Ordering::Relaxed);
    }

    /// The learned sequential per-item cost in ns (0 until seeded).
    pub fn per_item_ns(&self) -> u64 {
        self.per_item_ns.load(Ordering::Relaxed)
    }

    /// Price a scan of `n` items on `pool` and decide seq vs parallel.
    pub fn decide(&self, pool: &WorkPool, n: usize) -> Decision {
        let slots = pool.effective_slots();
        let per_item_ns = self.per_item_ns.load(Ordering::Relaxed);
        let can_fan_out = slots > 1 && pool.size() > 1;
        let dispatch_ns = if can_fan_out {
            pool.dispatch_overhead_ns()
        } else {
            0
        };
        let threshold_items = if !can_fan_out || per_item_ns == 0 {
            usize::MAX
        } else {
            // Smallest n with n · per_item · (1 − 1/slots) > 2 · dispatch.
            let saved_per_item = per_item_ns as u128 * (slots as u128 - 1) / slots as u128;
            (2 * dispatch_ns as u128)
                .checked_div(saved_per_item)
                .map_or(usize::MAX, |t| (t + 1) as usize)
        };
        let parallel = match mode() {
            Mode::Always => pool.size() > 1,
            Mode::Never => false,
            Mode::Auto => can_fan_out && n >= threshold_items,
        };
        Decision {
            parallel,
            slots,
            per_item_ns,
            dispatch_ns,
            threshold_items,
        }
    }
}

impl Default for Crossover {
    fn default() -> Self {
        Crossover::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn unseeded_model_stays_sequential() {
        let cx = Crossover::new();
        let pool = WorkPool::new(4);
        let d = cx.decide(&pool, 1_000_000);
        assert_eq!(d.per_item_ns, 0);
        assert_eq!(d.threshold_items, usize::MAX);
        if mode() == Mode::Auto {
            assert!(!d.parallel, "no cost data must mean no fan-out");
        }
    }

    #[test]
    fn tiny_samples_are_ignored() {
        let cx = Crossover::new();
        cx.record_seq(MIN_SAMPLE_ITEMS - 1, Duration::from_millis(10));
        assert_eq!(cx.per_item_ns(), 0);
        cx.record_seq(1000, Duration::from_micros(250));
        assert_eq!(cx.per_item_ns(), 250);
    }

    #[test]
    fn ewma_converges_toward_recent_cost() {
        let cx = Crossover::new();
        cx.record_seq(1000, Duration::from_micros(400));
        for _ in 0..32 {
            cx.record_seq(1000, Duration::from_micros(100));
        }
        let per = cx.per_item_ns();
        assert!((75..=125).contains(&per), "per_item_ns={per}");
    }

    #[test]
    fn single_slot_pools_never_fan_out() {
        let cx = Crossover::new();
        cx.record_seq(10_000, Duration::from_millis(10));
        let pool = WorkPool::new(1);
        let d = cx.decide(&pool, 10_000_000);
        assert!(!d.parallel);
        assert_eq!(d.threshold_items, usize::MAX);
        assert_eq!(d.dispatch_ns, 0);
    }

    #[test]
    fn threshold_scales_with_dispatch_cost() {
        let cx = Crossover::new();
        // 1 µs/item: expensive work parallelizes at small n.
        cx.record_seq(1000, Duration::from_millis(1));
        let pool = WorkPool::new(4);
        let d = cx.decide(&pool, 0);
        if d.slots > 1 {
            // threshold ≈ 2·dispatch / (per_item · (1 − 1/slots));
            // with per_item = 1000ns it must be a small item count.
            assert!(d.threshold_items <= (d.dispatch_ns as usize) / 300 + 2);
            let big = cx.decide(&pool, d.threshold_items);
            if mode() == Mode::Auto {
                assert!(big.parallel);
                assert!(!cx.decide(&pool, d.threshold_items - 1).parallel);
            }
        }
    }
}
