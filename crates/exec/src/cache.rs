//! Bounded read-through query cache with generation-counter
//! invalidation.
//!
//! Entries are keyed by a *normalized* query string the caller builds
//! (collection, limit, projection, and the sanitized filter re-serialized
//! with sorted keys — see `QueryEngine::cache_key`), so syntactically
//! different but semantically identical queries share one slot. Each
//! entry records the owning collection's **generation** — a counter the
//! collection bumps on every write. A probe whose expected generation no
//! longer matches the stored one drops the entry and reports a miss:
//! writers never touch the cache, yet a hit can never serve data from
//! before the last write. Eviction is FIFO by insertion order, which is
//! enough for the bounded-memory guarantee without an access-order list
//! on the (hot) probe path.

use mp_sync::{LockRank, OrderedMutex};
use std::collections::{BTreeMap, VecDeque};

/// Counter snapshot for the profiler / REST diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned a value at the expected generation.
    pub hits: u64,
    /// Probes that found nothing cached.
    pub misses: u64,
    /// Probes that found a stale entry (generation moved) and dropped it.
    pub invalidations: u64,
    /// Entries dropped to keep the cache within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

struct Entry<V> {
    generation: u64,
    value: V,
}

struct CacheState<V> {
    map: BTreeMap<String, Entry<V>>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

/// Bounded map from normalized query key to cached result.
pub struct QueryCache<V> {
    state: OrderedMutex<CacheState<V>>,
    capacity: usize,
}

impl<V: Clone> QueryCache<V> {
    /// Cache holding at most `capacity` entries (clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            state: OrderedMutex::new(
                LockRank::QueryCache,
                CacheState {
                    map: BTreeMap::new(),
                    order: VecDeque::new(),
                    hits: 0,
                    misses: 0,
                    invalidations: 0,
                    evictions: 0,
                },
            ),
            capacity: capacity.max(1),
        }
    }

    /// Probe for `key` at `generation`. A stored entry from an older
    /// generation is removed (counted as an invalidation) and reported
    /// as a miss.
    pub fn get(&self, key: &str, generation: u64) -> Option<V> {
        enum Probe<V> {
            Hit(V),
            Stale,
            Empty,
        }
        let mut st = self.state.lock();
        let probe = match st.map.get(key) {
            Some(e) if e.generation == generation => Probe::Hit(e.value.clone()),
            Some(_) => Probe::Stale,
            None => Probe::Empty,
        };
        match probe {
            Probe::Hit(v) => {
                st.hits += 1;
                Some(v)
            }
            Probe::Stale => {
                st.map.remove(key);
                st.order.retain(|k| k != key);
                st.invalidations += 1;
                st.misses += 1;
                None
            }
            Probe::Empty => {
                st.misses += 1;
                None
            }
        }
    }

    /// Store `value` for `key` as of `generation`, evicting the oldest
    /// entries if the cache is over capacity.
    pub fn put(&self, key: String, generation: u64, value: V) {
        let mut st = self.state.lock();
        if st
            .map
            .insert(key.clone(), Entry { generation, value })
            .is_none()
        {
            st.order.push_back(key);
        }
        while st.map.len() > self.capacity {
            let Some(oldest) = st.order.pop_front() else {
                break;
            };
            if st.map.remove(&oldest).is_some() {
                st.evictions += 1;
            }
        }
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.order.clear();
    }

    /// Snapshot of the usage counters.
    pub fn stats(&self) -> CacheStats {
        let st = self.state.lock();
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            invalidations: st.invalidations,
            evictions: st.evictions,
            len: st.map.len(),
        }
    }
}

impl<V> std::fmt::Debug for QueryCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_at_same_generation() {
        let cache = QueryCache::new(8);
        assert_eq!(cache.get("k", 3), None);
        cache.put("k".into(), 3, vec![1u32, 2, 3]);
        assert_eq!(cache.get("k", 3), Some(vec![1, 2, 3]));
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.len), (1, 1, 1));
    }

    #[test]
    fn generation_bump_invalidates() {
        let cache = QueryCache::new(8);
        cache.put("k".into(), 1, "old".to_string());
        // A write moved the collection to generation 2: the stale entry
        // must not be served and must be dropped.
        assert_eq!(cache.get("k", 2), None);
        let st = cache.stats();
        assert_eq!(st.invalidations, 1);
        assert_eq!(st.len, 0);
        // Re-populated at the new generation it serves again.
        cache.put("k".into(), 2, "new".to_string());
        assert_eq!(cache.get("k", 2), Some("new".to_string()));
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = QueryCache::new(2);
        cache.put("a".into(), 0, 1u8);
        cache.put("b".into(), 0, 2u8);
        cache.put("c".into(), 0, 3u8);
        let st = cache.stats();
        assert_eq!(st.len, 2);
        assert_eq!(st.evictions, 1);
        assert_eq!(cache.get("a", 0), None, "oldest entry evicted");
        assert_eq!(cache.get("b", 0), Some(2));
        assert_eq!(cache.get("c", 0), Some(3));
    }

    #[test]
    fn overwrite_does_not_duplicate_order_slots() {
        let cache = QueryCache::new(2);
        cache.put("a".into(), 0, 1u8);
        cache.put("a".into(), 1, 2u8);
        cache.put("b".into(), 0, 3u8);
        let st = cache.stats();
        assert_eq!(st.len, 2);
        assert_eq!(st.evictions, 0);
        assert_eq!(cache.get("a", 1), Some(2));
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = QueryCache::new(4);
        cache.put("a".into(), 0, 1u8);
        assert_eq!(cache.get("a", 0), Some(1));
        cache.clear();
        assert_eq!(cache.get("a", 0), None);
        let st = cache.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.len, 0);
    }
}
