//! Query language: a faithful subset of MongoDB's find() filter documents.
//!
//! Filters are parsed from JSON into a [`Filter`] AST once, then matched
//! against candidate documents. The paper's job-selection example —
//! `{elements: {$all: ['Li','O']}, nelectrons: {$lte: 200}}` — runs
//! through exactly this code path.

use crate::error::{Result, StoreError};
use crate::value::{
    any_at_path, cmp_values, compile_path, get_path, get_path_multi, get_path_segs, type_name,
    values_equal, PathSeg,
};
use serde_json::Value;
use std::cmp::Ordering;

/// A single comparison applied to one field path.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Equality; if the stored value is an array, matches when any element
    /// equals the operand (MongoDB array-containment semantics).
    Eq(Value),
    Ne(Value),
    Gt(Value),
    Gte(Value),
    Lt(Value),
    Lte(Value),
    /// Value (or any array element) is one of the operands.
    In(Vec<Value>),
    /// Negation of `In`.
    Nin(Vec<Value>),
    /// Array field contains every operand.
    All(Vec<Value>),
    /// Array field has exactly this length.
    Size(usize),
    /// Field exists (true) or does not (false).
    Exists(bool),
    /// Field has the named BSON-ish type ("int", "double", "string", ...).
    Type(String),
    /// String field contains this substring (safe subset of `$regex`).
    Contains(String),
    /// String field starts with this prefix (anchored `$regex`).
    StartsWith(String),
    /// `field % divisor == remainder`.
    Mod(i64, i64),
    /// At least one array element matches the sub-filter.
    ElemMatch(Box<Filter>),
    /// Negation of a predicate set on the same field.
    Not(Vec<Predicate>),
}

/// A parsed filter document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    /// Conjunction of per-field predicate lists (path, predicates).
    pub fields: Vec<(String, Vec<Predicate>)>,
    /// `$and` clauses.
    pub and: Vec<Filter>,
    /// `$or` clauses (at least one must match).
    pub or: Vec<Filter>,
    /// `$nor` clauses (none may match).
    pub nor: Vec<Filter>,
}

impl Filter {
    /// The empty filter, matching every document.
    pub fn empty() -> Self {
        Filter::default()
    }

    /// True when this filter matches everything.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.and.is_empty() && self.or.is_empty() && self.nor.is_empty()
    }

    /// Parse a JSON filter document.
    pub fn parse(q: &Value) -> Result<Filter> {
        let obj = q.as_object().ok_or_else(|| {
            StoreError::BadQuery(format!("filter must be object, got {}", type_name(q)))
        })?;
        let mut f = Filter::default();
        for (k, v) in obj {
            match k.as_str() {
                "$and" => f.and.extend(parse_clause_list(k, v)?),
                "$or" => f.or.extend(parse_clause_list(k, v)?),
                "$nor" => f.nor.extend(parse_clause_list(k, v)?),
                _ if k.starts_with('$') => {
                    return Err(StoreError::BadQuery(format!(
                        "unknown top-level operator {k}"
                    )))
                }
                path => {
                    let preds = parse_predicates(v)?;
                    f.fields.push((path.to_string(), preds));
                }
            }
        }
        Ok(f)
    }

    /// Does `doc` satisfy this filter?
    pub fn matches(&self, doc: &Value) -> bool {
        for (path, preds) in &self.fields {
            if !preds.iter().all(|p| match_predicate(doc, path, p)) {
                return false;
            }
        }
        if !self.and.iter().all(|c| c.matches(doc)) {
            return false;
        }
        if !self.or.is_empty() && !self.or.iter().any(|c| c.matches(doc)) {
            return false;
        }
        if self.nor.iter().any(|c| c.matches(doc)) {
            return false;
        }
        true
    }

    /// If this filter constrains `path` to a single equality value, return
    /// it (used for index selection).
    pub fn equality_on(&self, path: &str) -> Option<&Value> {
        for (p, preds) in &self.fields {
            if p == path {
                for pred in preds {
                    if let Predicate::Eq(v) = pred {
                        return Some(v);
                    }
                }
            }
        }
        None
    }

    /// If this filter constrains `path` with a root-level `$in`, return
    /// the candidate value list (for index-assisted `$in` probes).
    pub fn in_on(&self, path: &str) -> Option<&[Value]> {
        for (p, preds) in &self.fields {
            if p == path {
                for pred in preds {
                    if let Predicate::In(vs) = pred {
                        return Some(vs);
                    }
                }
            }
        }
        None
    }

    /// If this filter constrains `path` with a range, return
    /// (lower, lower_inclusive, upper, upper_inclusive).
    #[allow(clippy::type_complexity)]
    pub fn range_on(&self, path: &str) -> Option<(Option<&Value>, bool, Option<&Value>, bool)> {
        let mut lo: Option<(&Value, bool)> = None;
        let mut hi: Option<(&Value, bool)> = None;
        for (p, preds) in &self.fields {
            if p != path {
                continue;
            }
            for pred in preds {
                match pred {
                    Predicate::Gt(v) => lo = Some((v, false)),
                    Predicate::Gte(v) => lo = Some((v, true)),
                    Predicate::Lt(v) => hi = Some((v, false)),
                    Predicate::Lte(v) => hi = Some((v, true)),
                    _ => {}
                }
            }
        }
        if lo.is_none() && hi.is_none() {
            return None;
        }
        Some((
            lo.map(|(v, _)| v),
            lo.map(|(_, i)| i).unwrap_or(true),
            hi.map(|(v, _)| v),
            hi.map(|(_, i)| i).unwrap_or(true),
        ))
    }

    /// All field paths this filter touches (for planning/diagnostics).
    pub fn touched_paths(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.fields.iter().map(|(p, _)| p.as_str()).collect();
        for sub in self.and.iter().chain(self.or.iter()).chain(self.nor.iter()) {
            out.extend(sub.touched_paths());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Compile the filter for the zero-allocation match path: every dotted
    /// path is pre-split into segments and every `$in`/`$nin` operand list
    /// is pre-sorted for binary-search probes. `matches` on the compiled
    /// form allocates nothing per document. Parse once, compile once,
    /// share across shards and scan chunks.
    pub fn compile(&self) -> CompiledFilter {
        CompiledFilter {
            fields: self
                .fields
                .iter()
                .map(|(path, preds)| {
                    (
                        CompiledPath {
                            raw: path.clone(),
                            segs: compile_path(path),
                        },
                        preds.iter().map(CompiledPredicate::from).collect(),
                    )
                })
                .collect(),
            and: self.and.iter().map(Filter::compile).collect(),
            or: self.or.iter().map(Filter::compile).collect(),
            nor: self.nor.iter().map(Filter::compile).collect(),
        }
    }
}

/// A dotted path pre-split into segments, keeping the raw text for the
/// planner (index paths are matched by their dotted spelling).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPath {
    raw: String,
    segs: Vec<PathSeg>,
}

/// [`Predicate`] with per-document work hoisted to compile time: `$in`
/// and `$nin` carry a second operand list sorted under [`cmp_values`] so
/// membership is a binary search instead of a linear scan. The original
/// operand order is retained for the planner, whose index estimates (and
/// therefore `explain` output) must not change under compilation.
#[derive(Debug, Clone, PartialEq)]
enum CompiledPredicate {
    Eq(Value),
    Ne(Value),
    Gt(Value),
    Gte(Value),
    Lt(Value),
    Lte(Value),
    In { raw: Vec<Value>, sorted: Vec<Value> },
    Nin(Vec<Value>),
    All(Vec<Value>),
    Size(usize),
    Exists(bool),
    Type(String),
    Contains(String),
    StartsWith(String),
    Mod(i64, i64),
    ElemMatch(Box<CompiledFilter>),
    Not(Vec<CompiledPredicate>),
}

impl From<&Predicate> for CompiledPredicate {
    fn from(p: &Predicate) -> Self {
        match p {
            Predicate::Eq(v) => CompiledPredicate::Eq(v.clone()),
            Predicate::Ne(v) => CompiledPredicate::Ne(v.clone()),
            Predicate::Gt(v) => CompiledPredicate::Gt(v.clone()),
            Predicate::Gte(v) => CompiledPredicate::Gte(v.clone()),
            Predicate::Lt(v) => CompiledPredicate::Lt(v.clone()),
            Predicate::Lte(v) => CompiledPredicate::Lte(v.clone()),
            Predicate::In(vs) => CompiledPredicate::In {
                raw: vs.clone(),
                sorted: sort_operands(vs),
            },
            Predicate::Nin(vs) => CompiledPredicate::Nin(sort_operands(vs)),
            Predicate::All(vs) => CompiledPredicate::All(vs.clone()),
            Predicate::Size(n) => CompiledPredicate::Size(*n),
            Predicate::Exists(b) => CompiledPredicate::Exists(*b),
            Predicate::Type(t) => CompiledPredicate::Type(t.clone()),
            Predicate::Contains(s) => CompiledPredicate::Contains(s.clone()),
            Predicate::StartsWith(s) => CompiledPredicate::StartsWith(s.clone()),
            Predicate::Mod(d, r) => CompiledPredicate::Mod(*d, *r),
            Predicate::ElemMatch(f) => CompiledPredicate::ElemMatch(Box::new(f.compile())),
            Predicate::Not(ps) => CompiledPredicate::Not(ps.iter().map(Self::from).collect()),
        }
    }
}

fn sort_operands(vs: &[Value]) -> Vec<Value> {
    let mut out = vs.to_vec();
    out.sort_by(cmp_values);
    out
}

/// Sorted-set membership with MongoDB equality semantics: true when the
/// stored value equals any operand, or (stored array, scalar operand) any
/// element does. Equivalent to `set.iter().any(|s| eq_or_contains(v, s))`
/// — `cmp_values == Equal` implies equal type ranks, so a binary-search
/// hit is exactly a `values_equal` hit, and an array element can only
/// ever equal a non-array operand when the element itself is non-array.
fn in_sorted(sorted: &[Value], stored: &Value) -> bool {
    let found = |v: &Value| {
        sorted
            .binary_search_by(|probe| cmp_values(probe, v))
            .is_ok()
    };
    if found(stored) {
        return true;
    }
    if let Value::Array(a) = stored {
        return a.iter().any(|e| !e.is_array() && found(e));
    }
    false
}

/// A [`Filter`] compiled for repeated matching: the product of
/// [`Filter::compile`]. `matches` performs zero heap allocation per
/// document — paths are pre-split, numeric segments pre-parsed, and
/// `$in`/`$nin` membership is a binary search over pre-sorted operands.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledFilter {
    fields: Vec<(CompiledPath, Vec<CompiledPredicate>)>,
    and: Vec<CompiledFilter>,
    or: Vec<CompiledFilter>,
    nor: Vec<CompiledFilter>,
}

impl CompiledFilter {
    /// True when this filter matches everything.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.and.is_empty() && self.or.is_empty() && self.nor.is_empty()
    }

    /// Does `doc` satisfy this filter? Decision-equivalent to
    /// [`Filter::matches`] on the source filter (property-tested), with
    /// no per-document allocation.
    pub fn matches(&self, doc: &Value) -> bool {
        for (path, preds) in &self.fields {
            if !preds.iter().all(|p| match_compiled(doc, path, p)) {
                return false;
            }
        }
        if !self.and.iter().all(|c| c.matches(doc)) {
            return false;
        }
        if !self.or.is_empty() && !self.or.iter().any(|c| c.matches(doc)) {
            return false;
        }
        if self.nor.iter().any(|c| c.matches(doc)) {
            return false;
        }
        true
    }

    /// Compiled twin of [`Filter::equality_on`] (same contract), so the
    /// planner runs on the compiled form without re-parsing.
    pub fn equality_on(&self, path: &str) -> Option<&Value> {
        for (p, preds) in &self.fields {
            if p.raw == path {
                for pred in preds {
                    if let CompiledPredicate::Eq(v) = pred {
                        return Some(v);
                    }
                }
            }
        }
        None
    }

    /// Compiled twin of [`Filter::in_on`]: returns the operands in their
    /// *original* order so index estimates match the uncompiled planner.
    pub fn in_on(&self, path: &str) -> Option<&[Value]> {
        for (p, preds) in &self.fields {
            if p.raw == path {
                for pred in preds {
                    if let CompiledPredicate::In { raw, .. } = pred {
                        return Some(raw);
                    }
                }
            }
        }
        None
    }

    /// Compiled twin of [`Filter::range_on`] (same contract).
    #[allow(clippy::type_complexity)]
    pub fn range_on(&self, path: &str) -> Option<(Option<&Value>, bool, Option<&Value>, bool)> {
        let mut lo: Option<(&Value, bool)> = None;
        let mut hi: Option<(&Value, bool)> = None;
        for (p, preds) in &self.fields {
            if p.raw != path {
                continue;
            }
            for pred in preds {
                match pred {
                    CompiledPredicate::Gt(v) => lo = Some((v, false)),
                    CompiledPredicate::Gte(v) => lo = Some((v, true)),
                    CompiledPredicate::Lt(v) => hi = Some((v, false)),
                    CompiledPredicate::Lte(v) => hi = Some((v, true)),
                    _ => {}
                }
            }
        }
        if lo.is_none() && hi.is_none() {
            return None;
        }
        Some((
            lo.map(|(v, _)| v),
            lo.map(|(_, i)| i).unwrap_or(true),
            hi.map(|(v, _)| v),
            hi.map(|(_, i)| i).unwrap_or(true),
        ))
    }

    /// Compiled twin of [`Filter::touched_paths`] (same contract).
    pub fn touched_paths(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.fields.iter().map(|(p, _)| p.raw.as_str()).collect();
        for sub in self.and.iter().chain(self.or.iter()).chain(self.nor.iter()) {
            out.extend(sub.touched_paths());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Compiled twin of `match_predicate`: the reachable-value walk runs as a
/// borrowing visitor ([`any_at_path`]) instead of materializing a `Vec`
/// of references per document per predicate.
fn match_compiled(doc: &Value, path: &CompiledPath, pred: &CompiledPredicate) -> bool {
    let segs = &path.segs;
    match pred {
        CompiledPredicate::Exists(want) => {
            let exists =
                any_at_path(doc, segs, &mut |_| true) || get_path_segs(doc, segs).is_some();
            exists == *want
        }
        CompiledPredicate::Ne(operand) => {
            !any_at_path(doc, segs, &mut |v| eq_or_contains(v, operand))
        }
        CompiledPredicate::Nin(sorted) => !any_at_path(doc, segs, &mut |v| in_sorted(sorted, v)),
        CompiledPredicate::Not(preds) => !preds.iter().all(|p| match_compiled(doc, path, p)),
        _ => any_at_path(doc, segs, &mut |v| match_compiled_single(v, pred)),
    }
}

fn match_compiled_single(stored: &Value, pred: &CompiledPredicate) -> bool {
    match pred {
        CompiledPredicate::Eq(operand) => eq_or_contains(stored, operand),
        CompiledPredicate::Gt(o) => ord_match(stored, o, &[Ordering::Greater]),
        CompiledPredicate::Gte(o) => ord_match(stored, o, &[Ordering::Greater, Ordering::Equal]),
        CompiledPredicate::Lt(o) => ord_match(stored, o, &[Ordering::Less]),
        CompiledPredicate::Lte(o) => ord_match(stored, o, &[Ordering::Less, Ordering::Equal]),
        CompiledPredicate::In { sorted, .. } => in_sorted(sorted, stored),
        CompiledPredicate::All(set) => match stored {
            Value::Array(a) => set.iter().all(|s| a.iter().any(|e| values_equal(e, s))),
            single => matches!(&set[..], [only] if values_equal(single, only)),
        },
        CompiledPredicate::Size(n) => stored.as_array().map(|a| a.len() == *n).unwrap_or(false),
        CompiledPredicate::Type(t) => type_name(stored) == t,
        CompiledPredicate::Contains(s) => stored.as_str().map(|x| x.contains(s)).unwrap_or(false),
        CompiledPredicate::StartsWith(s) => {
            stored.as_str().map(|x| x.starts_with(s)).unwrap_or(false)
        }
        CompiledPredicate::Mod(d, r) => stored
            .as_i64()
            .map(|x| x.rem_euclid(*d) == (*r).rem_euclid(*d))
            .unwrap_or(false),
        CompiledPredicate::ElemMatch(cf) => stored
            .as_array()
            .map(|a| a.iter().any(|e| cf.matches(e)))
            .unwrap_or(false),
        // Handled in match_compiled:
        CompiledPredicate::Ne(_)
        | CompiledPredicate::Nin(_)
        | CompiledPredicate::Exists(_)
        | CompiledPredicate::Not(_) => false,
    }
}

fn parse_clause_list(op: &str, v: &Value) -> Result<Vec<Filter>> {
    let arr = v
        .as_array()
        .ok_or_else(|| StoreError::BadQuery(format!("{op} expects an array")))?;
    if arr.is_empty() {
        return Err(StoreError::BadQuery(format!("{op} must be non-empty")));
    }
    arr.iter().map(Filter::parse).collect()
}

/// Parse the right-hand side of a field constraint: either an operator
/// object (`{"$lte": 200}`) or a literal equality value.
fn parse_predicates(v: &Value) -> Result<Vec<Predicate>> {
    if let Some(obj) = v.as_object() {
        let has_ops = obj.keys().any(|k| k.starts_with('$'));
        if has_ops {
            if let Some(bad) = obj.keys().find(|k| !k.starts_with('$')) {
                return Err(StoreError::BadQuery(format!(
                    "cannot mix operator and literal key '{bad}'"
                )));
            }
            let mut preds = Vec::with_capacity(obj.len());
            for (op, operand) in obj {
                preds.push(parse_operator(op, operand)?);
            }
            return Ok(preds);
        }
    }
    Ok(vec![Predicate::Eq(v.clone())])
}

fn expect_array(op: &str, v: &Value) -> Result<Vec<Value>> {
    v.as_array()
        .cloned()
        .ok_or_else(|| StoreError::BadQuery(format!("{op} expects an array")))
}

fn parse_operator(op: &str, v: &Value) -> Result<Predicate> {
    Ok(match op {
        "$eq" => Predicate::Eq(v.clone()),
        "$ne" => Predicate::Ne(v.clone()),
        "$gt" => Predicate::Gt(v.clone()),
        "$gte" => Predicate::Gte(v.clone()),
        "$lt" => Predicate::Lt(v.clone()),
        "$lte" => Predicate::Lte(v.clone()),
        "$in" => Predicate::In(expect_array(op, v)?),
        "$nin" => Predicate::Nin(expect_array(op, v)?),
        "$all" => Predicate::All(expect_array(op, v)?),
        "$size" => {
            Predicate::Size(v.as_u64().ok_or_else(|| {
                StoreError::BadQuery("$size expects a non-negative integer".into())
            })? as usize)
        }
        "$exists" => Predicate::Exists(
            v.as_bool()
                .ok_or_else(|| StoreError::BadQuery("$exists expects a bool".into()))?,
        ),
        "$type" => Predicate::Type(
            v.as_str()
                .ok_or_else(|| StoreError::BadQuery("$type expects a type name string".into()))?
                .to_string(),
        ),
        "$contains" => Predicate::Contains(
            v.as_str()
                .ok_or_else(|| StoreError::BadQuery("$contains expects a string".into()))?
                .to_string(),
        ),
        "$regex" => {
            // Safe subset: '^literal' prefix anchors, otherwise substring.
            let s = v
                .as_str()
                .ok_or_else(|| StoreError::BadQuery("$regex expects a string".into()))?;
            if let Some(prefix) = s.strip_prefix('^') {
                Predicate::StartsWith(prefix.to_string())
            } else {
                Predicate::Contains(s.to_string())
            }
        }
        "$mod" => {
            let arr = expect_array(op, v)?;
            let [dv, rv] = &arr[..] else {
                return Err(StoreError::BadQuery(
                    "$mod expects [divisor, remainder]".into(),
                ));
            };
            let d = dv
                .as_i64()
                .ok_or_else(|| StoreError::BadQuery("$mod divisor must be integer".into()))?;
            if d == 0 {
                return Err(StoreError::BadQuery("$mod divisor must be nonzero".into()));
            }
            let r = rv
                .as_i64()
                .ok_or_else(|| StoreError::BadQuery("$mod remainder must be integer".into()))?;
            Predicate::Mod(d, r)
        }
        "$elemMatch" => Predicate::ElemMatch(Box::new(Filter::parse(v)?)),
        "$not" => Predicate::Not(parse_predicates(v)?),
        other => return Err(StoreError::BadQuery(format!("unknown operator {other}"))),
    })
}

/// Match one predicate against the values reachable at `path`.
///
/// MongoDB semantics: for most operators a document matches when *any*
/// value reachable at the path (including array elements) satisfies the
/// predicate. `$ne`/`$nin` require that *no* reachable value matches.
fn match_predicate(doc: &Value, path: &str, pred: &Predicate) -> bool {
    let vals = get_path_multi(doc, path);
    match pred {
        Predicate::Exists(want) => {
            let exists = !vals.is_empty() || get_path(doc, path).is_some();
            exists == *want
        }
        Predicate::Ne(operand) => !vals.iter().any(|v| eq_or_contains(v, operand)),
        Predicate::Nin(set) => !vals
            .iter()
            .any(|v| set.iter().any(|s| eq_or_contains(v, s))),
        Predicate::Not(preds) => !preds.iter().all(|p| match_predicate(doc, path, p)),
        _ => vals.iter().any(|v| match_single(v, pred)),
    }
}

/// Direct or array-containment equality.
fn eq_or_contains(stored: &Value, operand: &Value) -> bool {
    if values_equal(stored, operand) {
        return true;
    }
    if let Value::Array(a) = stored {
        if !operand.is_array() {
            return a.iter().any(|e| values_equal(e, operand));
        }
    }
    false
}

fn ord_match(stored: &Value, operand: &Value, want: &[Ordering]) -> bool {
    // Comparisons only apply within the same type class (numbers compare
    // with numbers, strings with strings), as MongoDB does.
    let same_class = crate::value::type_rank(stored) == crate::value::type_rank(operand);
    if !same_class {
        if let Value::Array(a) = stored {
            return a.iter().any(|e| ord_match(e, operand, want));
        }
        return false;
    }
    let c = cmp_values(stored, operand);
    if want.contains(&c) {
        return true;
    }
    if let Value::Array(a) = stored {
        if !operand.is_array() {
            return a.iter().any(|e| ord_match(e, operand, want));
        }
    }
    false
}

fn match_single(stored: &Value, pred: &Predicate) -> bool {
    match pred {
        Predicate::Eq(operand) => eq_or_contains(stored, operand),
        Predicate::Gt(o) => ord_match(stored, o, &[Ordering::Greater]),
        Predicate::Gte(o) => ord_match(stored, o, &[Ordering::Greater, Ordering::Equal]),
        Predicate::Lt(o) => ord_match(stored, o, &[Ordering::Less]),
        Predicate::Lte(o) => ord_match(stored, o, &[Ordering::Less, Ordering::Equal]),
        Predicate::In(set) => set.iter().any(|s| eq_or_contains(stored, s)),
        Predicate::All(set) => match stored {
            Value::Array(a) => set.iter().all(|s| a.iter().any(|e| values_equal(e, s))),
            single => matches!(&set[..], [only] if values_equal(single, only)),
        },
        Predicate::Size(n) => stored.as_array().map(|a| a.len() == *n).unwrap_or(false),
        Predicate::Type(t) => type_name(stored) == t,
        Predicate::Contains(s) => stored.as_str().map(|x| x.contains(s)).unwrap_or(false),
        Predicate::StartsWith(s) => stored.as_str().map(|x| x.starts_with(s)).unwrap_or(false),
        Predicate::Mod(d, r) => stored
            .as_i64()
            .map(|x| x.rem_euclid(*d) == (*r).rem_euclid(*d))
            .unwrap_or(false),
        Predicate::ElemMatch(f) => stored
            .as_array()
            .map(|a| a.iter().any(|e| f.matches(e)))
            .unwrap_or(false),
        // Handled in match_predicate:
        Predicate::Ne(_) | Predicate::Nin(_) | Predicate::Exists(_) | Predicate::Not(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn matches(q: Value, doc: Value) -> bool {
        Filter::parse(&q).unwrap().matches(&doc)
    }

    #[test]
    fn paper_job_selection_query() {
        // The exact query from §III-B2 of the paper.
        let q = json!({"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}});
        let hit = json!({"elements": ["Li", "Fe", "O"], "nelectrons": 120});
        let miss_el = json!({"elements": ["Na", "O"], "nelectrons": 120});
        let miss_ne = json!({"elements": ["Li", "O"], "nelectrons": 300});
        assert!(matches(q.clone(), hit));
        assert!(!matches(q.clone(), miss_el));
        assert!(!matches(q, miss_ne));
    }

    #[test]
    fn literal_equality() {
        assert!(matches(json!({"a": 1}), json!({"a": 1})));
        assert!(matches(json!({"a": 1}), json!({"a": 1.0})));
        assert!(!matches(json!({"a": 1}), json!({"a": 2})));
        assert!(!matches(json!({"a": 1}), json!({"b": 1})));
    }

    #[test]
    fn equality_matches_array_containment() {
        assert!(matches(json!({"tags": "x"}), json!({"tags": ["x", "y"]})));
        assert!(!matches(json!({"tags": "z"}), json!({"tags": ["x", "y"]})));
    }

    #[test]
    fn dotted_path_equality() {
        assert!(matches(json!({"a.b": 2}), json!({"a": {"b": 2}})));
        assert!(!matches(json!({"a.b": 2}), json!({"a": {"b": 3}})));
    }

    #[test]
    fn dotted_path_through_array_of_objects() {
        let doc = json!({"sites": [{"el": "Li"}, {"el": "O"}]});
        assert!(matches(json!({"sites.el": "Li"}), doc.clone()));
        assert!(!matches(json!({"sites.el": "Fe"}), doc));
    }

    #[test]
    fn range_operators() {
        let doc = json!({"x": 10});
        assert!(matches(json!({"x": {"$gt": 5}}), doc.clone()));
        assert!(matches(json!({"x": {"$gte": 10}}), doc.clone()));
        assert!(!matches(json!({"x": {"$gt": 10}}), doc.clone()));
        assert!(matches(json!({"x": {"$lt": 11}}), doc.clone()));
        assert!(matches(json!({"x": {"$gt": 5, "$lt": 15}}), doc.clone()));
        assert!(!matches(json!({"x": {"$gt": 5, "$lt": 9}}), doc));
    }

    #[test]
    fn range_ignores_cross_type() {
        // Numbers don't compare with strings.
        assert!(!matches(json!({"x": {"$gt": 5}}), json!({"x": "abc"})));
        assert!(!matches(json!({"x": {"$lt": "zzz"}}), json!({"x": 3})));
    }

    #[test]
    fn in_nin() {
        let doc = json!({"state": "RUNNING"});
        assert!(matches(
            json!({"state": {"$in": ["READY", "RUNNING"]}}),
            doc.clone()
        ));
        assert!(!matches(
            json!({"state": {"$nin": ["READY", "RUNNING"]}}),
            doc.clone()
        ));
        assert!(matches(json!({"state": {"$nin": ["DONE"]}}), doc));
    }

    #[test]
    fn ne_on_arrays_requires_no_element_match() {
        assert!(!matches(
            json!({"tags": {"$ne": "x"}}),
            json!({"tags": ["x", "y"]})
        ));
        assert!(matches(
            json!({"tags": {"$ne": "z"}}),
            json!({"tags": ["x", "y"]})
        ));
    }

    #[test]
    fn ne_missing_field_matches() {
        assert!(matches(json!({"a": {"$ne": 1}}), json!({"b": 2})));
    }

    #[test]
    fn exists() {
        assert!(matches(json!({"a": {"$exists": true}}), json!({"a": null})));
        assert!(matches(json!({"a": {"$exists": false}}), json!({"b": 1})));
        assert!(!matches(json!({"a": {"$exists": true}}), json!({"b": 1})));
    }

    #[test]
    fn size_and_type() {
        assert!(matches(json!({"xs": {"$size": 2}}), json!({"xs": [1, 2]})));
        assert!(!matches(json!({"xs": {"$size": 3}}), json!({"xs": [1, 2]})));
        assert!(matches(
            json!({"a": {"$type": "string"}}),
            json!({"a": "s"})
        ));
        assert!(matches(json!({"a": {"$type": "int"}}), json!({"a": 3})));
        assert!(matches(
            json!({"a": {"$type": "double"}}),
            json!({"a": 3.5})
        ));
    }

    #[test]
    fn regex_subset() {
        assert!(matches(
            json!({"f": {"$regex": "^Li"}}),
            json!({"f": "LiFePO4"})
        ));
        assert!(!matches(
            json!({"f": {"$regex": "^Fe"}}),
            json!({"f": "LiFePO4"})
        ));
        assert!(matches(
            json!({"f": {"$regex": "PO4"}}),
            json!({"f": "LiFePO4"})
        ));
    }

    #[test]
    fn mod_op() {
        assert!(matches(json!({"n": {"$mod": [4, 0]}}), json!({"n": 8})));
        assert!(!matches(json!({"n": {"$mod": [4, 1]}}), json!({"n": 8})));
    }

    #[test]
    fn elem_match() {
        let doc = json!({"runs": [{"code": "vasp", "ok": true}, {"code": "other", "ok": false}]});
        assert!(matches(
            json!({"runs": {"$elemMatch": {"code": "vasp", "ok": true}}}),
            doc.clone()
        ));
        assert!(!matches(
            json!({"runs": {"$elemMatch": {"code": "other", "ok": true}}}),
            doc
        ));
    }

    #[test]
    fn not_negates() {
        assert!(matches(json!({"x": {"$not": {"$gt": 5}}}), json!({"x": 3})));
        assert!(!matches(
            json!({"x": {"$not": {"$gt": 5}}}),
            json!({"x": 7})
        ));
        // $not on a missing field matches (nothing satisfied the inner pred).
        assert!(matches(json!({"x": {"$not": {"$gt": 5}}}), json!({"y": 7})));
    }

    #[test]
    fn logical_and_or_nor() {
        let doc = json!({"a": 1, "b": 2});
        assert!(matches(json!({"$and": [{"a": 1}, {"b": 2}]}), doc.clone()));
        assert!(!matches(json!({"$and": [{"a": 1}, {"b": 3}]}), doc.clone()));
        assert!(matches(json!({"$or": [{"a": 9}, {"b": 2}]}), doc.clone()));
        assert!(!matches(json!({"$or": [{"a": 9}, {"b": 9}]}), doc.clone()));
        assert!(matches(json!({"$nor": [{"a": 9}, {"b": 9}]}), doc.clone()));
        assert!(!matches(json!({"$nor": [{"a": 1}]}), doc));
    }

    #[test]
    fn unknown_operator_rejected() {
        assert!(Filter::parse(&json!({"a": {"$where": "evil()"}})).is_err());
        assert!(Filter::parse(&json!({"$foo": []})).is_err());
    }

    #[test]
    fn mixed_operator_literal_rejected() {
        assert!(Filter::parse(&json!({"a": {"$gt": 1, "b": 2}})).is_err());
    }

    #[test]
    fn equality_and_range_extraction() {
        let f = Filter::parse(&json!({"a": 1, "b": {"$gte": 2, "$lt": 9}})).unwrap();
        assert_eq!(f.equality_on("a"), Some(&json!(1)));
        assert!(f.equality_on("b").is_none());
        let (lo, loi, hi, hii) = f.range_on("b").unwrap();
        assert_eq!(lo, Some(&json!(2)));
        assert!(loi);
        assert_eq!(hi, Some(&json!(9)));
        assert!(!hii);
    }

    #[test]
    fn empty_logical_clause_lists_rejected() {
        for op in ["$and", "$or", "$nor"] {
            let err = Filter::parse(&json!({ op: [] }));
            assert!(err.is_err(), "{op}: empty clause list must not parse");
            // Non-array operands are rejected too.
            assert!(
                Filter::parse(&json!({ op: {"a": 1} })).is_err(),
                "{op}: non-array"
            );
        }
    }

    #[test]
    fn nested_not_parses_and_double_negates() {
        // $not containing $not: inner pred fails → inner $not matches →
        // outer $not must NOT match.
        let q = json!({"x": {"$not": {"$not": {"$gt": 5}}}});
        assert!(matches(q.clone(), json!({"x": 7})));
        assert!(!matches(q, json!({"x": 3})));
        // $not wrapping several predicates negates their conjunction.
        let q = json!({"x": {"$not": {"$gte": 2, "$lte": 8}}});
        assert!(matches(q.clone(), json!({"x": 9})));
        assert!(!matches(q, json!({"x": 5})));
    }

    #[test]
    fn mixed_type_equality_never_matches() {
        // Equality across type groups is simply false, not an error.
        assert!(!matches(json!({"x": "5"}), json!({"x": 5})));
        assert!(!matches(json!({"x": 5}), json!({"x": "5"})));
        assert!(!matches(json!({"x": true}), json!({"x": 1})));
        assert!(!matches(json!({"x": null}), json!({"x": 0})));
        // But int/double cross-representation equality holds.
        assert!(matches(json!({"x": 5}), json!({"x": 5.0})));
    }

    #[test]
    fn empty_in_parses_but_matches_nothing() {
        // The store accepts `$in: []` (mp-lint flags it as Q002); it must
        // behave as always-false, never panic.
        let q = json!({"x": {"$in": []}});
        assert!(!matches(q.clone(), json!({"x": 1})));
        assert!(!matches(q, json!({"y": 1})));
        // `$nin: []` is vacuously true.
        assert!(matches(json!({"x": {"$nin": []}}), json!({"x": 1})));
    }

    #[test]
    fn empty_filter_matches_all() {
        assert!(matches(json!({}), json!({"anything": 1})));
    }

    #[test]
    fn touched_paths_lists_fields() {
        let f = Filter::parse(&json!({"a": 1, "$or": [{"b": 2}, {"c.d": 3}]})).unwrap();
        assert_eq!(f.touched_paths(), vec!["a", "b", "c.d"]);
    }
}
