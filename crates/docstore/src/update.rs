//! Update documents: MongoDB's atomic update operators.
//!
//! The paper's FireWorks `Fuse` objects express parameter overrides "as a
//! Python dict that is similar to Mongo atomic update syntax (e.g. $set,
//! $unset, etc.)" — this module is that syntax.

use crate::error::{Result, StoreError};
use crate::value::{cmp_values, get_path, remove_path, set_path, values_equal};
use serde_json::{Map, Number, Value};
use std::cmp::Ordering;

/// A parsed update: either operator-based mutations or full replacement.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Replace the whole document (preserving `_id`).
    Replace(Value),
    /// Apply a list of operator mutations in order.
    Operators(Vec<UpdateOp>),
}

/// One update operator applied to one path.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    Set(String, Value),
    Unset(String),
    Inc(String, f64),
    Mul(String, f64),
    Min(String, Value),
    Max(String, Value),
    Rename(String, String),
    /// Push one value or, with `$each`, several.
    Push(String, Vec<Value>),
    /// Remove all elements equal to the operand.
    Pull(String, Value),
    /// Remove first (-1) or last (1) element.
    Pop(String, i8),
    /// Push only if not already present.
    AddToSet(String, Vec<Value>),
    /// Set to the simulated current timestamp (seconds).
    CurrentDate(String),
    /// Set only when the update inserts a new document (upsert).
    SetOnInsert(String, Value),
}

impl Update {
    /// Parse a JSON update document. Documents whose keys all start with
    /// `$` are operator updates; any other object is a full replacement.
    pub fn parse(u: &Value) -> Result<Update> {
        let obj = u
            .as_object()
            .ok_or_else(|| StoreError::BadUpdate("update must be an object".into()))?;
        let any_op = obj.keys().any(|k| k.starts_with('$'));
        if !any_op {
            return Ok(Update::Replace(u.clone()));
        }
        if obj.keys().any(|k| !k.starts_with('$')) {
            return Err(StoreError::BadUpdate(
                "cannot mix operators and literal fields".into(),
            ));
        }
        let mut ops = Vec::new();
        for (op, spec) in obj {
            let fields = spec.as_object().ok_or_else(|| {
                StoreError::BadUpdate(format!("{op} expects an object of field: operand"))
            })?;
            for (path, operand) in fields {
                ops.push(parse_op(op, path, operand)?);
            }
        }
        Ok(Update::Operators(ops))
    }

    /// Apply this update to `doc` in place. `now` supplies the simulated
    /// timestamp for `$currentDate`; `inserting` enables `$setOnInsert`.
    pub fn apply(&self, doc: &mut Value, now: f64, inserting: bool) -> Result<()> {
        match self {
            Update::Replace(new_doc) => {
                let id = doc.get("_id").cloned();
                *doc = new_doc.clone();
                if let (Some(id), Some(obj)) = (id, doc.as_object_mut()) {
                    obj.insert("_id".into(), id);
                }
                Ok(())
            }
            Update::Operators(ops) => {
                for op in ops {
                    apply_op(doc, op, now, inserting)?;
                }
                Ok(())
            }
        }
    }
}

fn num_of(path: &str, v: &Value) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| StoreError::BadUpdate(format!("operand for '{path}' must be numeric")))
}

fn parse_op(op: &str, path: &str, operand: &Value) -> Result<UpdateOp> {
    if path.is_empty() || path.starts_with('$') {
        return Err(StoreError::BadUpdate(format!(
            "invalid target path '{path}'"
        )));
    }
    Ok(match op {
        "$set" => UpdateOp::Set(path.into(), operand.clone()),
        "$unset" => UpdateOp::Unset(path.into()),
        "$inc" => UpdateOp::Inc(path.into(), num_of(path, operand)?),
        "$mul" => UpdateOp::Mul(path.into(), num_of(path, operand)?),
        "$min" => UpdateOp::Min(path.into(), operand.clone()),
        "$max" => UpdateOp::Max(path.into(), operand.clone()),
        "$rename" => UpdateOp::Rename(
            path.into(),
            operand
                .as_str()
                .ok_or_else(|| StoreError::BadUpdate("$rename target must be a string".into()))?
                .to_string(),
        ),
        "$push" => {
            if let Some(each) = operand.get("$each") {
                let items = each
                    .as_array()
                    .ok_or_else(|| StoreError::BadUpdate("$each expects an array".into()))?;
                UpdateOp::Push(path.into(), items.clone())
            } else {
                UpdateOp::Push(path.into(), vec![operand.clone()])
            }
        }
        "$pull" => UpdateOp::Pull(path.into(), operand.clone()),
        "$pop" => {
            let n = operand
                .as_i64()
                .ok_or_else(|| StoreError::BadUpdate("$pop expects 1 or -1".into()))?;
            if n != 1 && n != -1 {
                return Err(StoreError::BadUpdate("$pop expects 1 or -1".into()));
            }
            UpdateOp::Pop(path.into(), n as i8)
        }
        "$addToSet" => {
            if let Some(each) = operand.get("$each") {
                let items = each
                    .as_array()
                    .ok_or_else(|| StoreError::BadUpdate("$each expects an array".into()))?;
                UpdateOp::AddToSet(path.into(), items.clone())
            } else {
                UpdateOp::AddToSet(path.into(), vec![operand.clone()])
            }
        }
        "$currentDate" => UpdateOp::CurrentDate(path.into()),
        "$setOnInsert" => UpdateOp::SetOnInsert(path.into(), operand.clone()),
        other => {
            return Err(StoreError::BadUpdate(format!(
                "unknown update operator {other}"
            )))
        }
    })
}

fn json_num(x: f64) -> Value {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        Value::Number(Number::from(x as i64))
    } else {
        Number::from_f64(x)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

fn apply_op(doc: &mut Value, op: &UpdateOp, now: f64, inserting: bool) -> Result<()> {
    let set = |doc: &mut Value, path: &str, v: Value| {
        set_path(doc, path, v).map_err(StoreError::BadUpdate)
    };
    match op {
        UpdateOp::Set(path, v) => set(doc, path, v.clone())?,
        UpdateOp::Unset(path) => {
            remove_path(doc, path);
        }
        UpdateOp::Inc(path, d) => {
            let cur = get_path(doc, path).and_then(Value::as_f64).unwrap_or(0.0);
            set(doc, path, json_num(cur + d))?;
        }
        UpdateOp::Mul(path, m) => {
            let cur = get_path(doc, path).and_then(Value::as_f64).unwrap_or(0.0);
            set(doc, path, json_num(cur * m))?;
        }
        UpdateOp::Min(path, v) => match get_path(doc, path) {
            Some(cur) if cmp_values(cur, v) != Ordering::Greater => {}
            _ => set(doc, path, v.clone())?,
        },
        UpdateOp::Max(path, v) => match get_path(doc, path) {
            Some(cur) if cmp_values(cur, v) != Ordering::Less => {}
            _ => set(doc, path, v.clone())?,
        },
        UpdateOp::Rename(from, to) => {
            if let Some(v) = remove_path(doc, from) {
                set(doc, to, v)?;
            }
        }
        UpdateOp::Push(path, items) => {
            let arr = ensure_array(doc, path)?;
            arr.extend(items.iter().cloned());
        }
        UpdateOp::Pull(path, operand) => {
            if let Some(Value::Array(arr)) = get_path_mut(doc, path) {
                arr.retain(|e| !values_equal(e, operand));
            }
        }
        UpdateOp::Pop(path, dir) => {
            if let Some(Value::Array(arr)) = get_path_mut(doc, path) {
                if !arr.is_empty() {
                    if *dir == 1 {
                        arr.pop();
                    } else {
                        arr.remove(0);
                    }
                }
            }
        }
        UpdateOp::AddToSet(path, items) => {
            let arr = ensure_array(doc, path)?;
            for item in items {
                if !arr.iter().any(|e| values_equal(e, item)) {
                    arr.push(item.clone());
                }
            }
        }
        UpdateOp::CurrentDate(path) => set(doc, path, json_num(now))?,
        UpdateOp::SetOnInsert(path, v) => {
            if inserting {
                set(doc, path, v.clone())?;
            }
        }
    }
    Ok(())
}

/// Mutable access at a dotted path (objects + numeric array segments).
fn get_path_mut<'a>(doc: &'a mut Value, path: &str) -> Option<&'a mut Value> {
    let mut cur = doc;
    for seg in crate::value::path_segments(path) {
        match cur {
            Value::Object(m) => cur = m.get_mut(seg)?,
            Value::Array(a) => {
                let idx: usize = seg.parse().ok()?;
                cur = a.get_mut(idx)?;
            }
            _ => return None,
        }
    }
    Some(cur)
}

/// Resolve `path` to a mutable array, creating an empty one (or failing on
/// a non-array) as MongoDB does for `$push` on a missing field.
fn ensure_array<'a>(doc: &'a mut Value, path: &str) -> Result<&'a mut Vec<Value>> {
    let missing = get_path(doc, path).is_none();
    if missing {
        set_path(doc, path, Value::Array(vec![])).map_err(StoreError::BadUpdate)?;
    }
    match get_path_mut(doc, path) {
        Some(Value::Array(a)) => Ok(a),
        Some(other) => Err(StoreError::BadUpdate(format!(
            "field '{path}' is {} not an array",
            crate::value::type_name(other)
        ))),
        None => Err(StoreError::BadUpdate(format!(
            "could not create array at '{path}'"
        ))),
    }
}

/// Build a `$set` update document from pairs — convenience for callers.
pub fn set_doc(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert((*k).to_string(), v.clone());
    }
    let mut outer = Map::new();
    outer.insert("$set".into(), Value::Object(m));
    Value::Object(outer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn apply(u: Value, mut doc: Value) -> Value {
        Update::parse(&u)
            .unwrap()
            .apply(&mut doc, 1000.0, false)
            .unwrap();
        doc
    }

    #[test]
    fn set_and_nested_set() {
        assert_eq!(
            apply(json!({"$set": {"a": 2}}), json!({"a": 1})),
            json!({"a": 2})
        );
        assert_eq!(
            apply(json!({"$set": {"spec.walltime": 3600}}), json!({})),
            json!({"spec": {"walltime": 3600}})
        );
    }

    #[test]
    fn unset() {
        assert_eq!(
            apply(json!({"$unset": {"a": ""}}), json!({"a": 1, "b": 2})),
            json!({"b": 2})
        );
    }

    #[test]
    fn inc_existing_and_missing() {
        assert_eq!(
            apply(json!({"$inc": {"n": 5}}), json!({"n": 1})),
            json!({"n": 6})
        );
        assert_eq!(apply(json!({"$inc": {"n": 5}}), json!({})), json!({"n": 5}));
        assert_eq!(
            apply(json!({"$inc": {"n": 0.5}}), json!({"n": 1})),
            json!({"n": 1.5})
        );
    }

    #[test]
    fn mul() {
        assert_eq!(
            apply(json!({"$mul": {"n": 3}}), json!({"n": 4})),
            json!({"n": 12})
        );
        assert_eq!(apply(json!({"$mul": {"n": 3}}), json!({})), json!({"n": 0}));
    }

    #[test]
    fn min_max() {
        assert_eq!(
            apply(json!({"$min": {"n": 2}}), json!({"n": 5})),
            json!({"n": 2})
        );
        assert_eq!(
            apply(json!({"$min": {"n": 9}}), json!({"n": 5})),
            json!({"n": 5})
        );
        assert_eq!(
            apply(json!({"$max": {"n": 9}}), json!({"n": 5})),
            json!({"n": 9})
        );
        assert_eq!(apply(json!({"$max": {"n": 2}}), json!({})), json!({"n": 2}));
    }

    #[test]
    fn rename() {
        assert_eq!(
            apply(json!({"$rename": {"old": "new"}}), json!({"old": 7})),
            json!({"new": 7})
        );
        // Renaming a missing field is a no-op.
        assert_eq!(
            apply(json!({"$rename": {"x": "y"}}), json!({"a": 1})),
            json!({"a": 1})
        );
    }

    #[test]
    fn push_single_and_each() {
        assert_eq!(
            apply(json!({"$push": {"xs": 3}}), json!({"xs": [1]})),
            json!({"xs": [1, 3]})
        );
        assert_eq!(
            apply(json!({"$push": {"xs": 3}}), json!({})),
            json!({"xs": [3]})
        );
        assert_eq!(
            apply(
                json!({"$push": {"xs": {"$each": [2, 3]}}}),
                json!({"xs": [1]})
            ),
            json!({"xs": [1, 2, 3]})
        );
    }

    #[test]
    fn push_on_scalar_fails() {
        let u = Update::parse(&json!({"$push": {"x": 1}})).unwrap();
        let mut doc = json!({"x": 5});
        assert!(u.apply(&mut doc, 0.0, false).is_err());
    }

    #[test]
    fn pull_and_pop() {
        assert_eq!(
            apply(json!({"$pull": {"xs": 2}}), json!({"xs": [1, 2, 3, 2]})),
            json!({"xs": [1, 3]})
        );
        assert_eq!(
            apply(json!({"$pop": {"xs": 1}}), json!({"xs": [1, 2]})),
            json!({"xs": [1]})
        );
        assert_eq!(
            apply(json!({"$pop": {"xs": -1}}), json!({"xs": [1, 2]})),
            json!({"xs": [2]})
        );
    }

    #[test]
    fn add_to_set() {
        assert_eq!(
            apply(json!({"$addToSet": {"xs": 2}}), json!({"xs": [1, 2]})),
            json!({"xs": [1, 2]})
        );
        assert_eq!(
            apply(json!({"$addToSet": {"xs": 3}}), json!({"xs": [1, 2]})),
            json!({"xs": [1, 2, 3]})
        );
    }

    #[test]
    fn current_date_uses_sim_clock() {
        assert_eq!(
            apply(json!({"$currentDate": {"ts": true}}), json!({})),
            json!({"ts": 1000})
        );
    }

    #[test]
    fn set_on_insert_only_when_inserting() {
        let u = Update::parse(&json!({"$setOnInsert": {"a": 1}})).unwrap();
        let mut d1 = json!({});
        u.apply(&mut d1, 0.0, true).unwrap();
        assert_eq!(d1, json!({"a": 1}));
        let mut d2 = json!({});
        u.apply(&mut d2, 0.0, false).unwrap();
        assert_eq!(d2, json!({}));
    }

    #[test]
    fn replacement_preserves_id() {
        let mut doc = json!({"_id": "x1", "a": 1});
        Update::parse(&json!({"b": 2}))
            .unwrap()
            .apply(&mut doc, 0.0, false)
            .unwrap();
        assert_eq!(doc, json!({"_id": "x1", "b": 2}));
    }

    #[test]
    fn mixed_ops_and_literals_rejected() {
        assert!(Update::parse(&json!({"$set": {"a": 1}, "b": 2})).is_err());
    }

    #[test]
    fn unknown_operator_rejected() {
        assert!(Update::parse(&json!({"$evil": {"a": 1}})).is_err());
    }

    #[test]
    fn multiple_operators_apply_in_order() {
        let out = apply(
            json!({"$inc": {"n": 1}, "$push": {"log": "retried"}}),
            json!({"n": 0}),
        );
        assert_eq!(out, json!({"n": 1, "log": ["retried"]}));
    }
}
