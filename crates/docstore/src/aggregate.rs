//! Aggregation pipelines.
//!
//! "Both the web interface and workflow components perform complex
//! ad-hoc queries over these structures" (§III-B). Beyond plain finds,
//! the production system leaned on Mongo's aggregation stages for the
//! web UI's statistics panels and the analytics notebooks. This module
//! implements the core stage set: `$match`, `$project`, `$unwind`,
//! `$group` (with sum/avg/min/max/count/push accumulators), `$sort`,
//! `$skip`, `$limit`, and `$count`.

use crate::cursor::{CompiledProjection, FindOptions, SortDir};
use crate::error::{Result, StoreError};
use crate::query::Filter;
use crate::value::{
    cmp_values, compile_path, get_path_segs, set_path_segs, Docs, Document, OrderedValue, PathSeg,
};
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One pipeline stage, parsed.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Keep documents matching the filter.
    Match(Filter),
    /// Keep only the listed dotted paths (plus `_id`).
    Project(Vec<String>),
    /// Duplicate each document once per element of an array field.
    Unwind(String),
    /// Group by a key expression with accumulators.
    Group {
        /// Dotted path whose value becomes the group key (`None` groups
        /// everything into a single bucket, like `_id: null`).
        key: Option<String>,
        /// (output field, accumulator, input path).
        accumulators: Vec<(String, Accumulator, String)>,
    },
    /// Sort by (path, direction) pairs.
    Sort(Vec<(String, SortDir)>),
    /// Skip the first n documents.
    Skip(usize),
    /// Keep at most n documents.
    Limit(usize),
    /// Replace the stream with `{"count": n}`.
    Count(String),
}

/// Group accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulator {
    Sum,
    Avg,
    Min,
    Max,
    Count,
    Push,
    First,
}

/// Parse a JSON pipeline (array of single-key stage objects).
pub fn parse_pipeline(stages: &Value) -> Result<Vec<Stage>> {
    let arr = stages
        .as_array()
        .ok_or_else(|| StoreError::BadQuery("pipeline must be an array".into()))?;
    let mut out = Vec::with_capacity(arr.len());
    for st in arr {
        let obj = st
            .as_object()
            .ok_or_else(|| StoreError::BadQuery("stage must be an object".into()))?;
        let mut ops = obj.iter();
        let (op, spec) = match (ops.next(), ops.next()) {
            (Some(kv), None) => kv,
            _ => {
                return Err(StoreError::BadQuery(
                    "each stage must have exactly one operator".into(),
                ))
            }
        };
        out.push(parse_stage(op, spec)?);
    }
    Ok(out)
}

fn parse_stage(op: &str, spec: &Value) -> Result<Stage> {
    Ok(match op {
        "$match" => Stage::Match(Filter::parse(spec)?),
        "$project" => {
            let obj = spec
                .as_object()
                .ok_or_else(|| StoreError::BadQuery("$project expects an object".into()))?;
            let mut paths = Vec::new();
            for (k, v) in obj {
                if v == &json!(1) || v == &json!(true) {
                    paths.push(k.clone());
                } else {
                    return Err(StoreError::BadQuery(format!(
                        "$project only supports inclusion, got {k}: {v}"
                    )));
                }
            }
            Stage::Project(paths)
        }
        "$unwind" => {
            let path = spec
                .as_str()
                .ok_or_else(|| StoreError::BadQuery("$unwind expects a field path".into()))?;
            Stage::Unwind(path.trim_start_matches('$').to_string())
        }
        "$group" => {
            let obj = spec
                .as_object()
                .ok_or_else(|| StoreError::BadQuery("$group expects an object".into()))?;
            let key = match obj.get("_id") {
                None | Some(Value::Null) => None,
                Some(Value::String(s)) => Some(s.trim_start_matches('$').to_string()),
                Some(other) => {
                    return Err(StoreError::BadQuery(format!(
                        "$group _id must be a field reference or null, got {other}"
                    )))
                }
            };
            let mut accumulators = Vec::new();
            for (field, acc_spec) in obj {
                if field == "_id" {
                    continue;
                }
                let acc_obj = acc_spec.as_object().ok_or_else(|| {
                    StoreError::BadQuery(format!("accumulator for {field} must be an object"))
                })?;
                let mut acc_ops = acc_obj.iter();
                let (acc_op, input) = match (acc_ops.next(), acc_ops.next()) {
                    (Some(kv), None) => kv,
                    _ => {
                        return Err(StoreError::BadQuery(
                            "accumulator must have exactly one operator".into(),
                        ))
                    }
                };
                let acc = match acc_op.as_str() {
                    "$sum" => Accumulator::Sum,
                    "$avg" => Accumulator::Avg,
                    "$min" => Accumulator::Min,
                    "$max" => Accumulator::Max,
                    "$count" => Accumulator::Count,
                    "$push" => Accumulator::Push,
                    "$first" => Accumulator::First,
                    other => {
                        return Err(StoreError::BadQuery(format!("unknown accumulator {other}")))
                    }
                };
                let input_path = match input {
                    Value::String(s) => s.trim_start_matches('$').to_string(),
                    // `$sum: 1` counts.
                    Value::Number(_) if acc == Accumulator::Sum => String::new(),
                    _ => String::new(),
                };
                accumulators.push((field.clone(), acc, input_path));
            }
            Stage::Group { key, accumulators }
        }
        "$sort" => {
            let obj = spec
                .as_object()
                .ok_or_else(|| StoreError::BadQuery("$sort expects an object".into()))?;
            let mut keys = Vec::new();
            for (k, v) in obj {
                let dir = match v.as_i64() {
                    Some(1) => SortDir::Asc,
                    Some(-1) => SortDir::Desc,
                    _ => {
                        return Err(StoreError::BadQuery(
                            "$sort directions must be 1 or -1".into(),
                        ))
                    }
                };
                keys.push((k.clone(), dir));
            }
            Stage::Sort(keys)
        }
        "$skip" => Stage::Skip(
            spec.as_u64()
                .ok_or_else(|| StoreError::BadQuery("$skip expects a non-negative int".into()))?
                as usize,
        ),
        "$limit" => Stage::Limit(
            spec.as_u64()
                .ok_or_else(|| StoreError::BadQuery("$limit expects a non-negative int".into()))?
                as usize,
        ),
        "$count" => Stage::Count(
            spec.as_str()
                .ok_or_else(|| StoreError::BadQuery("$count expects a field name".into()))?
                .to_string(),
        ),
        other => return Err(StoreError::BadQuery(format!("unknown stage {other}"))),
    })
}

/// Execute a parsed pipeline over a document stream.
///
/// The stream is a set of shared [`Arc<Document>`] handles: stages that
/// merely route documents (`$match`, `$sort`, `$skip`, `$limit`, `$group`
/// membership) move pointers, and only stages that synthesize new
/// documents (`$project`, `$unwind`, `$group` rows, `$count`) allocate.
pub fn run_pipeline(docs: Docs, stages: &[Stage]) -> Result<Docs> {
    let mut stream = docs;
    for stage in stages {
        stream = run_stage(stream, stage)?;
    }
    Ok(stream)
}

/// Apply one stage to the stream. Per-stage artifacts — compiled filters,
/// pre-split paths, compiled projections and sort keys — are built once
/// here, before any per-document loop runs, so the loops themselves do
/// pure traversal.
fn run_stage(stream: Docs, stage: &Stage) -> Result<Docs> {
    Ok(match stage {
        Stage::Match(f) => {
            // Routed through the shared scan path: the crossover model
            // decides whether this stage's stream is big enough for a
            // morsel fan-out, exactly as a collection scan would.
            let cf = f.compile();
            crate::collection::filter_matches(mp_exec::WorkPool::global(), stream, &cf)
        }
        Stage::Project(paths) => {
            let proj = CompiledProjection::compile(paths);
            stream
                .iter()
                .map(|d| Arc::new(proj.project_one(d)))
                .collect()
        }
        Stage::Unwind(path) => {
            let segs = compile_path(path);
            let mut out = Vec::new();
            for doc in stream {
                match get_path_segs(&doc, &segs) {
                    Some(Value::Array(items)) => {
                        for item in items {
                            // mp-lint: allow(H001) — $unwind synthesizes one new document per array element by definition; the copies are the stage's output.
                            let mut copy = (*doc).clone();
                            // mp-lint: allow(H001) — the element value becomes the unwound copy's field; one owned value per output document.
                            let item = item.clone();
                            set_path_segs(&mut copy, &segs, item).map_err(StoreError::BadQuery)?;
                            out.push(Arc::new(copy));
                        }
                    }
                    Some(_) => out.push(doc), // scalar passes through
                    None => {}                // missing drops the doc
                }
            }
            out
        }
        Stage::Group { key, accumulators } => {
            // mp-lint: allow(H004) — one compile per query for the group key; the adapter maps an Option, not the document stream.
            let key_segs = key.as_ref().map(|k| compile_path(k));
            let specs: Vec<(String, Accumulator, Option<Vec<PathSeg>>)> = accumulators
                .iter()
                .map(|(field, acc, input)| {
                    let segs = if input.is_empty() {
                        None
                    } else {
                        Some(compile_path(input)) // mp-lint: allow(H004) — one compile per accumulator spec, per query
                    };
                    (field.clone(), *acc, segs) // mp-lint: allow(H001) — owned spec tuple built once per query, not per document
                })
                .collect();
            let mut groups: BTreeMap<OrderedValue, Docs> = BTreeMap::new();
            for doc in stream {
                let k = match &key_segs {
                    Some(segs) => get_path_segs(&doc, segs).cloned().unwrap_or(Value::Null),
                    None => Value::Null,
                };
                groups.entry(OrderedValue(k)).or_default().push(doc);
            }
            let mut out = Vec::with_capacity(groups.len());
            for (k, members) in groups {
                let mut row = Map::with_capacity(specs.len() + 1);
                row.insert("_id".into(), k.0);
                for (field, acc, segs) in &specs {
                    // mp-lint: allow(H001) — one owned field name per output row; the row is the stage's product, not per-document scratch.
                    let field = field.clone();
                    row.insert(field, accumulate(*acc, segs.as_deref(), &members));
                }
                out.push(Arc::new(Value::Object(row)));
            }
            out
        }
        Stage::Sort(keys) => {
            let mut spec = FindOptions::all();
            spec.sort = keys.clone();
            let copts = spec.compile();
            let mut s = stream;
            s.sort_by(|a, b| copts.cmp_docs(a, b));
            s
        }
        Stage::Skip(n) => stream.into_iter().skip(*n).collect(),
        Stage::Limit(n) => stream.into_iter().take(*n).collect(),
        Stage::Count(field) => {
            vec![Arc::new(json!({ field.as_str(): stream.len() }))]
        }
    })
}

fn accumulate(acc: Accumulator, input: Option<&[PathSeg]>, members: &[Arc<Document>]) -> Value {
    let values: Vec<&Value> = members
        .iter()
        .filter_map(|d| input.and_then(|segs| get_path_segs(d, segs)))
        .collect();
    match acc {
        Accumulator::Count => json!(members.len()),
        Accumulator::Sum => {
            if input.is_none() {
                // `$sum: 1` idiom.
                json!(members.len())
            } else {
                let s: f64 = values.iter().filter_map(|v| v.as_f64()).sum();
                number(s)
            }
        }
        Accumulator::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                json!(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        Accumulator::Min => values
            .iter()
            .min_by(|a, b| cmp_values(a, b))
            .map(|&v| v.clone()) // mp-lint: allow(H001) — one owned winning value per group is the accumulator's output
            .unwrap_or(Value::Null),
        Accumulator::Max => values
            .iter()
            .max_by(|a, b| cmp_values(a, b))
            .map(|&v| v.clone()) // mp-lint: allow(H001) — one owned winning value per group is the accumulator's output
            .unwrap_or(Value::Null),
        Accumulator::Push => json!(values),
        // mp-lint: allow(H001) — one owned first value per group is the accumulator's output
        Accumulator::First => values.first().map(|&v| v.clone()).unwrap_or(Value::Null),
    }
}

fn number(x: f64) -> Value {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        json!(x as i64)
    } else {
        json!(x)
    }
}

impl crate::collection::Collection {
    /// Run an aggregation pipeline over this collection.
    pub fn aggregate(&self, pipeline: &Value) -> Result<Docs> {
        let stages = parse_pipeline(pipeline)?;
        // A leading $match can use the index-assisted find path.
        if let Some((Stage::Match(_), rest)) = stages.split_first() {
            if let Some(first) = pipeline.as_array().and_then(|a| a.first()) {
                let docs = self.find(&first["$match"])?;
                return run_pipeline(docs, rest);
            }
        }
        run_pipeline(self.dump(), &stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn db() -> Database {
        let db = Database::new();
        let mats = db.collection("materials");
        mats.insert_many(vec![
            json!({"_id": 1, "chemsys": "Fe-O", "gap": 2.0, "elements": ["Fe", "O"], "nsites": 10}),
            json!({"_id": 2, "chemsys": "Fe-O", "gap": 0.0, "elements": ["Fe", "O"], "nsites": 4}),
            json!({"_id": 3, "chemsys": "Li-O", "gap": 5.1, "elements": ["Li", "O"], "nsites": 8}),
            json!({"_id": 4, "chemsys": "Li-O", "gap": 4.9, "elements": ["Li", "O"], "nsites": 12}),
            json!({"_id": 5, "chemsys": "Co-Li-O", "gap": 2.7, "elements": ["Li", "Co", "O"], "nsites": 4}),
        ])
        .unwrap();
        db
    }

    #[test]
    fn match_group_avg() {
        // Average gap per chemical system — a web-UI statistics panel.
        let out = db()
            .collection("materials")
            .aggregate(&json!([
                {"$match": {"gap": {"$gt": 0.0}}},
                {"$group": {"_id": "$chemsys", "avg_gap": {"$avg": "$gap"}, "n": {"$sum": 1}}},
                {"$sort": {"_id": 1}},
            ]))
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0]["_id"], "Co-Li-O");
        assert_eq!(out[1]["_id"], "Fe-O");
        assert_eq!(out[1]["n"], 1);
        let li_o = &out[2];
        assert!((li_o["avg_gap"].as_f64().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(li_o["n"], 2);
    }

    #[test]
    fn unwind_counts_element_occurrences() {
        // Element prevalence across the database.
        let out = db()
            .collection("materials")
            .aggregate(&json!([
                {"$unwind": "$elements"},
                {"$group": {"_id": "$elements", "count": {"$sum": 1}}},
                {"$sort": {"count": -1, "_id": 1}},
            ]))
            .unwrap();
        assert_eq!(out[0]["_id"], "O");
        assert_eq!(out[0]["count"], 5);
        let li = out.iter().find(|r| r["_id"] == "Li").unwrap();
        assert_eq!(li["count"], 3);
    }

    #[test]
    fn min_max_push_first() {
        let out = db()
            .collection("materials")
            .aggregate(&json!([
                {"$group": {"_id": null,
                             "min_gap": {"$min": "$gap"},
                             "max_gap": {"$max": "$gap"},
                             "gaps": {"$push": "$gap"},
                             "first_sys": {"$first": "$chemsys"}}},
            ]))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0]["min_gap"], json!(0.0));
        assert_eq!(out[0]["max_gap"], json!(5.1));
        assert_eq!(out[0]["gaps"].as_array().unwrap().len(), 5);
        assert!(out[0]["first_sys"].is_string());
    }

    #[test]
    fn project_sort_skip_limit() {
        let out = db()
            .collection("materials")
            .aggregate(&json!([
                {"$project": {"gap": 1}},
                {"$sort": {"gap": -1}},
                {"$skip": 1},
                {"$limit": 2},
            ]))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0]["gap"], json!(4.9));
        assert!(out[0].get("chemsys").is_none());
    }

    #[test]
    fn count_stage() {
        let out = db()
            .collection("materials")
            .aggregate(&json!([
                {"$match": {"elements": "Li"}},
                {"$count": "n_li"},
            ]))
            .unwrap();
        assert_eq!(out, crate::value::to_docs(vec![json!({"n_li": 3})]));
    }

    #[test]
    fn sum_of_field() {
        let out = db()
            .collection("materials")
            .aggregate(&json!([
                {"$group": {"_id": null, "total_sites": {"$sum": "$nsites"}}},
            ]))
            .unwrap();
        assert_eq!(out[0]["total_sites"], json!(38));
    }

    #[test]
    fn invalid_pipelines_rejected() {
        let c = db();
        let mats = c.collection("materials");
        assert!(mats.aggregate(&json!({"not": "array"})).is_err());
        assert!(mats.aggregate(&json!([{"$evil": {}}])).is_err());
        assert!(mats.aggregate(&json!([{"$sort": {"x": 2}}])).is_err());
        assert!(mats
            .aggregate(&json!([{"$group": {"_id": "$x", "v": {"$median": "$y"}}}]))
            .is_err());
        assert!(mats
            .aggregate(&json!([{"$match": {}, "$limit": 1}]))
            .is_err());
    }

    #[test]
    fn unwind_missing_field_drops_doc() {
        let out = db()
            .collection("materials")
            .aggregate(&json!([{"$unwind": "$nonexistent"}]))
            .unwrap();
        assert!(out.is_empty());
    }
}
