//! Ordered secondary indexes on dotted field paths.
//!
//! An index maps each distinct value at a path to the set of document ids
//! holding it, using the BSON-like total order from [`crate::value`] so
//! that both equality and range queries can be accelerated. Array-valued
//! fields produce one entry per element (multikey indexes), which is what
//! makes queries like `{elements: "Li"}` fast.

use crate::error::{Result, StoreError};
use crate::value::{get_path_multi, OrderedValue};
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Internal id assigned to each stored document.
pub type DocId = u64;

/// One secondary index.
#[derive(Debug, Clone)]
pub struct Index {
    /// Dotted field path this index covers.
    pub path: String,
    /// Reject two documents with the same indexed value?
    pub unique: bool,
    map: BTreeMap<OrderedValue, BTreeSet<DocId>>,
}

/// The values a document exposes at an index path: one entry per array
/// element for multikey behaviour, or the single value itself.
fn index_keys(doc: &Value, path: &str) -> Vec<Value> {
    let mut keys = Vec::new();
    for v in get_path_multi(doc, path) {
        match v {
            Value::Array(a) => keys.extend(a.iter().cloned()),
            other => keys.push(other.clone()),
        }
    }
    keys
}

impl Index {
    /// Create an empty index over `path`.
    pub fn new(path: impl Into<String>, unique: bool) -> Self {
        Index {
            path: path.into(),
            unique,
            map: BTreeMap::new(),
        }
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Would inserting `doc` for `id` violate this index's uniqueness?
    /// `ignore` is an id whose existing entries should be disregarded
    /// (used when checking an update against the document's old self).
    pub fn check_unique(&self, id: DocId, doc: &Value, ignore: Option<DocId>) -> Result<()> {
        if !self.unique {
            return Ok(());
        }
        for k in index_keys(doc, &self.path) {
            if let Some(ids) = self.map.get(&OrderedValue(k.clone())) {
                let conflict = ids
                    .iter()
                    .any(|&other| other != id && Some(other) != ignore);
                if conflict {
                    return Err(StoreError::DuplicateKey(format!(
                        "unique index on '{}' value {k}",
                        self.path
                    )));
                }
            }
        }
        Ok(())
    }

    /// Add `doc`'s entries. Fails (before mutating) on unique violation.
    pub fn insert(&mut self, id: DocId, doc: &Value) -> Result<()> {
        let keys = index_keys(doc, &self.path);
        if self.unique {
            for k in &keys {
                if let Some(ids) = self.map.get(&OrderedValue(k.clone())) {
                    if !ids.is_empty() && !ids.contains(&id) {
                        return Err(StoreError::DuplicateKey(format!(
                            "unique index on '{}' value {k}",
                            self.path
                        )));
                    }
                }
            }
        }
        for k in keys {
            self.map.entry(OrderedValue(k)).or_default().insert(id);
        }
        Ok(())
    }

    /// Remove `doc`'s entries.
    pub fn remove(&mut self, id: DocId, doc: &Value) {
        for k in index_keys(doc, &self.path) {
            let key = OrderedValue(k);
            if let Some(ids) = self.map.get_mut(&key) {
                ids.remove(&id);
                if ids.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Ids of documents whose indexed value equals `v`.
    pub fn lookup_eq(&self, v: &Value) -> Vec<DocId> {
        self.map
            .get(&OrderedValue(v.clone()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Ids of documents whose indexed value is in any of `vs`.
    pub fn lookup_in(&self, vs: &[Value]) -> Vec<DocId> {
        let mut out = BTreeSet::new();
        for v in vs {
            if let Some(ids) = self.map.get(&OrderedValue(v.clone())) {
                out.extend(ids.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Ids of documents in the half-open/closed range.
    pub fn lookup_range(
        &self,
        lo: Option<&Value>,
        lo_incl: bool,
        hi: Option<&Value>,
        hi_incl: bool,
    ) -> Vec<DocId> {
        let lower: Bound<OrderedValue> = match lo {
            Some(v) if lo_incl => Bound::Included(OrderedValue(v.clone())),
            Some(v) => Bound::Excluded(OrderedValue(v.clone())),
            None => Bound::Unbounded,
        };
        let upper: Bound<OrderedValue> = match hi {
            Some(v) if hi_incl => Bound::Included(OrderedValue(v.clone())),
            Some(v) => Bound::Excluded(OrderedValue(v.clone())),
            None => Bound::Unbounded,
        };
        let mut out = BTreeSet::new();
        for (_, ids) in self.map.range((lower, upper)) {
            out.extend(ids.iter().copied());
        }
        out.into_iter().collect()
    }

    /// Number of ids an equality probe for `v` would return, without
    /// materializing them. Used by the cost-based planner.
    pub fn estimate_eq(&self, v: &Value) -> usize {
        self.map
            .get(&OrderedValue(v.clone()))
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Upper bound on ids an `$in` probe over `vs` would return (sum of
    /// per-value set sizes; duplicates across multikey entries ignored).
    pub fn estimate_in(&self, vs: &[Value]) -> usize {
        vs.iter()
            .map(|v| {
                self.map
                    .get(&OrderedValue(v.clone()))
                    .map(|s| s.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Upper bound on ids a range probe would return.
    pub fn estimate_range(
        &self,
        lo: Option<&Value>,
        lo_incl: bool,
        hi: Option<&Value>,
        hi_incl: bool,
    ) -> usize {
        let lower: Bound<OrderedValue> = match lo {
            Some(v) if lo_incl => Bound::Included(OrderedValue(v.clone())),
            Some(v) => Bound::Excluded(OrderedValue(v.clone())),
            None => Bound::Unbounded,
        };
        let upper: Bound<OrderedValue> = match hi {
            Some(v) if hi_incl => Bound::Included(OrderedValue(v.clone())),
            Some(v) => Bound::Excluded(OrderedValue(v.clone())),
            None => Bound::Unbounded,
        };
        self.map
            .range((lower, upper))
            .map(|(_, ids)| ids.len())
            .sum()
    }

    /// All ids in value order (supports index-assisted sort).
    pub fn scan_ordered(&self, descending: bool) -> Vec<DocId> {
        let mut out = Vec::new();
        if descending {
            for (_, ids) in self.map.iter().rev() {
                out.extend(ids.iter().copied());
            }
        } else {
            for (_, ids) in self.map.iter() {
                out.extend(ids.iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn eq_lookup() {
        let mut ix = Index::new("state", false);
        ix.insert(1, &json!({"state": "READY"})).unwrap();
        ix.insert(2, &json!({"state": "RUNNING"})).unwrap();
        ix.insert(3, &json!({"state": "READY"})).unwrap();
        assert_eq!(ix.lookup_eq(&json!("READY")), vec![1, 3]);
        assert_eq!(ix.lookup_eq(&json!("DONE")), Vec::<DocId>::new());
    }

    #[test]
    fn multikey_arrays() {
        let mut ix = Index::new("elements", false);
        ix.insert(1, &json!({"elements": ["Li", "Fe", "O"]}))
            .unwrap();
        ix.insert(2, &json!({"elements": ["Na", "O"]})).unwrap();
        assert_eq!(ix.lookup_eq(&json!("O")), vec![1, 2]);
        assert_eq!(ix.lookup_eq(&json!("Li")), vec![1]);
        assert_eq!(ix.distinct_values(), 4);
    }

    #[test]
    fn range_lookup() {
        let mut ix = Index::new("n", false);
        for (id, n) in [(1u64, 10), (2, 20), (3, 30), (4, 40)] {
            ix.insert(id, &json!({ "n": n })).unwrap();
        }
        assert_eq!(
            ix.lookup_range(Some(&json!(20)), true, Some(&json!(30)), true),
            vec![2, 3]
        );
        assert_eq!(
            ix.lookup_range(Some(&json!(20)), false, None, true),
            vec![3, 4]
        );
        assert_eq!(ix.lookup_range(None, true, Some(&json!(15)), true), vec![1]);
    }

    #[test]
    fn remove_cleans_up() {
        let mut ix = Index::new("a", false);
        let doc = json!({"a": 5});
        ix.insert(1, &doc).unwrap();
        ix.remove(1, &doc);
        assert!(ix.lookup_eq(&json!(5)).is_empty());
        assert_eq!(ix.distinct_values(), 0);
    }

    #[test]
    fn unique_violation() {
        let mut ix = Index::new("mps_id", true);
        ix.insert(1, &json!({"mps_id": "mps-1"})).unwrap();
        assert!(ix.insert(2, &json!({"mps_id": "mps-1"})).is_err());
        // Same doc re-inserting its own value is fine.
        ix.insert(1, &json!({"mps_id": "mps-1"})).unwrap();
    }

    #[test]
    fn nested_path() {
        let mut ix = Index::new("spec.task_type", false);
        ix.insert(1, &json!({"spec": {"task_type": "static"}}))
            .unwrap();
        assert_eq!(ix.lookup_eq(&json!("static")), vec![1]);
    }

    #[test]
    fn ordered_scan() {
        let mut ix = Index::new("n", false);
        ix.insert(1, &json!({"n": 30})).unwrap();
        ix.insert(2, &json!({"n": 10})).unwrap();
        ix.insert(3, &json!({"n": 20})).unwrap();
        assert_eq!(ix.scan_ordered(false), vec![2, 3, 1]);
        assert_eq!(ix.scan_ordered(true), vec![1, 3, 2]);
    }

    #[test]
    fn missing_field_not_indexed() {
        let mut ix = Index::new("x", false);
        ix.insert(1, &json!({"y": 1})).unwrap();
        assert_eq!(ix.distinct_values(), 0);
    }
}
