//! Find options: sort, skip, limit, projection — the cursor modifiers the
//! web UI and workflow engine use for paging and field selection.
//!
//! [`FindOptions`] is the *spec*: plain dotted-path strings, built once per
//! request. The read path never applies it directly — it calls
//! [`FindOptions::compile`] to get a [`CompiledFindOptions`] whose sort keys
//! and projection paths are pre-split ([`PathSeg`]) so the per-document work
//! is pure traversal, the same once-per-query treatment
//! `Filter::compile` gives predicates. The uncompiled
//! [`FindOptions::compare`]/[`FindOptions::project_doc`] survive as the
//! naive reference implementations the property tests diff against.

use crate::value::{
    cmp_values, compile_path, get_path, get_path_segs, set_path, set_path_segs, PathSeg,
};
use serde_json::{Map, Value};
use std::borrow::Borrow;
use std::cmp::Ordering;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    Asc,
    Desc,
}

/// Options applied to a `find`.
#[derive(Debug, Clone, Default)]
pub struct FindOptions {
    /// (path, direction) pairs applied in order.
    pub sort: Vec<(String, SortDir)>,
    /// Documents to skip from the start of the result.
    pub skip: usize,
    /// Maximum documents to return (`None` = unlimited).
    pub limit: Option<usize>,
    /// Projection: include-list of paths. `_id` is always included.
    pub projection: Option<Vec<String>>,
}

impl FindOptions {
    /// No sort, skip, limit or projection.
    pub fn all() -> Self {
        Self::default()
    }

    /// Builder: add a sort key.
    pub fn sort_by(mut self, path: impl Into<String>, dir: SortDir) -> Self {
        self.sort.push((path.into(), dir));
        self
    }

    /// Builder: set skip.
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Builder: set limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Builder: project to these paths.
    pub fn project(mut self, paths: &[&str]) -> Self {
        self.projection = Some(paths.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Pre-split every sort key and projection path so applying the
    /// options costs no string work per document. Call once per query.
    pub fn compile(&self) -> CompiledFindOptions {
        CompiledFindOptions {
            sort: self
                .sort
                .iter()
                .map(|(path, dir)| (compile_path(path), *dir))
                .collect(),
            skip: self.skip,
            limit: self.limit,
            projection: self.projection.as_deref().map(CompiledProjection::compile),
        }
    }

    /// Naive reference: apply sort/skip/limit by re-splitting each sort
    /// key per comparison. The read path uses
    /// [`CompiledFindOptions::apply_order`]; this stays as the oracle the
    /// property tests compare against. Generic over ownership so it sorts
    /// owned `Vec<Value>` and shared [`crate::value::Docs`] alike.
    pub fn apply_order<D: Borrow<Value>>(&self, docs: &mut Vec<D>) {
        if !self.sort.is_empty() {
            docs.sort_by(|a, b| self.compare(a.borrow(), b.borrow()));
        }
        if self.skip > 0 {
            let n = self.skip.min(docs.len());
            docs.drain(..n);
        }
        if let Some(limit) = self.limit {
            docs.truncate(limit);
        }
    }

    /// Naive reference comparator implied by the sort spec (missing
    /// fields sort first, like MongoDB's null-first ordering). The read
    /// path uses [`CompiledFindOptions::cmp_docs`].
    pub fn compare(&self, a: &Value, b: &Value) -> Ordering {
        for (path, dir) in &self.sort {
            let va = get_path(a, path).unwrap_or(&Value::Null);
            let vb = get_path(b, path).unwrap_or(&Value::Null);
            let c = cmp_values(va, vb);
            let c = match dir {
                SortDir::Asc => c,
                SortDir::Desc => c.reverse(),
            };
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    }

    /// Naive reference projection: `get_path` + `set_path` per path per
    /// document, re-splitting every dotted path each time. The read path
    /// uses [`CompiledProjection::project_one`]; this stays as the oracle
    /// the property tests compare against.
    pub fn project_doc(&self, doc: &Value) -> Value {
        match &self.projection {
            None => doc.clone(),
            Some(paths) => {
                let mut out = Value::Object(Map::new());
                if let Some(id) = doc.get("_id") {
                    let _ = set_path(&mut out, "_id", id.clone());
                }
                for p in paths {
                    if let Some(v) = get_path(doc, p) {
                        let _ = set_path(&mut out, p, v.clone());
                    }
                }
                out
            }
        }
    }
}

/// [`FindOptions`] after one-time compilation: sort keys and projection
/// paths are pre-split, so the per-document cost is map traversal plus the
/// clones that materialize the output — no string splitting, no numeric
/// re-parsing, no intermediate-path bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct CompiledFindOptions {
    sort: Vec<(Vec<PathSeg>, SortDir)>,
    skip: usize,
    limit: Option<usize>,
    projection: Option<CompiledProjection>,
}

impl CompiledFindOptions {
    /// The compiled projection, if the spec had one. The read path uses
    /// this to decide whether result documents need materializing at all
    /// (no projection ⇒ the matched `Arc`s are returned as-is).
    pub fn projection(&self) -> Option<&CompiledProjection> {
        self.projection.as_ref()
    }

    /// True when sorting is requested.
    pub fn has_sort(&self) -> bool {
        !self.sort.is_empty()
    }

    /// Number of leading matches to drop.
    pub fn skip(&self) -> usize {
        self.skip
    }

    /// Result-window bound, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Apply sort/skip/limit using the pre-split sort keys. Result order
    /// is identical to the naive [`FindOptions::apply_order`].
    pub fn apply_order<D: Borrow<Value>>(&self, docs: &mut Vec<D>) {
        if !self.sort.is_empty() {
            docs.sort_by(|a, b| self.cmp_docs(a.borrow(), b.borrow()));
        }
        if self.skip > 0 {
            let n = self.skip.min(docs.len());
            docs.drain(..n);
        }
        if let Some(limit) = self.limit {
            docs.truncate(limit);
        }
    }

    /// Compiled comparator: same ordering as [`FindOptions::compare`]
    /// (missing fields sort first) over pre-split key paths.
    pub fn cmp_docs(&self, a: &Value, b: &Value) -> Ordering {
        for (segs, dir) in &self.sort {
            let va = get_path_segs(a, segs).unwrap_or(&Value::Null);
            let vb = get_path_segs(b, segs).unwrap_or(&Value::Null);
            let c = cmp_values(va, vb);
            let c = match dir {
                SortDir::Asc => c,
                SortDir::Desc => c.reverse(),
            };
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    }
}

/// An include-projection compiled once per query.
///
/// Two strategies, chosen at compile time:
///
/// * **Plan walk** (the common case): when no path contains a numeric
///   segment, the paths form a prefix trie that is walked in lockstep
///   with the document, emitting the output object directly. One pass
///   over the trie per document; no path re-resolution, no
///   intermediate-container bookkeeping.
/// * **Sequential fallback**: paths with array indices keep `set_path`'s
///   order-sensitive array-creation semantics, so they replay the naive
///   algorithm over pre-split segments ([`set_path_segs`]).
///
/// Both produce output identical to the naive
/// [`FindOptions::project_doc`]; the property tests enforce this.
#[derive(Debug, Clone)]
pub struct CompiledProjection {
    /// Pre-split paths in application order, `_id` first.
    paths: Vec<Vec<PathSeg>>,
    /// Prefix trie over `paths`; `None` forces the sequential fallback.
    plan: Option<ProjNode>,
}

/// One node of the projection trie.
#[derive(Debug, Clone, Default)]
struct ProjNode {
    /// Child key → subtree, in first-seen order.
    children: Vec<(String, ProjNode)>,
    /// A projection path terminates here: include the whole subtree.
    take_all: bool,
}

impl CompiledProjection {
    /// Compile an include-list of dotted paths (`_id` is always added).
    pub fn compile(paths: &[String]) -> Self {
        let mut all: Vec<Vec<PathSeg>> = Vec::with_capacity(paths.len() + 1);
        all.push(compile_path("_id"));
        all.extend(paths.iter().map(|p| compile_path(p)));
        let plan = build_plan(&all);
        CompiledProjection { paths: all, plan }
    }

    /// Project one document. Output is identical to the naive
    /// [`FindOptions::project_doc`] for the same paths.
    pub fn project_one(&self, doc: &Value) -> Value {
        match &self.plan {
            Some(root) => {
                // mp-lint: allow(H002) — the output object is the query result being materialized, not reusable scratch.
                let mut out = Map::with_capacity(root.children.len());
                if let Value::Object(m) = doc {
                    for (key, child) in &root.children {
                        if let Some(v) = m.get(key) {
                            if let Some(pv) = project_node(v, child) {
                                // mp-lint: allow(H001) — owned output keys are required by the Map API; one short clone per projected field.
                                out.insert(key.clone(), pv);
                            }
                        }
                    }
                }
                Value::Object(out)
            }
            None => {
                // mp-lint: allow(H002) — fallback output object: result materialization, not scratch.
                let mut out = Value::Object(Map::new());
                for segs in &self.paths {
                    if let Some(v) = get_path_segs(doc, segs) {
                        // mp-lint: allow(H001) — copying the projected value into the output is the product of projection.
                        let _ = set_path_segs(&mut out, segs, v.clone());
                    }
                }
                out
            }
        }
    }
}

/// Build the trie plan, or `None` when a path addresses array elements
/// (numeric segments make `set_path` create arrays and are order-
/// sensitive when mixed with object keys, so those shapes replay the
/// sequential algorithm instead).
fn build_plan(paths: &[Vec<PathSeg>]) -> Option<ProjNode> {
    if paths
        .iter()
        .any(|segs| segs.iter().any(|s| s.index.is_some()))
    {
        return None;
    }
    let mut root = ProjNode::default();
    for segs in paths {
        // Empty paths are no-ops in the naive algorithm (`set_path`
        // rejects them); skip them here too.
        if segs.is_empty() {
            continue;
        }
        let mut node = &mut root;
        for seg in segs {
            let pos = match node.children.iter().position(|(k, _)| *k == seg.key) {
                Some(p) => p,
                None => {
                    node.children.push((seg.key.clone(), ProjNode::default()));
                    node.children.len() - 1
                }
            };
            // mp-flow: allow(R002) — `pos` is either a found position or `len - 1` of the element pushed on the line above; both are in bounds.
            node = &mut node.children[pos].1;
        }
        node.take_all = true;
    }
    Some(root)
}

/// Walk one trie node against the matching document subtree. `None`
/// means nothing under this node resolved, so (like the naive
/// algorithm, which only writes resolved paths) no output entry is
/// created at all.
fn project_node(v: &Value, node: &ProjNode) -> Option<Value> {
    if node.take_all {
        // mp-lint: allow(H001) — the projected subtree is copied out by definition of projection.
        return Some(v.clone());
    }
    let Value::Object(m) = v else { return None };
    // mp-lint: allow(H002) — nested output object under construction, not reusable scratch.
    let mut out = Map::with_capacity(node.children.len());
    for (key, child) in &node.children {
        if let Some(cv) = m.get(key) {
            if let Some(pv) = project_node(cv, child) {
                // mp-lint: allow(H001) — owned output keys are required by the Map API.
                out.insert(key.clone(), pv);
            }
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(Value::Object(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn docs() -> Vec<Value> {
        vec![
            json!({"_id": 1, "n": 30, "s": "b"}),
            json!({"_id": 2, "n": 10, "s": "c"}),
            json!({"_id": 3, "n": 20, "s": "a"}),
            json!({"_id": 4, "n": 20, "s": "d"}),
        ]
    }

    #[test]
    fn sort_asc_desc() {
        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .apply_order(&mut d);
        let ns: Vec<i64> = d.iter().map(|x| x["n"].as_i64().unwrap()).collect();
        assert_eq!(ns, vec![10, 20, 20, 30]);

        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Desc)
            .apply_order(&mut d);
        let ns: Vec<i64> = d.iter().map(|x| x["n"].as_i64().unwrap()).collect();
        assert_eq!(ns, vec![30, 20, 20, 10]);
    }

    #[test]
    fn compound_sort_breaks_ties() {
        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .sort_by("s", SortDir::Desc)
            .apply_order(&mut d);
        let ids: Vec<i64> = d.iter().map(|x| x["_id"].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![2, 4, 3, 1]);
    }

    #[test]
    fn skip_limit() {
        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .skip(1)
            .limit(2)
            .apply_order(&mut d);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0]["n"], json!(20));
    }

    #[test]
    fn skip_past_end() {
        let mut d = docs();
        FindOptions::all().skip(99).apply_order(&mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn missing_sort_field_sorts_first() {
        let mut d = vec![json!({"_id": 1, "n": 5}), json!({"_id": 2})];
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .apply_order(&mut d);
        assert_eq!(d[0]["_id"], json!(2));
    }

    #[test]
    fn projection_keeps_id_and_nested() {
        let doc = json!({"_id": 7, "a": {"b": 1, "c": 2}, "d": 3});
        let opts = FindOptions::all().project(&["a.b"]);
        assert_eq!(opts.project_doc(&doc), json!({"_id": 7, "a": {"b": 1}}));
    }

    #[test]
    fn no_projection_returns_whole_doc() {
        let doc = json!({"_id": 7, "x": 1});
        assert_eq!(FindOptions::all().project_doc(&doc), doc);
    }

    #[test]
    fn compiled_order_matches_naive() {
        let opts = FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .sort_by("s", SortDir::Desc)
            .skip(1)
            .limit(2);
        let copts = opts.compile();
        let mut naive = docs();
        let mut fast = docs();
        opts.apply_order(&mut naive);
        copts.apply_order(&mut fast);
        assert_eq!(naive, fast);
    }

    #[test]
    fn compiled_projection_plan_matches_naive() {
        let doc = json!({"_id": 7, "a": {"b": 1, "c": 2}, "d": 3, "e": {"f": {"g": 4}}});
        for paths in [
            vec!["a.b"],
            vec!["a.b", "a.c"],
            vec!["a", "a.b"],
            vec!["a.b", "a"],
            vec!["e.f.g", "missing", "a.zz"],
            vec!["d"],
        ] {
            let opts = FindOptions::all().project(&paths);
            let copts = opts.compile();
            let proj = copts.projection().expect("projection compiled");
            assert_eq!(
                opts.project_doc(&doc),
                proj.project_one(&doc),
                "paths {paths:?}"
            );
        }
    }

    #[test]
    fn compiled_projection_fallback_matches_naive() {
        // Numeric segments route through the sequential fallback, which
        // must replicate set_path's array-creation semantics exactly.
        let doc = json!({"_id": 1, "xs": [10, {"y": 20}, 30], "a": {"0": "objkey"}});
        for paths in [vec!["xs.1.y"], vec!["xs.2"], vec!["a.0"], vec!["xs.9"]] {
            let opts = FindOptions::all().project(&paths);
            let copts = opts.compile();
            let proj = copts.projection().expect("projection compiled");
            assert_eq!(
                opts.project_doc(&doc),
                proj.project_one(&doc),
                "paths {paths:?}"
            );
        }
    }

    #[test]
    fn compiled_cmp_handles_mixed_types() {
        let docs = vec![
            json!({"_id": 1, "k": "str"}),
            json!({"_id": 2, "k": 5}),
            json!({"_id": 3}),
            json!({"_id": 4, "k": [1, 2]}),
            json!({"_id": 5, "k": true}),
        ];
        let opts = FindOptions::all().sort_by("k", SortDir::Asc);
        let copts = opts.compile();
        let mut naive = docs.clone();
        let mut fast = docs;
        naive.sort_by(|a, b| opts.compare(a, b));
        fast.sort_by(|a, b| copts.cmp_docs(a, b));
        assert_eq!(naive, fast);
    }
}
