//! Find options: sort, skip, limit, projection — the cursor modifiers the
//! web UI and workflow engine use for paging and field selection.

use crate::value::{cmp_values, get_path, set_path};
use serde_json::{Map, Value};
use std::borrow::Borrow;
use std::cmp::Ordering;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    Asc,
    Desc,
}

/// Options applied to a `find`.
#[derive(Debug, Clone, Default)]
pub struct FindOptions {
    /// (path, direction) pairs applied in order.
    pub sort: Vec<(String, SortDir)>,
    /// Documents to skip from the start of the result.
    pub skip: usize,
    /// Maximum documents to return (`None` = unlimited).
    pub limit: Option<usize>,
    /// Projection: include-list of paths. `_id` is always included.
    pub projection: Option<Vec<String>>,
}

impl FindOptions {
    /// No sort, skip, limit or projection.
    pub fn all() -> Self {
        Self::default()
    }

    /// Builder: add a sort key.
    pub fn sort_by(mut self, path: impl Into<String>, dir: SortDir) -> Self {
        self.sort.push((path.into(), dir));
        self
    }

    /// Builder: set skip.
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Builder: set limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Builder: project to these paths.
    pub fn project(mut self, paths: &[&str]) -> Self {
        self.projection = Some(paths.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Apply sort/skip/limit to a materialized result set. Generic over
    /// ownership so it sorts owned `Vec<Value>` and shared [`crate::value::Docs`]
    /// alike (reordering `Arc`s moves pointers, not documents).
    pub fn apply_order<D: Borrow<Value>>(&self, docs: &mut Vec<D>) {
        if !self.sort.is_empty() {
            docs.sort_by(|a, b| self.compare(a.borrow(), b.borrow()));
        }
        if self.skip > 0 {
            let n = self.skip.min(docs.len());
            docs.drain(..n);
        }
        if let Some(limit) = self.limit {
            docs.truncate(limit);
        }
    }

    /// Comparator implied by the sort spec (missing fields sort first,
    /// like MongoDB's null-first ordering).
    pub fn compare(&self, a: &Value, b: &Value) -> Ordering {
        for (path, dir) in &self.sort {
            let va = get_path(a, path).unwrap_or(&Value::Null);
            let vb = get_path(b, path).unwrap_or(&Value::Null);
            let c = cmp_values(va, vb);
            let c = match dir {
                SortDir::Asc => c,
                SortDir::Desc => c.reverse(),
            };
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    }

    /// Apply the projection to one document.
    pub fn project_doc(&self, doc: &Value) -> Value {
        match &self.projection {
            None => doc.clone(),
            Some(paths) => {
                let mut out = Value::Object(Map::new());
                if let Some(id) = doc.get("_id") {
                    let _ = set_path(&mut out, "_id", id.clone());
                }
                for p in paths {
                    if let Some(v) = get_path(doc, p) {
                        let _ = set_path(&mut out, p, v.clone());
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn docs() -> Vec<Value> {
        vec![
            json!({"_id": 1, "n": 30, "s": "b"}),
            json!({"_id": 2, "n": 10, "s": "c"}),
            json!({"_id": 3, "n": 20, "s": "a"}),
            json!({"_id": 4, "n": 20, "s": "d"}),
        ]
    }

    #[test]
    fn sort_asc_desc() {
        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .apply_order(&mut d);
        let ns: Vec<i64> = d.iter().map(|x| x["n"].as_i64().unwrap()).collect();
        assert_eq!(ns, vec![10, 20, 20, 30]);

        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Desc)
            .apply_order(&mut d);
        let ns: Vec<i64> = d.iter().map(|x| x["n"].as_i64().unwrap()).collect();
        assert_eq!(ns, vec![30, 20, 20, 10]);
    }

    #[test]
    fn compound_sort_breaks_ties() {
        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .sort_by("s", SortDir::Desc)
            .apply_order(&mut d);
        let ids: Vec<i64> = d.iter().map(|x| x["_id"].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![2, 4, 3, 1]);
    }

    #[test]
    fn skip_limit() {
        let mut d = docs();
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .skip(1)
            .limit(2)
            .apply_order(&mut d);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0]["n"], json!(20));
    }

    #[test]
    fn skip_past_end() {
        let mut d = docs();
        FindOptions::all().skip(99).apply_order(&mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn missing_sort_field_sorts_first() {
        let mut d = vec![json!({"_id": 1, "n": 5}), json!({"_id": 2})];
        FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .apply_order(&mut d);
        assert_eq!(d[0]["_id"], json!(2));
    }

    #[test]
    fn projection_keeps_id_and_nested() {
        let doc = json!({"_id": 7, "a": {"b": 1, "c": 2}, "d": 3});
        let opts = FindOptions::all().project(&["a.b"]);
        assert_eq!(opts.project_doc(&doc), json!({"_id": 7, "a": {"b": 1}}));
    }

    #[test]
    fn no_projection_returns_whole_doc() {
        let doc = json!({"_id": 7, "x": 1});
        assert_eq!(FindOptions::all().project_doc(&doc), doc);
    }
}
