//! Dotted-path access and BSON-like value ordering over [`serde_json::Value`].
//!
//! MongoDB addresses nested fields with dotted paths (`"spec.elements.0"`),
//! and sorts mixed-type values by a fixed type precedence. Both behaviours
//! are reproduced here because the rest of the system (query matcher,
//! update engine, indexes, cursors) is built on them.

use serde_json::{Map, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A document is a JSON object; this alias marks the intent.
pub type Document = Value;

/// A shared-ownership result set: the read path hands out `Arc`s to the
/// stored documents instead of deep clones, so a match costs a pointer
/// bump and returned documents are immutable snapshots (writers replace
/// the `Arc` in the store; they never mutate through it).
pub type Docs = Vec<Arc<Document>>;

/// Wrap owned documents into the shared-ownership form used by the read
/// path (handy for tests and benches that build corpora by hand).
pub fn to_docs(docs: Vec<Value>) -> Docs {
    docs.into_iter().map(Arc::new).collect()
}

/// Split a dotted path into segments. An empty path yields no segments.
pub fn path_segments(path: &str) -> impl Iterator<Item = &str> {
    path.split('.').filter(|s| !s.is_empty())
}

/// One pre-split segment of a dotted path: the raw key plus its numeric
/// parse, done once at compile time instead of per document per predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSeg {
    /// The segment text (`"elements"` in `"spec.elements.0"`).
    pub key: String,
    /// `Some(n)` when the segment is a valid array index.
    pub index: Option<usize>,
}

/// Pre-split a dotted path into segments (see [`PathSeg`]).
pub fn compile_path(path: &str) -> Vec<PathSeg> {
    path_segments(path)
        .map(|s| PathSeg {
            key: s.to_string(),
            index: s.parse::<usize>().ok(),
        })
        .collect()
}

/// [`get_path`] over pre-split segments: no per-call splitting or numeric
/// re-parsing. Same strict semantics (arrays only by numeric index).
pub fn get_path_segs<'a>(doc: &'a Value, segs: &[PathSeg]) -> Option<&'a Value> {
    let mut cur = doc;
    for seg in segs {
        match cur {
            Value::Object(m) => cur = m.get(&seg.key)?,
            Value::Array(a) => cur = a.get(seg.index?)?,
            _ => return None,
        }
    }
    Some(cur)
}

/// Zero-allocation twin of [`get_path_multi`]: visit every value reachable
/// at the pre-split path (with MongoDB's implicit array traversal) until
/// `pred` returns true. Returns whether any visited value satisfied it.
/// Visit order is identical to the order `get_path_multi` collects in, so
/// "first match" semantics agree between the two.
pub fn any_at_path(doc: &Value, segs: &[PathSeg], pred: &mut dyn FnMut(&Value) -> bool) -> bool {
    let Some((seg, rest)) = segs.split_first() else {
        return pred(doc);
    };
    match doc {
        Value::Object(m) => m.get(&seg.key).is_some_and(|v| any_at_path(v, rest, pred)),
        Value::Array(a) => {
            if let Some(v) = seg.index.and_then(|idx| a.get(idx)) {
                if any_at_path(v, rest, pred) {
                    return true;
                }
            }
            // Implicit traversal: apply the same path to each element.
            a.iter()
                .filter(|v| v.is_object())
                .any(|v| any_at_path(v, segs, pred))
        }
        _ => false,
    }
}

/// Fetch the value at `path` inside `doc`, if present.
///
/// Array elements can be addressed by numeric segment. Like MongoDB, a
/// non-numeric segment applied to an array is *not* resolved here; use
/// [`get_path_multi`] for the implicit array traversal the query matcher
/// performs.
pub fn get_path<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for seg in path_segments(path) {
        match cur {
            Value::Object(m) => cur = m.get(seg)?,
            Value::Array(a) => {
                let idx: usize = seg.parse().ok()?;
                cur = a.get(idx)?;
            }
            _ => return None,
        }
    }
    Some(cur)
}

/// Fetch all values reachable at `path`, traversing *through* arrays the
/// way MongoDB's matcher does: a path `"tags.name"` applied to a document
/// whose `tags` field is an array of objects yields the `name` of every
/// element.
pub fn get_path_multi<'a>(doc: &'a Value, path: &str) -> Vec<&'a Value> {
    let segs: Vec<&str> = path_segments(path).collect();
    let mut out = Vec::new();
    descend(doc, &segs, &mut out);
    out
}

fn descend<'a>(cur: &'a Value, segs: &[&str], out: &mut Vec<&'a Value>) {
    let Some((seg, rest)) = segs.split_first() else {
        out.push(cur);
        return;
    };
    match cur {
        Value::Object(m) => {
            if let Some(v) = m.get(seg) {
                descend(v, rest, out);
            }
        }
        Value::Array(a) => {
            if let Ok(idx) = seg.parse::<usize>() {
                if let Some(v) = a.get(idx) {
                    descend(v, rest, out);
                }
            }
            // Implicit traversal: apply the same path to each element.
            for v in a {
                if v.is_object() {
                    descend(v, segs, out);
                }
            }
        }
        _ => {}
    }
}

/// Set `path` in `doc` to `value`, creating intermediate objects as needed
/// (MongoDB `$set` semantics). Numeric segments extend arrays with nulls.
///
/// Returns an error string if the path traverses a scalar.
// mp-flow: allow(R001, R002) — the `segs[i + 1]` lookahead is guarded by `!last`, array slots are grown by the `while a.len() <= idx` loop, and the loop returns on the last segment so the trailing `unreachable!` cannot fire.
pub fn set_path(doc: &mut Value, path: &str, value: Value) -> Result<(), String> {
    let segs: Vec<&str> = path_segments(path).collect();
    if segs.is_empty() {
        return Err("empty path".into());
    }
    let mut cur = doc;
    for (i, seg) in segs.iter().enumerate() {
        let last = i == segs.len() - 1;
        match cur {
            Value::Object(m) => {
                if last {
                    m.insert((*seg).to_string(), value);
                    return Ok(());
                }
                let next_is_index = segs[i + 1].parse::<usize>().is_ok();
                let entry = m.entry((*seg).to_string()).or_insert_with(|| {
                    if next_is_index {
                        Value::Array(vec![])
                    } else {
                        Value::Object(Map::new())
                    }
                });
                if entry.is_null() {
                    *entry = if next_is_index {
                        Value::Array(vec![])
                    } else {
                        Value::Object(Map::new())
                    };
                }
                cur = entry;
            }
            Value::Array(a) => {
                let idx: usize = seg
                    .parse()
                    .map_err(|_| format!("cannot index array with '{seg}'"))?;
                while a.len() <= idx {
                    a.push(Value::Null);
                }
                if last {
                    a[idx] = value;
                    return Ok(());
                }
                if a[idx].is_null() {
                    let next_is_index = segs[i + 1].parse::<usize>().is_ok();
                    a[idx] = if next_is_index {
                        Value::Array(vec![])
                    } else {
                        Value::Object(Map::new())
                    };
                }
                cur = &mut a[idx];
            }
            other => {
                return Err(format!(
                    "cannot traverse scalar {} at segment '{seg}'",
                    type_name(other)
                ))
            }
        }
    }
    unreachable!("loop returns on last segment")
}

/// [`set_path`] over pre-split segments: the path is compiled once per
/// query ([`compile_path`]) instead of re-split and re-parsed per
/// document. Semantics are identical, including array creation when the
/// next segment is numeric and null-padding of extended arrays.
// mp-lint: allow(H001, H002, H003) — building an owned output document requires owned keys and fresh containers; the format! calls are error paths.
// mp-flow: allow(R001, R002) — same shape as `set_path`: the `segs[i + 1]` lookahead is guarded by `!last` and the loop returns on the last segment, so the trailing `unreachable!` cannot fire.
pub fn set_path_segs(doc: &mut Value, segs: &[PathSeg], value: Value) -> Result<(), String> {
    if segs.is_empty() {
        return Err("empty path".into());
    }
    let mut cur = doc;
    for (i, seg) in segs.iter().enumerate() {
        let last = i == segs.len() - 1;
        match cur {
            Value::Object(m) => {
                if last {
                    m.insert(seg.key.clone(), value);
                    return Ok(());
                }
                let next_is_index = segs[i + 1].index.is_some();
                let entry = m.entry(seg.key.clone()).or_insert_with(|| {
                    if next_is_index {
                        Value::Array(vec![])
                    } else {
                        Value::Object(Map::new())
                    }
                });
                if entry.is_null() {
                    *entry = if next_is_index {
                        Value::Array(vec![])
                    } else {
                        Value::Object(Map::new())
                    };
                }
                cur = entry;
            }
            Value::Array(a) => {
                let idx: usize = seg
                    .index
                    .ok_or_else(|| format!("cannot index array with '{}'", seg.key))?;
                while a.len() <= idx {
                    a.push(Value::Null);
                }
                if last {
                    a[idx] = value;
                    return Ok(());
                }
                if a[idx].is_null() {
                    let next_is_index = segs[i + 1].index.is_some();
                    a[idx] = if next_is_index {
                        Value::Array(vec![])
                    } else {
                        Value::Object(Map::new())
                    };
                }
                cur = &mut a[idx];
            }
            other => {
                return Err(format!(
                    "cannot traverse scalar {} at segment '{}'",
                    type_name(other),
                    seg.key
                ))
            }
        }
    }
    unreachable!("loop returns on last segment")
}

/// Remove the value at `path`. Returns the removed value if it existed.
pub fn remove_path(doc: &mut Value, path: &str) -> Option<Value> {
    let segs: Vec<&str> = path_segments(path).collect();
    let (last, parents) = segs.split_last()?;
    let mut cur = doc;
    for seg in parents {
        match cur {
            Value::Object(m) => cur = m.get_mut(seg)?,
            Value::Array(a) => {
                let idx: usize = seg.parse().ok()?;
                cur = a.get_mut(idx)?;
            }
            _ => return None,
        }
    }
    match cur {
        Value::Object(m) => m.remove(last),
        Value::Array(a) => {
            // MongoDB $unset on an array element nulls it rather than shifting.
            let idx: usize = last.parse().ok()?;
            let slot = a.get_mut(idx)?;
            Some(std::mem::replace(slot, Value::Null))
        }
        _ => None,
    }
}

/// MongoDB-style type precedence used when ordering values of mixed type.
pub fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Number(_) => 1,
        Value::String(_) => 2,
        Value::Object(_) => 3,
        Value::Array(_) => 4,
        Value::Bool(_) => 5,
    }
}

/// Human-readable type name, used by `$type` and error messages.
pub fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(n) => {
            if n.is_f64() {
                "double"
            } else {
                "int"
            }
        }
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Total ordering over JSON values, compatible with BSON comparison:
/// first by type rank, then within a type by natural order.
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    let (ra, rb) = (type_rank(a), type_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => {
            let fx = x.as_f64().unwrap_or(f64::NAN);
            let fy = y.as_f64().unwrap_or(f64::NAN);
            fx.partial_cmp(&fy).unwrap_or(Ordering::Equal)
        }
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let c = cmp_values(xi, yi);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            // Compare key-value pairs in key order.
            let mut xk: Vec<_> = x.iter().collect();
            let mut yk: Vec<_> = y.iter().collect();
            xk.sort_by(|l, r| l.0.cmp(r.0));
            yk.sort_by(|l, r| l.0.cmp(r.0));
            for ((ka, va), (kb, vb)) in xk.iter().zip(yk.iter()) {
                let c = ka.cmp(kb);
                if c != Ordering::Equal {
                    return c;
                }
                let c = cmp_values(va, vb);
                if c != Ordering::Equal {
                    return c;
                }
            }
            xk.len().cmp(&yk.len())
        }
        _ => Ordering::Equal,
    }
}

/// Equality that treats `1` and `1.0` as equal (numeric comparison), like
/// MongoDB's matcher, rather than `serde_json`'s structural equality.
pub fn values_equal(a: &Value, b: &Value) -> bool {
    cmp_values(a, b) == Ordering::Equal && type_rank(a) == type_rank(b)
}

/// Wrapper giving [`Value`] a total order + `Eq`/`Ord` so it can key a
/// `BTreeMap` (used by secondary indexes and `distinct`).
#[derive(Debug, Clone)]
pub struct OrderedValue(pub Value);

impl PartialEq for OrderedValue {
    fn eq(&self, other: &Self) -> bool {
        cmp_values(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for OrderedValue {}
impl PartialOrd for OrderedValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedValue {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_values(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn get_simple_and_nested() {
        let doc = json!({"a": 1, "b": {"c": {"d": 2}}});
        assert_eq!(get_path(&doc, "a"), Some(&json!(1)));
        assert_eq!(get_path(&doc, "b.c.d"), Some(&json!(2)));
        assert_eq!(get_path(&doc, "b.x"), None);
        assert_eq!(get_path(&doc, "a.b"), None);
    }

    #[test]
    fn get_array_index() {
        let doc = json!({"xs": [10, 20, {"y": 30}]});
        assert_eq!(get_path(&doc, "xs.1"), Some(&json!(20)));
        assert_eq!(get_path(&doc, "xs.2.y"), Some(&json!(30)));
        assert_eq!(get_path(&doc, "xs.9"), None);
    }

    #[test]
    fn multi_traverses_arrays() {
        let doc = json!({"tags": [{"n": "a"}, {"n": "b"}]});
        let vs = get_path_multi(&doc, "tags.n");
        assert_eq!(vs, vec![&json!("a"), &json!("b")]);
    }

    #[test]
    fn multi_mixed_index_and_traversal() {
        let doc = json!({"xs": [[1, 2], [3]]});
        let vs = get_path_multi(&doc, "xs.0");
        // Explicit index hits the first sub-array.
        assert!(vs.contains(&&json!([1, 2])));
    }

    #[test]
    fn set_creates_intermediates() {
        let mut doc = json!({});
        set_path(&mut doc, "a.b.c", json!(5)).unwrap();
        assert_eq!(doc, json!({"a": {"b": {"c": 5}}}));
    }

    #[test]
    fn set_extends_array() {
        let mut doc = json!({"xs": [1]});
        set_path(&mut doc, "xs.3", json!(9)).unwrap();
        assert_eq!(doc, json!({"xs": [1, null, null, 9]}));
    }

    #[test]
    fn set_through_scalar_fails() {
        let mut doc = json!({"a": 1});
        assert!(set_path(&mut doc, "a.b", json!(2)).is_err());
    }

    #[test]
    fn remove_nested() {
        let mut doc = json!({"a": {"b": 1, "c": 2}});
        assert_eq!(remove_path(&mut doc, "a.b"), Some(json!(1)));
        assert_eq!(doc, json!({"a": {"c": 2}}));
        assert_eq!(remove_path(&mut doc, "a.zzz"), None);
    }

    #[test]
    fn remove_array_element_nulls() {
        let mut doc = json!({"xs": [1, 2, 3]});
        assert_eq!(remove_path(&mut doc, "xs.1"), Some(json!(2)));
        assert_eq!(doc, json!({"xs": [1, null, 3]}));
    }

    #[test]
    fn set_segs_matches_set_path() {
        for path in ["a.b.c", "xs.3", "xs.1.y", "top"] {
            let mut a = json!({"xs": [1]});
            let mut b = a.clone();
            let r1 = set_path(&mut a, path, json!(9));
            let r2 = set_path_segs(&mut b, &compile_path(path), json!(9));
            assert_eq!(r1, r2, "result mismatch for {path}");
            assert_eq!(a, b, "doc mismatch for {path}");
        }
        // Error paths agree too: scalar traversal and empty paths.
        let mut a = json!({"a": 1});
        let mut b = a.clone();
        assert!(set_path(&mut a, "a.b", json!(2)).is_err());
        assert!(set_path_segs(&mut b, &compile_path("a.b"), json!(2)).is_err());
        assert!(set_path_segs(&mut b, &compile_path(""), json!(2)).is_err());
    }

    #[test]
    fn ordering_type_precedence() {
        // null < number < string < object < array < bool
        let vs = [
            json!(null),
            json!(3),
            json!("x"),
            json!({"a": 1}),
            json!([1]),
            json!(true),
        ];
        for w in vs.windows(2) {
            assert_eq!(cmp_values(&w[0], &w[1]), Ordering::Less);
        }
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(values_equal(&json!(1), &json!(1.0)));
        assert!(!values_equal(&json!(1), &json!(2)));
    }

    #[test]
    fn array_ordering_lexicographic() {
        assert_eq!(cmp_values(&json!([1, 2]), &json!([1, 3])), Ordering::Less);
        assert_eq!(cmp_values(&json!([1]), &json!([1, 0])), Ordering::Less);
    }
}
