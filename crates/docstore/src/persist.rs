//! Durability: snapshot + append-only journal, with crash recovery.
//!
//! The production MongoDB deployment journals writes and snapshots data
//! files; we reproduce the same recovery semantics with JSON-lines files:
//! a `snapshot.jsonl` (one line per document: `{"c": collection, "d":
//! doc}`, plus one line per index definition: `{"c": collection, "idx":
//! {"path": p, "unique": u}}`) and a `journal.jsonl` of operations
//! applied after the snapshot. Recovery loads the snapshot then replays
//! the journal.
//!
//! Every mutation the public store surface offers has a journal
//! representation — not just document CRUD but the DDL ops too (`clear`,
//! index create/drop, collection drop) — so a replayed database reaches
//! the same documents *and* the same plans/constraints as the live one.
//! `mp-lint effects` (E002) statically checks that the write-behind
//! seam ([`crate::durable::DurableDatabase`]) keeps that coverage.
//!
//! ## Crash-tail policy
//!
//! A crash can tear the final journal record (partial line, possibly
//! mid-UTF-8-code-point). Recovery distinguishes the two failure
//! shapes: an unparseable **final** record is a torn tail — skipped
//! with a warning, recovery succeeds ([`RecoveryReport::torn_tail`]) —
//! while an unparseable record **followed by more records** is real
//! corruption and recovery fails rather than silently dropping the
//! valid tail (which is what the pre-PR-7 replay did).

use crate::database::Database;
use crate::error::{Result, StoreError};
use serde_json::{json, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One journaled operation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Insert `doc` into `collection`.
    Insert { collection: String, doc: Value },
    /// Apply `update` to documents matching `filter`.
    Update {
        collection: String,
        filter: Value,
        update: Value,
        many: bool,
    },
    /// Delete documents matching `filter`.
    Delete {
        collection: String,
        filter: Value,
        many: bool,
    },
    /// Remove every document (index definitions survive).
    Clear { collection: String },
    /// Create a secondary index on `path`.
    CreateIndex {
        collection: String,
        path: String,
        unique: bool,
    },
    /// Drop the secondary index on `path`.
    DropIndex { collection: String, path: String },
    /// Drop the collection entirely.
    DropCollection { collection: String },
}

impl JournalOp {
    fn to_json(&self) -> Value {
        match self {
            JournalOp::Insert { collection, doc } => {
                json!({"op": "i", "c": collection, "d": doc})
            }
            JournalOp::Update {
                collection,
                filter,
                update,
                many,
            } => json!({"op": "u", "c": collection, "q": filter, "u": update, "m": many}),
            JournalOp::Delete {
                collection,
                filter,
                many,
            } => json!({"op": "d", "c": collection, "q": filter, "m": many}),
            JournalOp::Clear { collection } => json!({"op": "cl", "c": collection}),
            JournalOp::CreateIndex {
                collection,
                path,
                unique,
            } => json!({"op": "ci", "c": collection, "p": path, "uq": unique}),
            JournalOp::DropIndex { collection, path } => {
                json!({"op": "di", "c": collection, "p": path})
            }
            JournalOp::DropCollection { collection } => json!({"op": "dc", "c": collection}),
        }
    }

    fn from_json(v: &Value) -> Result<JournalOp> {
        let op = v["op"].as_str().unwrap_or_default();
        let collection = v["c"]
            .as_str()
            .ok_or_else(|| StoreError::Persistence("journal entry missing collection".into()))?
            .to_string();
        let index_path = |v: &Value| -> Result<String> {
            v["p"]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| StoreError::Persistence("journal index op missing path".into()))
        };
        Ok(match op {
            "i" => JournalOp::Insert {
                collection,
                doc: v["d"].clone(),
            },
            "u" => JournalOp::Update {
                collection,
                filter: v["q"].clone(),
                update: v["u"].clone(),
                many: v["m"].as_bool().unwrap_or(true),
            },
            "d" => JournalOp::Delete {
                collection,
                filter: v["q"].clone(),
                many: v["m"].as_bool().unwrap_or(true),
            },
            "cl" => JournalOp::Clear { collection },
            "ci" => JournalOp::CreateIndex {
                path: index_path(v)?,
                unique: v["uq"].as_bool().unwrap_or(false),
                collection,
            },
            "di" => JournalOp::DropIndex {
                path: index_path(v)?,
                collection,
            },
            "dc" => JournalOp::DropCollection { collection },
            other => {
                return Err(StoreError::Persistence(format!(
                    "unknown journal op '{other}'"
                )))
            }
        })
    }

    /// Apply this operation to a live database. Journal replay and the
    /// replica-set secondary apply path share this, so "what an op
    /// means" is defined exactly once.
    pub fn apply(&self, db: &Database) -> Result<()> {
        match self {
            JournalOp::Insert { collection, doc } => {
                // Re-inserting after a snapshot race is idempotent.
                let _ = db.collection(collection).insert_one(doc.clone());
            }
            JournalOp::Update {
                collection,
                filter,
                update,
                many,
            } => {
                let c = db.collection(collection);
                if *many {
                    c.update_many(filter, update)?;
                } else {
                    c.update_one(filter, update)?;
                }
            }
            JournalOp::Delete {
                collection,
                filter,
                many,
            } => {
                let c = db.collection(collection);
                if *many {
                    c.delete_many(filter)?;
                } else {
                    c.delete_one(filter)?;
                }
            }
            JournalOp::Clear { collection } => db.collection(collection).clear(),
            JournalOp::CreateIndex {
                collection,
                path,
                unique,
            } => db.collection(collection).create_index(path, *unique)?,
            JournalOp::DropIndex { collection, path } => {
                // An already-absent index (snapshot race) is a no-op.
                let _ = db.collection(collection).drop_index(path);
            }
            JournalOp::DropCollection { collection } => {
                db.drop_collection(collection);
            }
        }
        Ok(())
    }
}

/// What recovery found and did, for callers that need more than the
/// database itself (operational logging, the crash-tail tests).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Documents loaded from `snapshot.jsonl`.
    pub snapshot_docs: usize,
    /// Journal operations replayed.
    pub replayed_ops: usize,
    /// Description of a torn trailing journal record that was skipped,
    /// when the crash interrupted the final append.
    pub torn_tail: Option<String>,
}

/// Snapshot/journal manager rooted at a directory.
pub struct Persister {
    dir: PathBuf,
    journal: Option<BufWriter<File>>,
}

impl Persister {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Persistence(format!("create {}: {e}", dir.display())))?;
        Ok(Persister { dir, journal: None })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.jsonl")
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// Write a full snapshot of `db` — index definitions first, then
    /// every document — and truncate the journal.
    pub fn snapshot(&mut self, db: &Database) -> Result<()> {
        let tmp = self.dir.join("snapshot.jsonl.tmp");
        {
            let f = File::create(&tmp)
                .map_err(|e| StoreError::Persistence(format!("snapshot: {e}")))?;
            let mut w = BufWriter::new(f);
            for name in db.collection_names() {
                let coll = db.collection(&name);
                // Index definitions precede the documents so unique
                // constraints are enforced while the docs stream back in.
                for (path, unique) in coll.index_specs() {
                    let line = json!({"c": name, "idx": {"path": path, "unique": unique}});
                    writeln!(w, "{line}")
                        .map_err(|e| StoreError::Persistence(format!("snapshot write: {e}")))?;
                }
                for doc in coll.dump() {
                    // `doc` is a shared Arc handle; borrow it into the
                    // snapshot line rather than cloning the document.
                    let line = json!({"c": name, "d": *doc});
                    writeln!(w, "{line}")
                        .map_err(|e| StoreError::Persistence(format!("snapshot write: {e}")))?;
                }
            }
            w.flush()
                .map_err(|e| StoreError::Persistence(format!("snapshot flush: {e}")))?;
        }
        std::fs::rename(&tmp, self.snapshot_path())
            .map_err(|e| StoreError::Persistence(format!("snapshot rename: {e}")))?;
        // A new snapshot supersedes the journal.
        self.journal = None;
        let _ = std::fs::remove_file(self.journal_path());
        Ok(())
    }

    fn ensure_journal(&mut self) -> Result<&mut BufWriter<File>> {
        if self.journal.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.journal_path())
                .map_err(|e| StoreError::Persistence(format!("journal open: {e}")))?;
            self.journal = Some(BufWriter::new(f));
        }
        match self.journal.as_mut() {
            Some(w) => Ok(w),
            None => Err(StoreError::Persistence("journal writer unavailable".into())),
        }
    }

    /// Append one operation to the journal (opens it lazily).
    pub fn log(&mut self, op: &JournalOp) -> Result<()> {
        self.log_many(std::slice::from_ref(op))
    }

    /// Append a batch of operations with a single flush. The
    /// write-behind seam ([`crate::durable::DurableDatabase`]) journals
    /// through this so one logical mutation hits the file once.
    pub fn log_many(&mut self, ops: &[JournalOp]) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let w = self.ensure_journal()?;
        for op in ops {
            writeln!(w, "{}", op.to_json())
                .map_err(|e| StoreError::Persistence(format!("journal write: {e}")))?;
        }
        w.flush()
            .map_err(|e| StoreError::Persistence(format!("journal flush: {e}")))?;
        Ok(())
    }

    /// Rebuild a database from snapshot + journal replay. See
    /// [`Persister::recover_with_report`] for the crash-tail policy.
    pub fn recover(&self) -> Result<Database> {
        self.recover_with_report().map(|(db, _)| db)
    }

    /// Rebuild a database from snapshot + journal replay, reporting what
    /// was loaded.
    ///
    /// The journal is read at the byte level so a record torn anywhere —
    /// including mid-UTF-8-code-point — is classified precisely: an
    /// unreadable **final** record is skipped with a warning (the crash
    /// interrupted that append; its operation never completed), while an
    /// unreadable record with valid records after it means the file is
    /// corrupt and recovery fails instead of silently dropping data.
    pub fn recover_with_report(&self) -> Result<(Database, RecoveryReport)> {
        let db = Database::new();
        let mut report = RecoveryReport::default();
        if let Ok(f) = File::open(self.snapshot_path()) {
            for line in BufReader::new(f).lines() {
                let line =
                    line.map_err(|e| StoreError::Persistence(format!("snapshot read: {e}")))?;
                if line.trim().is_empty() {
                    continue;
                }
                let v: Value = serde_json::from_str(&line)
                    .map_err(|e| StoreError::Persistence(format!("snapshot parse: {e}")))?;
                let cname = v["c"]
                    .as_str()
                    .ok_or_else(|| StoreError::Persistence("snapshot entry missing c".into()))?;
                if let Some(idx) = v.get("idx") {
                    let path = idx["path"].as_str().ok_or_else(|| {
                        StoreError::Persistence("snapshot index entry missing path".into())
                    })?;
                    let unique = idx["unique"].as_bool().unwrap_or(false);
                    db.collection(cname).create_index(path, unique)?;
                } else {
                    db.collection(cname).insert_one(v["d"].clone())?;
                    report.snapshot_docs += 1;
                }
            }
        }
        if let Ok(bytes) = std::fs::read(self.journal_path()) {
            // Newline-delimited records with their byte offsets. A file
            // not ending in '\n' contributes its remainder as a final
            // (possibly torn) record.
            let mut records: Vec<(usize, &[u8])> = Vec::new();
            let mut start = 0;
            for (i, &b) in bytes.iter().enumerate() {
                if b == b'\n' {
                    // mp-flow: allow(R002) — start <= i < len by the enumerate loop
                    records.push((start, &bytes[start..i]));
                    start = i + 1;
                }
            }
            if start < bytes.len() {
                // mp-flow: allow(R002) — start < len checked on the line above
                records.push((start, &bytes[start..]));
            }
            let blank = |seg: &[u8]| seg.iter().all(u8::is_ascii_whitespace);
            let last = records.iter().rposition(|(_, seg)| !blank(seg));
            for (ri, (off, seg)) in records.iter().enumerate() {
                if blank(seg) {
                    continue;
                }
                let parsed = std::str::from_utf8(seg)
                    .map_err(|e| StoreError::Persistence(format!("not UTF-8: {e}")))
                    .and_then(|s| {
                        serde_json::from_str::<Value>(s)
                            .map_err(|e| StoreError::Persistence(format!("not JSON: {e}")))
                    })
                    .and_then(|v| JournalOp::from_json(&v));
                match parsed {
                    Ok(op) => {
                        op.apply(&db)?;
                        report.replayed_ops += 1;
                    }
                    Err(e) if Some(ri) == last => {
                        let msg = format!("skipping torn journal tail at byte offset {off}: {e}");
                        eprintln!("mp-docstore: warning: {msg}");
                        report.torn_tail = Some(msg);
                        break;
                    }
                    Err(e) => {
                        return Err(StoreError::Persistence(format!(
                            "journal corrupt at byte offset {off} (followed by further \
                             records, so not a torn tail): {e}"
                        )))
                    }
                }
            }
        }
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-docstore-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn snapshot_and_recover() {
        let dir = tmpdir("snap");
        let db = Database::new();
        db.collection("mps")
            .insert_one(json!({"_id": 1, "formula": "Fe2O3"}))
            .unwrap();
        db.collection("tasks")
            .insert_one(json!({"_id": 2, "state": "DONE"}))
            .unwrap();

        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("mps").len(), 1);
        assert_eq!(rec.collection("tasks").len(), 1);
        assert_eq!(
            rec.collection("mps")
                .find_one(&json!({"_id": 1}))
                .unwrap()
                .unwrap()["formula"],
            json!("Fe2O3")
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn snapshot_preserves_index_definitions() {
        let dir = tmpdir("snapidx");
        let db = Database::new();
        let c = db.collection("c");
        c.create_index("k", true).unwrap();
        c.create_index("grp", false).unwrap();
        c.insert_one(json!({"_id": 1, "k": 1, "grp": "a"})).unwrap();

        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(
            rec.collection("c").index_specs(),
            vec![("k".to_string(), true), ("grp".to_string(), false)]
        );
        // The unique constraint is live again, not just the plan.
        assert!(rec.collection("c").insert_one(json!({"k": 1})).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn journal_replay_after_snapshot() {
        let dir = tmpdir("journal");
        let db = Database::new();
        db.collection("c")
            .insert_one(json!({"_id": 1, "n": 0}))
            .unwrap();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        p.log(&JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 2, "n": 5}),
        })
        .unwrap();
        p.log(&JournalOp::Update {
            collection: "c".into(),
            filter: json!({"_id": 1}),
            update: json!({"$inc": {"n": 7}}),
            many: false,
        })
        .unwrap();
        p.log(&JournalOp::Delete {
            collection: "c".into(),
            filter: json!({"_id": 2}),
            many: false,
        })
        .unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("c").len(), 1);
        assert_eq!(
            rec.collection("c")
                .find_one(&json!({"_id": 1}))
                .unwrap()
                .unwrap()["n"],
            json!(7)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ddl_ops_replay_to_same_state() {
        let dir = tmpdir("ddl");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        p.log_many(&[
            JournalOp::CreateIndex {
                collection: "c".into(),
                path: "k".into(),
                unique: true,
            },
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 1, "k": 1}),
            },
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 2, "k": 2}),
            },
            JournalOp::DropIndex {
                collection: "c".into(),
                path: "k".into(),
            },
            JournalOp::Clear {
                collection: "c".into(),
            },
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 3}),
            },
            JournalOp::Insert {
                collection: "gone".into(),
                doc: json!({"_id": 9}),
            },
            JournalOp::DropCollection {
                collection: "gone".into(),
            },
        ])
        .unwrap();

        let (rec, report) = Persister::open(&dir)
            .unwrap()
            .recover_with_report()
            .unwrap();
        assert_eq!(report.replayed_ops, 8);
        assert!(report.torn_tail.is_none());
        assert_eq!(rec.collection("c").len(), 1);
        assert!(rec.collection("c").get(&json!(3)).is_some());
        assert!(rec.collection("c").index_specs().is_empty());
        assert_eq!(rec.collection_names(), vec!["c".to_string()]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_journal_line_tolerated() {
        let dir = tmpdir("torn");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();
        p.log(&JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 1}),
        })
        .unwrap();
        // Simulate a crash mid-write.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("journal.jsonl"))
            .unwrap();
        use std::io::Write as _;
        f.write_all(b"{\"op\": \"i\", \"c\": \"c\", \"d\": {\"_i")
            .unwrap();
        drop(f);

        let (rec, report) = Persister::open(&dir)
            .unwrap()
            .recover_with_report()
            .unwrap();
        assert_eq!(rec.collection("c").len(), 1);
        assert!(report.torn_tail.is_some(), "{report:?}");
        assert_eq!(report.replayed_ops, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The crash-tail contract, exhaustively: truncating the journal at
    /// every byte offset of the final record must always recover, with
    /// the tail either cleanly absent, skipped as torn, or (when only
    /// the trailing newline is missing) fully replayed. The final
    /// document carries multibyte content so some offsets tear a UTF-8
    /// code point, not just a JSON token.
    #[test]
    fn crash_tail_truncated_at_every_byte_offset_recovers() {
        let dir = tmpdir("crashtail");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();
        for (id, formula) in [(1, "Fe2O3"), (2, "LiFePO4"), (3, "α-Fe₂O₃")] {
            p.log(&JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": id, "formula": formula}),
            })
            .unwrap();
        }
        drop(p);
        let full = std::fs::read(dir.join("journal.jsonl")).unwrap();
        let tail_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap();
        for cut in tail_start..full.len() {
            std::fs::write(dir.join("journal.jsonl"), &full[..cut]).unwrap();
            let (rec, report) = Persister::open(&dir)
                .unwrap()
                .recover_with_report()
                .unwrap_or_else(|e| panic!("cut at byte {cut} must recover: {e}"));
            if cut == full.len() - 1 {
                // Only the newline is missing: the record is complete.
                assert_eq!(rec.collection("c").len(), 3, "cut {cut}");
                assert!(report.torn_tail.is_none(), "cut {cut}: {report:?}");
            } else if cut == tail_start {
                // The tail never started: a clean two-record journal.
                assert_eq!(rec.collection("c").len(), 2, "cut {cut}");
                assert!(report.torn_tail.is_none(), "cut {cut}: {report:?}");
            } else {
                assert_eq!(rec.collection("c").len(), 2, "cut {cut}");
                assert!(report.torn_tail.is_some(), "cut {cut}: {report:?}");
            }
            assert!(rec.collection("c").get(&json!(1)).is_some(), "cut {cut}");
            assert!(rec.collection("c").get(&json!(2)).is_some(), "cut {cut}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_silent_truncation() {
        let dir = tmpdir("midcorrupt");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();
        p.log(&JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 1}),
        })
        .unwrap();
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("journal.jsonl"))
                .unwrap();
            use std::io::Write as _;
            f.write_all(b"{not json at all\n").unwrap();
        }
        // A valid record *after* the bad one proves this is corruption,
        // not a torn tail — replay must refuse, not drop the tail.
        p.log(&JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 2}),
        })
        .unwrap();

        let err = Persister::open(&dir).unwrap().recover().err();
        assert!(err.is_some(), "mid-file corruption must fail recovery");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_empty_dir_gives_empty_db() {
        let dir = tmpdir("empty");
        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert!(rec.collection_names().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
