//! Durability: snapshot + append-only journal, with crash recovery.
//!
//! The production MongoDB deployment journals writes and snapshots data
//! files; we reproduce the same recovery semantics with JSON-lines files:
//! a `snapshot.jsonl` (one line per document: `{"c": collection, "d":
//! doc}`) plus a `journal.jsonl` of operations applied after the
//! snapshot. Recovery loads the snapshot then replays the journal.

use crate::database::Database;
use crate::error::{Result, StoreError};
use serde_json::{json, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One journaled operation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Insert `doc` into `collection`.
    Insert { collection: String, doc: Value },
    /// Apply `update` to documents matching `filter`.
    Update {
        collection: String,
        filter: Value,
        update: Value,
        many: bool,
    },
    /// Delete documents matching `filter`.
    Delete {
        collection: String,
        filter: Value,
        many: bool,
    },
}

impl JournalOp {
    fn to_json(&self) -> Value {
        match self {
            JournalOp::Insert { collection, doc } => {
                json!({"op": "i", "c": collection, "d": doc})
            }
            JournalOp::Update {
                collection,
                filter,
                update,
                many,
            } => json!({"op": "u", "c": collection, "q": filter, "u": update, "m": many}),
            JournalOp::Delete {
                collection,
                filter,
                many,
            } => json!({"op": "d", "c": collection, "q": filter, "m": many}),
        }
    }

    fn from_json(v: &Value) -> Result<JournalOp> {
        let op = v["op"].as_str().unwrap_or_default();
        let collection = v["c"]
            .as_str()
            .ok_or_else(|| StoreError::Persistence("journal entry missing collection".into()))?
            .to_string();
        Ok(match op {
            "i" => JournalOp::Insert {
                collection,
                doc: v["d"].clone(),
            },
            "u" => JournalOp::Update {
                collection,
                filter: v["q"].clone(),
                update: v["u"].clone(),
                many: v["m"].as_bool().unwrap_or(true),
            },
            "d" => JournalOp::Delete {
                collection,
                filter: v["q"].clone(),
                many: v["m"].as_bool().unwrap_or(true),
            },
            other => {
                return Err(StoreError::Persistence(format!(
                    "unknown journal op '{other}'"
                )))
            }
        })
    }
}

/// Snapshot/journal manager rooted at a directory.
pub struct Persister {
    dir: PathBuf,
    journal: Option<BufWriter<File>>,
}

impl Persister {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Persistence(format!("create {}: {e}", dir.display())))?;
        Ok(Persister { dir, journal: None })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.jsonl")
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// Write a full snapshot of `db` and truncate the journal.
    pub fn snapshot(&mut self, db: &Database) -> Result<()> {
        let tmp = self.dir.join("snapshot.jsonl.tmp");
        {
            let f = File::create(&tmp)
                .map_err(|e| StoreError::Persistence(format!("snapshot: {e}")))?;
            let mut w = BufWriter::new(f);
            for name in db.collection_names() {
                let coll = db.collection(&name);
                for doc in coll.dump() {
                    // `doc` is a shared Arc handle; borrow it into the
                    // snapshot line rather than cloning the document.
                    let line = json!({"c": name, "d": *doc});
                    writeln!(w, "{line}")
                        .map_err(|e| StoreError::Persistence(format!("snapshot write: {e}")))?;
                }
            }
            w.flush()
                .map_err(|e| StoreError::Persistence(format!("snapshot flush: {e}")))?;
        }
        std::fs::rename(&tmp, self.snapshot_path())
            .map_err(|e| StoreError::Persistence(format!("snapshot rename: {e}")))?;
        // A new snapshot supersedes the journal.
        self.journal = None;
        let _ = std::fs::remove_file(self.journal_path());
        Ok(())
    }

    /// Append an operation to the journal (opens it lazily).
    pub fn log(&mut self, op: &JournalOp) -> Result<()> {
        if self.journal.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.journal_path())
                .map_err(|e| StoreError::Persistence(format!("journal open: {e}")))?;
            self.journal = Some(BufWriter::new(f));
        }
        let w = self.journal.as_mut().expect("opened above");
        writeln!(w, "{}", op.to_json())
            .map_err(|e| StoreError::Persistence(format!("journal write: {e}")))?;
        w.flush()
            .map_err(|e| StoreError::Persistence(format!("journal flush: {e}")))?;
        Ok(())
    }

    /// Rebuild a database from snapshot + journal replay. Torn trailing
    /// journal lines (partial writes at crash) are tolerated and skipped.
    pub fn recover(&self) -> Result<Database> {
        let db = Database::new();
        if let Ok(f) = File::open(self.snapshot_path()) {
            for line in BufReader::new(f).lines() {
                let line =
                    line.map_err(|e| StoreError::Persistence(format!("snapshot read: {e}")))?;
                if line.trim().is_empty() {
                    continue;
                }
                let v: Value = serde_json::from_str(&line)
                    .map_err(|e| StoreError::Persistence(format!("snapshot parse: {e}")))?;
                let cname = v["c"]
                    .as_str()
                    .ok_or_else(|| StoreError::Persistence("snapshot entry missing c".into()))?;
                db.collection(cname).insert_one(v["d"].clone())?;
            }
        }
        if let Ok(f) = File::open(self.journal_path()) {
            for line in BufReader::new(f).lines() {
                let line =
                    line.map_err(|e| StoreError::Persistence(format!("journal read: {e}")))?;
                if line.trim().is_empty() {
                    continue;
                }
                // A torn final line parses as invalid JSON: stop replay there.
                let v: Value = match serde_json::from_str(&line) {
                    Ok(v) => v,
                    Err(_) => break,
                };
                match JournalOp::from_json(&v)? {
                    JournalOp::Insert { collection, doc } => {
                        // Re-inserting after a snapshot race is idempotent.
                        let _ = db.collection(&collection).insert_one(doc);
                    }
                    JournalOp::Update {
                        collection,
                        filter,
                        update,
                        many,
                    } => {
                        let c = db.collection(&collection);
                        if many {
                            c.update_many(&filter, &update)?;
                        } else {
                            c.update_one(&filter, &update)?;
                        }
                    }
                    JournalOp::Delete {
                        collection,
                        filter,
                        many,
                    } => {
                        let c = db.collection(&collection);
                        if many {
                            c.delete_many(&filter)?;
                        } else {
                            c.delete_one(&filter)?;
                        }
                    }
                }
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-docstore-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn snapshot_and_recover() {
        let dir = tmpdir("snap");
        let db = Database::new();
        db.collection("mps")
            .insert_one(json!({"_id": 1, "formula": "Fe2O3"}))
            .unwrap();
        db.collection("tasks")
            .insert_one(json!({"_id": 2, "state": "DONE"}))
            .unwrap();

        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("mps").len(), 1);
        assert_eq!(rec.collection("tasks").len(), 1);
        assert_eq!(
            rec.collection("mps")
                .find_one(&json!({"_id": 1}))
                .unwrap()
                .unwrap()["formula"],
            json!("Fe2O3")
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn journal_replay_after_snapshot() {
        let dir = tmpdir("journal");
        let db = Database::new();
        db.collection("c")
            .insert_one(json!({"_id": 1, "n": 0}))
            .unwrap();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        p.log(&JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 2, "n": 5}),
        })
        .unwrap();
        p.log(&JournalOp::Update {
            collection: "c".into(),
            filter: json!({"_id": 1}),
            update: json!({"$inc": {"n": 7}}),
            many: false,
        })
        .unwrap();
        p.log(&JournalOp::Delete {
            collection: "c".into(),
            filter: json!({"_id": 2}),
            many: false,
        })
        .unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("c").len(), 1);
        assert_eq!(
            rec.collection("c")
                .find_one(&json!({"_id": 1}))
                .unwrap()
                .unwrap()["n"],
            json!(7)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_journal_line_tolerated() {
        let dir = tmpdir("torn");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();
        p.log(&JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 1}),
        })
        .unwrap();
        // Simulate a crash mid-write.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("journal.jsonl"))
            .unwrap();
        use std::io::Write as _;
        f.write_all(b"{\"op\": \"i\", \"c\": \"c\", \"d\": {\"_i")
            .unwrap();
        drop(f);

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("c").len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_empty_dir_gives_empty_db() {
        let dir = tmpdir("empty");
        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert!(rec.collection_names().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
