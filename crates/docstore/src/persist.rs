//! Durability: snapshot + checksummed write-ahead log, with crash
//! recovery and group commit.
//!
//! The production MongoDB deployment journals writes ahead of the data
//! files; we reproduce the same recovery semantics with two files per
//! store directory: a `snapshot.jsonl` (one line per document: `{"c":
//! collection, "d": doc}`, plus one line per index definition: `{"c":
//! collection, "idx": {"path": p, "unique": u}}`) and a `journal.wal` of
//! CRC32-framed operation records appended *before* each operation is
//! applied in memory. Recovery loads the snapshot then replays the WAL.
//!
//! ## Frame format
//!
//! Each WAL record is a binary frame:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes of JSON]
//! ```
//!
//! where `crc32` is the IEEE CRC-32 of the payload. The checksum turns
//! every torn or flipped byte into a *detected* bad frame, so recovery
//! can truncate the replay point at the first bad frame instead of
//! guessing where a JSON line was supposed to end (the PR 7 JSON-lines
//! journal could only classify the final record).
//!
//! ## Recovery policy
//!
//! Frames are decoded in order ([`decode_frame`], the checksum gate) and
//! each decoded op is applied ([`JournalOp::apply`]) — verify strictly
//! before apply, which `mp-lint order` proves as O005.
//!
//! * A frame that runs past end-of-file is a **torn tail**: the crash
//!   interrupted that append, its operation was never acknowledged, and
//!   recovery skips it ([`RecoveryReport::torn_tail`]).
//! * A complete frame whose checksum mismatches is **corruption**: the
//!   replay point truncates there ([`RecoveryReport::corruption`]) —
//!   with length-prefixed framing nothing after a bad frame can be
//!   trusted, so the tail is dropped *by design*, not silently.
//! * In both cases the file is physically truncated to the last good
//!   frame ([`RecoveryReport::replay_lsn`]) so subsequent appends start
//!   from a clean boundary. (The PR 7 journal re-appended after a torn
//!   tail, which turned the next recovery into a hard mid-file error.)
//! * A checksum-valid frame that fails to parse is a hard error: the
//!   CRC proves we wrote those bytes, so the store itself is buggy.
//!
//! ## Group commit
//!
//! Appends go to the OS (`BufWriter` + flush) under the WAL lock;
//! durability comes from a separate [`GroupCommit`] barrier. A
//! committer calls [`GroupCommit::sync_to`] with the LSN (byte offset)
//! its append reached: whoever acquires the sync lock first fsyncs once
//! for *every* committer queued behind it, and the queued committers
//! observe their LSN already durable and return without touching the
//! disk. Batching emerges from contention — no timers, no threads.
//!
//! Replay determinism: [`JournalOp::apply`] is best-effort (a failing
//! op is skipped). The live write-ahead path journals an operation
//! before applying it, so an op that failed live (duplicate key, unique
//! violation) is in the WAL; replay reaches the same pre-op state, fails
//! the same deterministic way, and converges on the live outcome.

use crate::database::Database;
use crate::error::{Result, StoreError};
use mp_sync::{LockRank, OrderedMutex};
use serde_json::{json, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One journaled operation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Insert `doc` into `collection`.
    Insert { collection: String, doc: Value },
    /// Apply `update` to documents matching `filter`.
    Update {
        collection: String,
        filter: Value,
        update: Value,
        many: bool,
    },
    /// Delete documents matching `filter`.
    Delete {
        collection: String,
        filter: Value,
        many: bool,
    },
    /// Remove every document (index definitions survive).
    Clear { collection: String },
    /// Create a secondary index on `path`.
    CreateIndex {
        collection: String,
        path: String,
        unique: bool,
    },
    /// Drop the secondary index on `path`.
    DropIndex { collection: String, path: String },
    /// Drop the collection entirely.
    DropCollection { collection: String },
}

impl JournalOp {
    fn to_json(&self) -> Value {
        match self {
            JournalOp::Insert { collection, doc } => {
                json!({"op": "i", "c": collection, "d": doc})
            }
            JournalOp::Update {
                collection,
                filter,
                update,
                many,
            } => json!({"op": "u", "c": collection, "q": filter, "u": update, "m": many}),
            JournalOp::Delete {
                collection,
                filter,
                many,
            } => json!({"op": "d", "c": collection, "q": filter, "m": many}),
            JournalOp::Clear { collection } => json!({"op": "cl", "c": collection}),
            JournalOp::CreateIndex {
                collection,
                path,
                unique,
            } => json!({"op": "ci", "c": collection, "p": path, "uq": unique}),
            JournalOp::DropIndex { collection, path } => {
                json!({"op": "di", "c": collection, "p": path})
            }
            JournalOp::DropCollection { collection } => json!({"op": "dc", "c": collection}),
        }
    }

    fn from_json(v: &Value) -> Result<JournalOp> {
        let op = v["op"].as_str().unwrap_or_default();
        let collection = v["c"]
            .as_str()
            .ok_or_else(|| StoreError::Persistence("journal entry missing collection".into()))?
            .to_string();
        let index_path = |v: &Value| -> Result<String> {
            v["p"]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| StoreError::Persistence("journal index op missing path".into()))
        };
        Ok(match op {
            "i" => JournalOp::Insert {
                collection,
                doc: v["d"].clone(),
            },
            "u" => JournalOp::Update {
                collection,
                filter: v["q"].clone(),
                update: v["u"].clone(),
                many: v["m"].as_bool().unwrap_or(true),
            },
            "d" => JournalOp::Delete {
                collection,
                filter: v["q"].clone(),
                many: v["m"].as_bool().unwrap_or(true),
            },
            "cl" => JournalOp::Clear { collection },
            "ci" => JournalOp::CreateIndex {
                path: index_path(v)?,
                unique: v["uq"].as_bool().unwrap_or(false),
                collection,
            },
            "di" => JournalOp::DropIndex {
                path: index_path(v)?,
                collection,
            },
            "dc" => JournalOp::DropCollection { collection },
            other => {
                return Err(StoreError::Persistence(format!(
                    "unknown journal op '{other}'"
                )))
            }
        })
    }

    /// Apply this operation to a live database, best-effort. WAL replay
    /// and the replica-set secondary apply path share this, so "what an
    /// op means" is defined exactly once.
    ///
    /// A failing op is *skipped*, never an error: the write-ahead seam
    /// journals before it applies, so the WAL legitimately contains
    /// operations that failed live (a duplicate `_id`, a unique-index
    /// violation). Replay reaches the same pre-op state and the op fails
    /// the same deterministic way — propagating it would turn an
    /// ordinary rejected write into an unrecoverable store.
    pub fn apply(&self, db: &Database) -> Result<()> {
        match self {
            JournalOp::Insert { collection, doc } => {
                let _ = db.collection(collection).insert_one(doc.clone());
            }
            JournalOp::Update {
                collection,
                filter,
                update,
                many,
            } => {
                let c = db.collection(collection);
                if *many {
                    let _ = c.update_many(filter, update);
                } else {
                    let _ = c.update_one(filter, update);
                }
            }
            JournalOp::Delete {
                collection,
                filter,
                many,
            } => {
                let c = db.collection(collection);
                if *many {
                    let _ = c.delete_many(filter);
                } else {
                    let _ = c.delete_one(filter);
                }
            }
            JournalOp::Clear { collection } => db.collection(collection).clear(),
            JournalOp::CreateIndex {
                collection,
                path,
                unique,
            } => {
                let _ = db.collection(collection).create_index(path, *unique);
            }
            JournalOp::DropIndex { collection, path } => {
                let _ = db.collection(collection).drop_index(path);
            }
            JournalOp::DropCollection { collection } => {
                db.drop_collection(collection);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE) and the frame codec.
// ---------------------------------------------------------------------

/// IEEE CRC-32 lookup table, built at compile time (reflected
/// polynomial 0xEDB88320 — the zlib/gzip/`cksum -o 3` checksum).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encode one WAL frame: `[len u32 LE][crc32 u32 LE][payload]`.
///
/// This is the checksum-framing gate `mp-lint order` proves (O003):
/// every byte the journal appends must pass through here.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Outcome of decoding the frame at one offset.
pub enum FrameDecode<'a> {
    /// A checksum-valid frame; `next` is the offset just past it.
    Frame { payload: &'a [u8], next: usize },
    /// The frame runs past end-of-file: a torn tail.
    Torn(String),
    /// A complete frame whose checksum mismatches: corruption.
    Corrupt(String),
}

/// Decode (and checksum-verify) the frame starting at `off`. The
/// recovery loop calls this before any op is applied — the O005
/// verify-before-apply gate.
pub fn decode_frame(bytes: &[u8], off: usize) -> FrameDecode<'_> {
    let n = bytes.len();
    if off + 8 > n {
        return FrameDecode::Torn(format!(
            "frame header torn at byte {off} ({} of 8 header bytes present)",
            n - off
        ));
    }
    // mp-flow: allow(R002) — off + 8 <= n checked above
    let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap_or_default()) as usize;
    let want = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap_or_default());
    let end = off + 8 + len;
    if end > n {
        return FrameDecode::Torn(format!(
            "frame at byte {off} claims {len} payload bytes but only {} remain",
            n - off - 8
        ));
    }
    // mp-flow: allow(R002) — end <= n checked above
    let payload = &bytes[off + 8..end];
    let got = crc32(payload);
    if got != want {
        return FrameDecode::Corrupt(format!(
            "frame at byte {off}: crc32 {got:08x} != recorded {want:08x}"
        ));
    }
    FrameDecode::Frame { payload, next: end }
}

// ---------------------------------------------------------------------
// Group commit.
// ---------------------------------------------------------------------

/// State behind the sync lock: the WAL file handle to fsync (absent
/// until the first append after open or checkpoint rotation).
struct SyncState {
    file: Option<File>,
}

/// The durability barrier shared by every committer of one WAL.
///
/// LSNs are byte offsets into the current WAL generation. `appended`
/// advances under the WAL lock as frames reach the OS; `durable`
/// advances when an fsync returns. `sync_to(lsn)` is the barrier: it
/// returns once `lsn` is durable, fsyncing at most once — the committer
/// that wins the sync lock covers everyone queued behind it (their
/// re-check sees `durable` already past their LSN). Checkpoint rotation
/// resets the generation; a committer whose barrier straddles the
/// rotation is already covered by the snapshot, which captured its
/// applied op before truncating the WAL.
pub struct GroupCommit {
    inner: OrderedMutex<SyncState>,
    /// Bytes appended (flushed to the OS) in this WAL generation.
    appended: AtomicU64,
    /// Bytes proven durable by an fsync in this WAL generation.
    durable: AtomicU64,
    /// Actual `sync_data` calls issued (for the batching tests/bench).
    syncs: AtomicU64,
    /// `sync_to` barriers requested.
    commits: AtomicU64,
}

impl GroupCommit {
    fn new() -> Self {
        GroupCommit {
            inner: OrderedMutex::new(LockRank::JournalSync, SyncState { file: None }),
            appended: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    /// Install the WAL file handle for a new generation whose first
    /// `len` bytes are already durable.
    fn register(&self, file: File, len: u64) {
        let mut st = self.inner.lock();
        st.file = Some(file);
        self.appended.store(len, Ordering::SeqCst);
        self.durable.store(len, Ordering::SeqCst);
    }

    /// Start a new generation (checkpoint rotated the WAL away).
    fn reset(&self) {
        let mut st = self.inner.lock();
        st.file = None;
        self.appended.store(0, Ordering::SeqCst);
        self.durable.store(0, Ordering::SeqCst);
    }

    /// Record that the WAL now holds `len` OS-flushed bytes.
    fn note_appended(&self, len: u64) {
        self.appended.fetch_max(len, Ordering::SeqCst);
    }

    /// Block until byte offset `lsn` of the current WAL generation is
    /// durable. One fsync covers every committer queued on the lock.
    // mp-lint: allow(E003) — group commit: one leader fsyncs for every committer queued behind this mutex; the wait *is* the batching, so the I/O belongs under the guard
    pub fn sync_to(&self, lsn: u64) -> Result<()> {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if self.durable.load(Ordering::SeqCst) >= lsn {
            return Ok(()); // someone else's fsync already covered us
        }
        let st = self.inner.lock();
        if self.durable.load(Ordering::SeqCst) >= lsn {
            return Ok(()); // the leader ahead of us covered our LSN
        }
        // We are the leader: capture how far appends have reached, then
        // one sync_data covers this barrier and everyone queued behind.
        let target = self.appended.load(Ordering::SeqCst);
        if let Some(f) = st.file.as_ref() {
            f.sync_data()
                .map_err(|e| StoreError::Persistence(format!("wal fsync: {e}")))?;
            self.syncs.fetch_add(1, Ordering::Relaxed);
            self.durable.fetch_max(target, Ordering::SeqCst);
        }
        // No file: the generation rotated under us, which means a
        // checkpoint snapshot (itself fsynced) superseded this LSN.
        Ok(())
    }

    /// (`sync_to` barriers requested, actual fsyncs issued). The gap is
    /// the group-commit batching win.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.syncs.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------
// Recovery report and the persister.
// ---------------------------------------------------------------------

/// What recovery found and did, for callers that need more than the
/// database itself (operational logging, the crash-matrix tests).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Documents loaded from `snapshot.jsonl`.
    pub snapshot_docs: usize,
    /// WAL operations replayed.
    pub replayed_ops: usize,
    /// Description of a torn trailing frame that was skipped, when the
    /// crash interrupted the final append.
    pub torn_tail: Option<String>,
    /// Description of a checksum-failed frame that truncated the replay
    /// point mid-file.
    pub corruption: Option<String>,
    /// Byte offset of the end of the last good frame; the WAL is
    /// physically truncated here so new appends start clean.
    pub replay_lsn: u64,
}

/// Snapshot/WAL manager rooted at a directory.
pub struct Persister {
    dir: PathBuf,
    wal: Option<BufWriter<File>>,
    /// Bytes in the current WAL generation (replayed + appended).
    wal_len: u64,
    sync: Arc<GroupCommit>,
}

impl Persister {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Persistence(format!("create {}: {e}", dir.display())))?;
        Ok(Persister {
            dir,
            wal: None,
            wal_len: 0,
            sync: Arc::new(GroupCommit::new()),
        })
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.jsonl")
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("journal.wal")
    }

    /// The shared durability barrier for this WAL.
    pub fn sync_handle(&self) -> Arc<GroupCommit> {
        Arc::clone(&self.sync)
    }

    /// Bytes in the current WAL generation (compaction trigger input).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Write a full snapshot of `db` — index definitions first, then
    /// every document — fsync it, and truncate the WAL.
    pub fn snapshot(&mut self, db: &Database) -> Result<()> {
        let tmp = self.dir.join("snapshot.jsonl.tmp");
        {
            let f = File::create(&tmp)
                .map_err(|e| StoreError::Persistence(format!("snapshot: {e}")))?;
            let mut w = BufWriter::new(f);
            for name in db.collection_names() {
                let coll = db.collection(&name);
                // Index definitions precede the documents so unique
                // constraints are enforced while the docs stream back in.
                for (path, unique) in coll.index_specs() {
                    let line = json!({"c": name, "idx": {"path": path, "unique": unique}});
                    writeln!(w, "{line}")
                        .map_err(|e| StoreError::Persistence(format!("snapshot write: {e}")))?;
                }
                for doc in coll.dump() {
                    // `doc` is a shared Arc handle; borrow it into the
                    // snapshot line rather than cloning the document.
                    let line = json!({"c": name, "d": *doc});
                    writeln!(w, "{line}")
                        .map_err(|e| StoreError::Persistence(format!("snapshot write: {e}")))?;
                }
            }
            w.flush()
                .map_err(|e| StoreError::Persistence(format!("snapshot flush: {e}")))?;
            // The rename only publishes a durable snapshot: sync the
            // data before the name swap, or a crash could leave a named
            // snapshot full of unwritten pages — and no WAL to cover it.
            w.get_ref()
                .sync_data()
                .map_err(|e| StoreError::Persistence(format!("snapshot fsync: {e}")))?;
        }
        std::fs::rename(&tmp, self.snapshot_path())
            .map_err(|e| StoreError::Persistence(format!("snapshot rename: {e}")))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all(); // persist the rename itself
        }
        // A new snapshot supersedes the WAL: start a fresh generation.
        self.wal = None;
        self.wal_len = 0;
        self.sync.reset();
        let _ = std::fs::remove_file(self.wal_path());
        Ok(())
    }

    fn ensure_wal(&mut self) -> Result<&mut BufWriter<File>> {
        if self.wal.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.wal_path())
                .map_err(|e| StoreError::Persistence(format!("wal open: {e}")))?;
            let dup = f
                .try_clone()
                .map_err(|e| StoreError::Persistence(format!("wal handle clone: {e}")))?;
            self.sync.register(dup, self.wal_len);
            self.wal = Some(BufWriter::new(f));
        }
        match self.wal.as_mut() {
            Some(w) => Ok(w),
            None => Err(StoreError::Persistence("wal writer unavailable".into())),
        }
    }

    /// Append a batch of operations as checksummed frames and flush
    /// them to the OS. Returns the LSN (byte offset past the batch) to
    /// hand to [`GroupCommit::sync_to`] — the write-ahead seam
    /// ([`crate::durable::DurableDatabase`]) appends through this
    /// *before* applying the ops in memory.
    pub fn append_ops(&mut self, ops: &[JournalOp]) -> Result<u64> {
        if ops.is_empty() {
            return Ok(self.wal_len);
        }
        let mut batch = Vec::new();
        for op in ops {
            batch.extend_from_slice(&frame_record(op.to_json().to_string().as_bytes()));
        }
        let w = self.ensure_wal()?;
        w.write_all(&batch)
            .map_err(|e| StoreError::Persistence(format!("wal write: {e}")))?;
        w.flush()
            .map_err(|e| StoreError::Persistence(format!("wal flush: {e}")))?;
        self.wal_len += batch.len() as u64;
        self.sync.note_appended(self.wal_len);
        Ok(self.wal_len)
    }

    /// Rebuild a database from snapshot + WAL replay. See
    /// [`Persister::recover_with_report`] for the bad-frame policy.
    pub fn recover(&mut self) -> Result<Database> {
        self.recover_with_report().map(|(db, _)| db)
    }

    /// Rebuild a database from snapshot + WAL replay, reporting what
    /// was loaded.
    ///
    /// Each frame is checksum-verified ([`decode_frame`]) before its op
    /// is applied. A frame running past end-of-file is a torn tail; a
    /// complete frame with a bad checksum is corruption; either one
    /// truncates the replay point (and the file) at the last good
    /// frame. A checksum-valid frame that fails to parse is a hard
    /// error — the CRC proves the store wrote those bytes itself.
    pub fn recover_with_report(&mut self) -> Result<(Database, RecoveryReport)> {
        let db = Database::new();
        let mut report = RecoveryReport::default();
        if let Ok(f) = File::open(self.snapshot_path()) {
            for line in BufReader::new(f).lines() {
                let line =
                    line.map_err(|e| StoreError::Persistence(format!("snapshot read: {e}")))?;
                if line.trim().is_empty() {
                    continue;
                }
                let v: Value = serde_json::from_str(&line)
                    .map_err(|e| StoreError::Persistence(format!("snapshot parse: {e}")))?;
                let cname = v["c"]
                    .as_str()
                    .ok_or_else(|| StoreError::Persistence("snapshot entry missing c".into()))?;
                if let Some(idx) = v.get("idx") {
                    let path = idx["path"].as_str().ok_or_else(|| {
                        StoreError::Persistence("snapshot index entry missing path".into())
                    })?;
                    let unique = idx["unique"].as_bool().unwrap_or(false);
                    db.collection(cname).create_index(path, unique)?;
                } else {
                    db.collection(cname).insert_one(v["d"].clone())?;
                    report.snapshot_docs += 1;
                }
            }
        }
        if let Ok(bytes) = std::fs::read(self.wal_path()) {
            let mut off = 0usize;
            while off < bytes.len() {
                match decode_frame(&bytes, off) {
                    FrameDecode::Frame { payload, next } => {
                        let op = std::str::from_utf8(payload)
                            .map_err(|e| StoreError::Persistence(format!("wal not UTF-8: {e}")))
                            .and_then(|s| {
                                serde_json::from_str::<Value>(s).map_err(|e| {
                                    StoreError::Persistence(format!("wal not JSON: {e}"))
                                })
                            })
                            .and_then(|v| JournalOp::from_json(&v))
                            .map_err(|e| {
                                StoreError::Persistence(format!(
                                    "wal frame at byte {off} passed its checksum but failed to \
                                     parse — the store wrote a bad record: {e}"
                                ))
                            })?;
                        op.apply(&db)?;
                        report.replayed_ops += 1;
                        off = next;
                    }
                    FrameDecode::Torn(msg) => {
                        let msg = format!("skipping torn wal tail: {msg}");
                        eprintln!("mp-docstore: warning: {msg}");
                        report.torn_tail = Some(msg);
                        break;
                    }
                    FrameDecode::Corrupt(msg) => {
                        let msg = format!("truncating wal replay at first corrupt frame: {msg}");
                        eprintln!("mp-docstore: warning: {msg}");
                        report.corruption = Some(msg);
                        break;
                    }
                }
            }
            report.replay_lsn = off as u64;
            if (off as u64) < bytes.len() as u64 {
                // Physically drop the bad tail so the next append does
                // not bury a torn frame mid-file (where the next
                // recovery would read it as corruption).
                let f = OpenOptions::new()
                    .write(true)
                    .open(self.wal_path())
                    .map_err(|e| StoreError::Persistence(format!("wal truncate open: {e}")))?;
                f.set_len(off as u64)
                    .map_err(|e| StoreError::Persistence(format!("wal truncate: {e}")))?;
                f.sync_data()
                    .map_err(|e| StoreError::Persistence(format!("wal truncate fsync: {e}")))?;
            }
        }
        self.wal_len = report.replay_lsn;
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-docstore-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let frame = frame_record(b"hello");
        match decode_frame(&frame, 0) {
            FrameDecode::Frame { payload, next } => {
                assert_eq!(payload, b"hello");
                assert_eq!(next, frame.len());
            }
            _ => panic!("clean frame must decode"),
        }
    }

    #[test]
    fn snapshot_and_recover() {
        let dir = tmpdir("snap");
        let db = Database::new();
        db.collection("mps")
            .insert_one(json!({"_id": 1, "formula": "Fe2O3"}))
            .unwrap();
        db.collection("tasks")
            .insert_one(json!({"_id": 2, "state": "DONE"}))
            .unwrap();

        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("mps").len(), 1);
        assert_eq!(rec.collection("tasks").len(), 1);
        assert_eq!(
            rec.collection("mps")
                .find_one(&json!({"_id": 1}))
                .unwrap()
                .unwrap()["formula"],
            json!("Fe2O3")
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn snapshot_preserves_index_definitions() {
        let dir = tmpdir("snapidx");
        let db = Database::new();
        let c = db.collection("c");
        c.create_index("k", true).unwrap();
        c.create_index("grp", false).unwrap();
        c.insert_one(json!({"_id": 1, "k": 1, "grp": "a"})).unwrap();

        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(
            rec.collection("c").index_specs(),
            vec![("k".to_string(), true), ("grp".to_string(), false)]
        );
        // The unique constraint is live again, not just the plan.
        assert!(rec.collection("c").insert_one(json!({"k": 1})).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wal_replay_after_snapshot() {
        let dir = tmpdir("journal");
        let db = Database::new();
        db.collection("c")
            .insert_one(json!({"_id": 1, "n": 0}))
            .unwrap();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        p.append_ops(&[
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 2, "n": 5}),
            },
            JournalOp::Update {
                collection: "c".into(),
                filter: json!({"_id": 1}),
                update: json!({"$inc": {"n": 7}}),
                many: false,
            },
            JournalOp::Delete {
                collection: "c".into(),
                filter: json!({"_id": 2}),
                many: false,
            },
        ])
        .unwrap();

        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert_eq!(rec.collection("c").len(), 1);
        assert_eq!(
            rec.collection("c")
                .find_one(&json!({"_id": 1}))
                .unwrap()
                .unwrap()["n"],
            json!(7)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_returns_monotonic_lsn_equal_to_file_length() {
        let dir = tmpdir("lsn");
        let mut p = Persister::open(&dir).unwrap();
        let l1 = p
            .append_ops(&[JournalOp::Clear {
                collection: "c".into(),
            }])
            .unwrap();
        let l2 = p
            .append_ops(&[JournalOp::Clear {
                collection: "c".into(),
            }])
            .unwrap();
        assert!(l2 > l1);
        assert_eq!(
            l2,
            std::fs::metadata(dir.join("journal.wal")).unwrap().len()
        );
        assert_eq!(p.wal_len(), l2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn group_commit_fast_path_skips_redundant_fsync() {
        let dir = tmpdir("gc");
        let mut p = Persister::open(&dir).unwrap();
        let lsn = p
            .append_ops(&[JournalOp::Clear {
                collection: "c".into(),
            }])
            .unwrap();
        let sync = p.sync_handle();
        sync.sync_to(lsn).unwrap();
        sync.sync_to(lsn).unwrap(); // already durable: no second fsync
        let (commits, syncs) = sync.stats();
        assert_eq!(commits, 2);
        assert_eq!(syncs, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ddl_ops_replay_to_same_state() {
        let dir = tmpdir("ddl");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();

        p.append_ops(&[
            JournalOp::CreateIndex {
                collection: "c".into(),
                path: "k".into(),
                unique: true,
            },
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 1, "k": 1}),
            },
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 2, "k": 2}),
            },
            JournalOp::DropIndex {
                collection: "c".into(),
                path: "k".into(),
            },
            JournalOp::Clear {
                collection: "c".into(),
            },
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 3}),
            },
            JournalOp::Insert {
                collection: "gone".into(),
                doc: json!({"_id": 9}),
            },
            JournalOp::DropCollection {
                collection: "gone".into(),
            },
        ])
        .unwrap();

        let (rec, report) = Persister::open(&dir)
            .unwrap()
            .recover_with_report()
            .unwrap();
        assert_eq!(report.replayed_ops, 8);
        assert!(report.torn_tail.is_none());
        assert!(report.corruption.is_none());
        assert_eq!(rec.collection("c").len(), 1);
        assert!(rec.collection("c").get(&json!(3)).is_some());
        assert!(rec.collection("c").index_specs().is_empty());
        assert_eq!(rec.collection_names(), vec!["c".to_string()]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_wal_tail_tolerated_and_truncated() {
        let dir = tmpdir("torn");
        let db = Database::new();
        let mut p = Persister::open(&dir).unwrap();
        p.snapshot(&db).unwrap();
        let good_lsn = p
            .append_ops(&[JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 1}),
            }])
            .unwrap();
        // Simulate a crash mid-append: half a frame of a second insert.
        let frame = frame_record(
            JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 2}),
            }
            .to_json()
            .to_string()
            .as_bytes(),
        );
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("journal.wal"))
                .unwrap();
            use std::io::Write as _;
            f.write_all(&frame[..frame.len() / 2]).unwrap();
        }

        let (rec, report) = Persister::open(&dir)
            .unwrap()
            .recover_with_report()
            .unwrap();
        assert_eq!(rec.collection("c").len(), 1);
        assert!(report.torn_tail.is_some(), "{report:?}");
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(report.replay_lsn, good_lsn);
        // The torn bytes are gone: the file ends at the replay point,
        // so a re-append lands on a clean frame boundary.
        assert_eq!(
            std::fs::metadata(dir.join("journal.wal")).unwrap().len(),
            good_lsn
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_after_torn_tail_recovery_stays_recoverable() {
        // The PR 7 journal failed this: a torn tail left in place, then
        // a new append after it, turned the next recovery into a hard
        // mid-file-corruption error. The WAL truncates on recovery, so
        // the sequence recover → append → recover is always clean.
        let dir = tmpdir("tornappend");
        let mut p = Persister::open(&dir).unwrap();
        p.append_ops(&[JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 1}),
        }])
        .unwrap();
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("journal.wal"))
                .unwrap();
            use std::io::Write as _;
            f.write_all(b"\x40\x00").unwrap(); // torn header
        }
        let mut p2 = Persister::open(&dir).unwrap();
        let (_, report) = p2.recover_with_report().unwrap();
        assert!(report.torn_tail.is_some());
        p2.append_ops(&[JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 2}),
        }])
        .unwrap();
        let (rec, report) = Persister::open(&dir)
            .unwrap()
            .recover_with_report()
            .unwrap();
        assert!(report.torn_tail.is_none(), "{report:?}");
        assert!(report.corruption.is_none(), "{report:?}");
        assert_eq!(rec.collection("c").len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_file_corruption_truncates_replay_point() {
        let dir = tmpdir("midcorrupt");
        let mut p = Persister::open(&dir).unwrap();
        let lsn1 = p
            .append_ops(&[JournalOp::Insert {
                collection: "c".into(),
                doc: json!({"_id": 1}),
            }])
            .unwrap();
        p.append_ops(&[JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 2}),
        }])
        .unwrap();
        p.append_ops(&[JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 3}),
        }])
        .unwrap();
        drop(p);
        // Flip one payload byte of the *middle* frame. The checksum
        // detects it; the replay point truncates there even though a
        // valid frame follows (it cannot be trusted once framing broke).
        let path = dir.join("journal.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[lsn1 as usize + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (rec, report) = Persister::open(&dir)
            .unwrap()
            .recover_with_report()
            .unwrap();
        assert!(report.corruption.is_some(), "{report:?}");
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(report.replay_lsn, lsn1);
        assert_eq!(rec.collection("c").len(), 1);
        assert!(rec.collection("c").get(&json!(1)).is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checksum_valid_but_unparseable_frame_is_a_hard_error() {
        let dir = tmpdir("badframe");
        let mut p = Persister::open(&dir).unwrap();
        p.append_ops(&[JournalOp::Insert {
            collection: "c".into(),
            doc: json!({"_id": 1}),
        }])
        .unwrap();
        drop(p);
        let path = dir.join("journal.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame_record(b"{not a journal op}"));
        std::fs::write(&path, &bytes).unwrap();
        let err = Persister::open(&dir).unwrap().recover().err();
        assert!(
            err.is_some(),
            "a frame we provably wrote must parse — refusing is the only safe move"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_empty_dir_gives_empty_db() {
        let dir = tmpdir("empty");
        let rec = Persister::open(&dir).unwrap().recover().unwrap();
        assert!(rec.collection_names().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
